use crate::Result;
use imc_graph::{Graph, NodeId};
use rand::Rng;

/// A progressive diffusion model: given a seed set, produce the (random)
/// final activation state of every node.
///
/// Implementations must be *progressive* (activated nodes stay active) and
/// must treat out-of-range seeds as an error, never a panic.
///
/// The trait is object-safe so harness code can switch models at runtime;
/// the RNG is passed as `&mut dyn RngCore` for that reason.
pub trait DiffusionModel: Send + Sync {
    /// Runs one simulation and returns `activated[v]` for every node.
    ///
    /// # Errors
    ///
    /// [`DiffusionError::SeedOutOfRange`](crate::DiffusionError::SeedOutOfRange)
    /// when a seed id is not a node of `graph`.
    fn simulate(
        &self,
        graph: &Graph,
        seeds: &[NodeId],
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<bool>>;

    /// Short human-readable name used in reports ("IC", "LT").
    fn name(&self) -> &'static str;
}

/// Validates a seed set against a graph (shared by implementations).
pub(crate) fn validate_seeds(graph: &Graph, seeds: &[NodeId]) -> Result<()> {
    for &s in seeds {
        if !graph.contains(s) {
            return Err(crate::DiffusionError::SeedOutOfRange {
                node: s.raw(),
                node_count: graph.node_count() as u32,
            });
        }
    }
    Ok(())
}

/// Bernoulli draw helper usable with `&mut dyn RngCore`.
#[inline]
pub(crate) fn coin(rng: &mut dyn rand::RngCore, p: f64) -> bool {
    if p >= 1.0 {
        true
    } else if p <= 0.0 {
        false
    } else {
        rng.random::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_graph::GraphBuilder;

    #[test]
    fn validate_rejects_out_of_range() {
        let g = GraphBuilder::new(2).build().unwrap();
        assert!(validate_seeds(&g, &[NodeId::new(1)]).is_ok());
        assert!(validate_seeds(&g, &[NodeId::new(2)]).is_err());
    }

    #[test]
    fn coin_extremes_are_deterministic() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        assert!(coin(&mut rng, 1.0));
        assert!(!coin(&mut rng, 0.0));
        assert!(coin(&mut rng, 1.5));
        assert!(!coin(&mut rng, -0.5));
    }

    #[test]
    fn models_are_object_safe() {
        fn takes_dyn(_m: &dyn DiffusionModel) {}
        takes_dyn(&crate::IndependentCascade);
        takes_dyn(&crate::LinearThreshold);
    }
}
