//! CELF — Cost-Effective Lazy Forward greedy IM (Leskovec et al. 2007).
//!
//! The classic *simulation-based* greedy: each marginal gain is estimated
//! by Monte Carlo, with lazy re-evaluation justified by the submodularity
//! of the spread. Orders of magnitude slower than RIS (`ris_im`) but
//! independent of it — the test suite cross-checks the two solvers against
//! each other, which guards both implementations.

use crate::spread::monte_carlo_spread;
use crate::DiffusionModel;
use imc_graph::{Graph, NodeId};
use std::cmp::Ordering;

/// Configuration for [`celf_im`].
#[derive(Debug, Clone, Copy)]
pub struct CelfConfig {
    /// Monte-Carlo simulations per gain evaluation.
    pub runs: u64,
    /// Only consider the `candidate_limit` highest-out-degree nodes
    /// (`None` = all nodes); CELF is O(n) evaluations in the first round.
    pub candidate_limit: Option<usize>,
}

impl Default for CelfConfig {
    fn default() -> Self {
        CelfConfig {
            runs: 1_000,
            candidate_limit: Some(200),
        }
    }
}

#[derive(Debug)]
struct Entry {
    gain: f64,
    node: u32,
    stamp: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.node == other.node
    }
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Greedy IM with lazy Monte-Carlo marginals. Deterministic for a fixed
/// `seed` (each evaluation derives its stream from the seed, the node and
/// the round).
pub fn celf_im(
    graph: &Graph,
    model: &dyn DiffusionModel,
    k: usize,
    config: &CelfConfig,
    seed: u64,
) -> Vec<NodeId> {
    let k = k.min(graph.node_count());
    if k == 0 {
        return Vec::new();
    }
    let mut candidates: Vec<NodeId> = graph.nodes().collect();
    if let Some(limit) = config.candidate_limit {
        candidates.sort_by(|a, b| {
            graph
                .out_degree(*b)
                .cmp(&graph.out_degree(*a))
                .then(a.cmp(b))
        });
        candidates.truncate(limit.max(k));
    }

    let eval = |seeds: &[NodeId], extra: NodeId, round: u32| -> f64 {
        let mut with: Vec<NodeId> = seeds.to_vec();
        with.push(extra);
        let stream = seed ^ (extra.raw() as u64) << 16 ^ round as u64;
        monte_carlo_spread(graph, model, &with, config.runs, stream)
    };

    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    let mut base_spread = 0.0f64;
    let mut heap: std::collections::BinaryHeap<Entry> = candidates
        .iter()
        .map(|&v| Entry {
            gain: eval(&[], v, 0) - 0.0,
            node: v.raw(),
            stamp: 0,
        })
        .collect();
    let mut round = 0u32;
    while seeds.len() < k {
        match heap.pop() {
            None => break,
            Some(e) => {
                if e.stamp == round {
                    let v = NodeId::new(e.node);
                    seeds.push(v);
                    base_spread += e.gain;
                    round += 1;
                } else {
                    let fresh = eval(&seeds, NodeId::new(e.node), round) - base_spread;
                    heap.push(Entry {
                        gain: fresh,
                        node: e.node,
                        stamp: round,
                    });
                }
            }
        }
    }
    // Pad if candidate pool exhausted.
    if seeds.len() < k {
        for v in graph.nodes() {
            if seeds.len() >= k {
                break;
            }
            if !seeds.contains(&v) {
                seeds.push(v);
            }
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndependentCascade;
    use imc_graph::GraphBuilder;

    #[test]
    fn picks_the_hub() {
        let mut b = GraphBuilder::new(6);
        for v in 1..6 {
            b.add_edge(0, v, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let seeds = celf_im(&g, &IndependentCascade, 1, &CelfConfig::default(), 1);
        assert_eq!(seeds, vec![NodeId::new(0)]);
    }

    #[test]
    fn agrees_with_ris_on_small_graph() {
        use crate::ris_im::{ris_im, RisImConfig};
        use crate::spread::monte_carlo_spread;
        let mut b = GraphBuilder::new(30);
        for i in 0..29u32 {
            b.add_edge(i, i + 1, 0.6).unwrap();
            if i % 3 == 0 {
                b.add_edge(i, (i + 5) % 30, 0.4).unwrap();
            }
        }
        let g = b.build().unwrap();
        let celf = celf_im(&g, &IndependentCascade, 3, &CelfConfig::default(), 2);
        let ris = ris_im(&g, 3, &RisImConfig::default(), 2).seeds;
        let s_celf = monte_carlo_spread(&g, &IndependentCascade, &celf, 4_000, 9);
        let s_ris = monte_carlo_spread(&g, &IndependentCascade, &ris, 4_000, 9);
        // Two independent solvers should land within noise of each other.
        assert!(
            (s_celf - s_ris).abs() / s_ris.max(1.0) < 0.15,
            "celf={s_celf:.2} ris={s_ris:.2}"
        );
    }

    #[test]
    fn returns_k_distinct_seeds() {
        let mut b = GraphBuilder::new(10);
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        let cfg = CelfConfig {
            runs: 200,
            candidate_limit: Some(4),
        };
        let seeds = celf_im(&g, &IndependentCascade, 6, &cfg, 3);
        assert_eq!(seeds.len(), 6);
        let uniq: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(uniq.len(), 6);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut b = GraphBuilder::new(12);
        for i in 0..11u32 {
            b.add_edge(i, i + 1, 0.5).unwrap();
        }
        let g = b.build().unwrap();
        let cfg = CelfConfig {
            runs: 300,
            candidate_limit: None,
        };
        assert_eq!(
            celf_im(&g, &IndependentCascade, 3, &cfg, 7),
            celf_im(&g, &IndependentCascade, 3, &cfg, 7)
        );
    }

    #[test]
    fn zero_k_is_empty() {
        let g = GraphBuilder::new(3).build().unwrap();
        assert!(celf_im(&g, &IndependentCascade, 0, &CelfConfig::default(), 1).is_empty());
    }
}
