//! RIS-greedy classic influence maximization — the paper's `IM` baseline.
//!
//! Generates a pool of RR sets and greedily picks the `k` nodes covering the
//! most sets (1 − 1/e − ε for max-coverage). The pool grows by doubling
//! until the chosen seed set is stable between consecutive rounds (a
//! practical stop-and-stare-style check) or a cap is hit.

use crate::rr::{generate_rr_set, RrSet};
use imc_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`ris_im`].
#[derive(Debug, Clone, Copy)]
pub struct RisImConfig {
    /// RR sets generated before the first greedy pass.
    pub initial_samples: usize,
    /// Hard cap on the total number of RR sets.
    pub max_samples: usize,
    /// Stop when consecutive rounds choose seed sets whose estimated
    /// spreads differ by at most this relative amount.
    pub stability_tolerance: f64,
}

impl Default for RisImConfig {
    fn default() -> Self {
        RisImConfig {
            initial_samples: 2_048,
            max_samples: 1 << 20,
            stability_tolerance: 0.01,
        }
    }
}

/// Result of [`ris_im`]: seeds plus bookkeeping for reports.
#[derive(Debug, Clone)]
pub struct RisImResult {
    /// Chosen seed set, in pick order.
    pub seeds: Vec<NodeId>,
    /// Number of RR sets used in the final round.
    pub samples_used: usize,
    /// Fraction of final-round RR sets covered by the seeds.
    pub coverage: f64,
}

/// Greedy max-coverage over a fixed RR-set pool. Exposed for reuse by
/// higher-level algorithms (BT runs it over reduced RIC collections).
pub fn greedy_max_coverage(node_count: usize, rr_sets: &[RrSet], k: usize) -> Vec<NodeId> {
    // Inverted index: node -> RR set indices.
    let mut index: Vec<Vec<u32>> = vec![Vec::new(); node_count];
    for (i, rr) in rr_sets.iter().enumerate() {
        for &v in &rr.nodes {
            index[v.index()].push(i as u32);
        }
    }
    let mut covered = vec![false; rr_sets.len()];
    let mut gain: Vec<i64> = index.iter().map(|l| l.len() as i64).collect();
    let mut chosen = Vec::with_capacity(k);
    // CELF lazy greedy: coverage is submodular.
    let mut heap: std::collections::BinaryHeap<(i64, u32, u32)> =
        (0..node_count).map(|v| (gain[v], v as u32, 0u32)).collect();
    let mut round = 0u32;
    while chosen.len() < k {
        match heap.pop() {
            None => break,
            Some((g, v, stamp)) => {
                if g <= 0 {
                    break;
                }
                if stamp == round {
                    chosen.push(NodeId::new(v));
                    for &i in &index[v as usize] {
                        covered[i as usize] = true;
                    }
                    round += 1;
                } else {
                    let fresh = index[v as usize]
                        .iter()
                        .filter(|&&i| !covered[i as usize])
                        .count() as i64;
                    gain[v as usize] = fresh;
                    heap.push((fresh, v, round));
                }
            }
        }
    }
    chosen
}

/// Solves classic IM: `k` nodes approximately maximizing the expected
/// spread under IC, via RIS with pool doubling.
///
/// # Panics
///
/// Panics if the graph is empty or `k == 0`.
pub fn ris_im(graph: &Graph, k: usize, config: &RisImConfig, seed: u64) -> RisImResult {
    assert!(graph.node_count() > 0, "empty graph");
    assert!(k > 0, "k must be positive");
    let k = k.min(graph.node_count());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<RrSet> = Vec::with_capacity(config.initial_samples);
    while pool.len() < config.initial_samples {
        pool.push(generate_rr_set(graph, &mut rng));
    }
    let mut previous_cov: Option<f64> = None;
    loop {
        let seeds = greedy_max_coverage(graph.node_count(), &pool, k);
        let covered = pool
            .iter()
            .filter(|rr| seeds.iter().any(|&s| rr.contains(s)))
            .count();
        let coverage = covered as f64 / pool.len() as f64;
        let stable = previous_cov
            .map(|p| (coverage - p).abs() <= config.stability_tolerance * p.max(1e-12))
            .unwrap_or(false);
        if stable || pool.len() * 2 > config.max_samples {
            return RisImResult {
                seeds,
                samples_used: pool.len(),
                coverage,
            };
        }
        previous_cov = Some(coverage);
        let target = pool.len() * 2;
        while pool.len() < target {
            pool.push(generate_rr_set(graph, &mut rng));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spread::monte_carlo_spread;
    use crate::IndependentCascade;
    use imc_graph::generators::barabasi_albert;
    use imc_graph::{GraphBuilder, WeightModel};

    #[test]
    fn greedy_covers_obvious_hub() {
        // Star: 0 -> everyone with p = 1. RR set of any node contains 0.
        let mut b = GraphBuilder::new(6);
        for v in 1..6 {
            b.add_edge(0, v, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let r = ris_im(&g, 1, &RisImConfig::default(), 3);
        assert_eq!(r.seeds, vec![NodeId::new(0)]);
        assert!(r.coverage > 0.99);
    }

    #[test]
    fn greedy_max_coverage_prefers_bigger_cover() {
        let sets = vec![
            RrSet {
                root: 0.into(),
                nodes: vec![0.into(), 1.into()],
            },
            RrSet {
                root: 1.into(),
                nodes: vec![1.into()],
            },
            RrSet {
                root: 2.into(),
                nodes: vec![1.into(), 2.into()],
            },
        ];
        let picked = greedy_max_coverage(3, &sets, 1);
        assert_eq!(picked, vec![NodeId::new(1)]); // covers all three
    }

    #[test]
    fn greedy_stops_when_everything_covered() {
        let sets = vec![RrSet {
            root: 0.into(),
            nodes: vec![0.into()],
        }];
        let picked = greedy_max_coverage(2, &sets, 2);
        assert_eq!(picked.len(), 1); // second pick has zero gain
    }

    #[test]
    fn seeds_beat_random_on_scale_free_graph() {
        let g = barabasi_albert(300, 2, &mut StdRng::seed_from_u64(10))
            .reweighted(WeightModel::WeightedCascade);
        let r = ris_im(&g, 5, &RisImConfig::default(), 11);
        assert_eq!(r.seeds.len(), 5);
        let ris_spread = monte_carlo_spread(&g, &IndependentCascade, &r.seeds, 2000, 12);
        let random_seeds: Vec<NodeId> = (0..5).map(|i| NodeId::new(i * 60)).collect();
        let random_spread = monte_carlo_spread(&g, &IndependentCascade, &random_seeds, 2000, 12);
        assert!(
            ris_spread >= random_spread,
            "RIS {ris_spread} should beat arbitrary {random_spread}"
        );
    }

    #[test]
    fn k_clamped_to_node_count() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let r = ris_im(&g, 10, &RisImConfig::default(), 1);
        assert!(r.seeds.len() <= 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = barabasi_albert(120, 2, &mut StdRng::seed_from_u64(5))
            .reweighted(WeightModel::WeightedCascade);
        let a = ris_im(&g, 3, &RisImConfig::default(), 9);
        let b = ris_im(&g, 3, &RisImConfig::default(), 9);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.samples_used, b.samples_used);
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
