//! Deterministic multi-threaded Monte-Carlo sharding.
//!
//! Estimators split `runs` simulations across worker threads. Each shard
//! gets an RNG seeded with `base_seed + shard_index`, so results are
//! bit-identical regardless of thread count or scheduling — a property the
//! test suite relies on.

/// Number of worker threads used by parallel estimators: the available
/// parallelism, capped at 8 (diminishing returns for memory-bound BFS).
pub fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Splits `runs` Monte-Carlo iterations into shards, runs
/// `shard_fn(shard_seed, shard_runs)` on each (in parallel when beneficial),
/// and sums the partial results.
///
/// `shard_fn` must be deterministic given its arguments. Shard seeds are
/// `base_seed..base_seed + shards`, and the shard split depends only on
/// `runs`, so the total is reproducible.
pub fn sharded_sum<F>(runs: u64, base_seed: u64, shard_fn: F) -> f64
where
    F: Fn(u64, u64) -> f64 + Sync,
{
    if runs == 0 {
        return 0.0;
    }
    // Fixed shard count (independent of machine) keeps results reproducible
    // across hosts; worker threads just consume the shard list.
    let shards: u64 = if runs < 64 { 1 } else { 16 };
    let per = runs / shards;
    let extra = runs % shards;
    let shard_runs: Vec<(u64, u64)> = (0..shards)
        .map(|i| (base_seed.wrapping_add(i), per + u64::from(i < extra)))
        .collect();

    let workers = worker_count().min(shard_runs.len());
    if workers <= 1 {
        return shard_runs.iter().map(|&(seed, r)| shard_fn(seed, r)).sum();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let partials = std::sync::Mutex::new(vec![0.0f64; shard_runs.len()]);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= shard_runs.len() {
                    break;
                }
                let (seed, r) = shard_runs[i];
                let value = shard_fn(seed, r);
                partials.lock().expect("no poisoned shards")[i] = value;
            });
        }
    });
    // Sum in shard order for floating-point determinism.
    partials.into_inner().expect("threads joined").iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_all_runs() {
        // shard_fn returning the run count sums to the total.
        let total = sharded_sum(1000, 42, |_seed, r| r as f64);
        assert_eq!(total, 1000.0);
    }

    #[test]
    fn zero_runs_is_zero() {
        assert_eq!(sharded_sum(0, 1, |_, _| panic!("must not be called")), 0.0);
    }

    #[test]
    fn small_run_counts_use_one_shard() {
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let total = sharded_sum(10, 5, |seed, r| {
            calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            assert_eq!(seed, 5);
            r as f64
        });
        assert_eq!(total, 10.0);
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn deterministic_across_invocations() {
        let f = |seed: u64, r: u64| (seed as f64).sin() * r as f64;
        assert_eq!(sharded_sum(500, 9, f), sharded_sum(500, 9, f));
    }

    #[test]
    fn shard_seeds_are_distinct() {
        let seen = std::sync::Mutex::new(std::collections::HashSet::new());
        sharded_sum(640, 100, |seed, _r| {
            assert!(
                seen.lock().unwrap().insert(seed),
                "duplicate shard seed {seed}"
            );
            0.0
        });
        assert_eq!(seen.into_inner().unwrap().len(), 16);
    }
}
