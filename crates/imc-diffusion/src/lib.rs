//! Diffusion engine for the `imc` workspace.
//!
//! Everything that *runs* influence propagation lives here:
//!
//! * [`IndependentCascade`] and [`LinearThreshold`] — the two classic
//!   diffusion models (the paper evaluates under IC; LT is the extension it
//!   mentions), both implementing [`DiffusionModel`].
//! * [`spread`] — Monte-Carlo estimation of the expected influence spread
//!   `σ(S)` with deterministic multi-threaded sharding.
//! * [`benefit`] — Monte-Carlo estimation of the IMC objective `c(S)` (the
//!   expected benefit of *influenced communities*) and of the fractional
//!   upper bound `ν(S)` used by the UBG sandwich analysis.
//! * [`dagum`] — the Dagum–Karp–Luby–Ross stopping-rule estimator the paper
//!   uses to grade final solutions (Alg. 6 is an instance of it).
//! * [`rr`] and [`ris_im`] — classic Reverse Influence Sampling and a
//!   RIS-greedy solver for plain influence maximization, the paper's `IM`
//!   baseline.
//!
//! ```
//! use imc_diffusion::{spread::monte_carlo_spread, IndependentCascade};
//! use imc_graph::{GraphBuilder, NodeId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1, 1.0)?;
//! b.add_edge(1, 2, 0.5)?;
//! let g = b.build()?;
//! let s = monte_carlo_spread(&g, &IndependentCascade, &[NodeId::new(0)], 2000, 42);
//! assert!((s - 2.5).abs() < 0.1); // 1 (seed) + 1 (sure) + 0.5 (coin)
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ic;
mod lt;
mod model;

pub mod benefit;
pub mod celf;
pub mod dagum;
pub mod parallel;
pub mod ris_im;
pub mod rr;
pub mod spread;

pub use error::DiffusionError;
pub use ic::{IndependentCascade, NEVER};
pub use lt::LinearThreshold;
pub use model::DiffusionModel;

/// Convenience result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, DiffusionError>;
