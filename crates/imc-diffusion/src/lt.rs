use crate::model::validate_seeds;
use crate::{DiffusionModel, Result};
use imc_graph::{Graph, NodeId};
use rand::Rng;

/// The Linear Threshold model (Kempe et al. 2003).
///
/// Every node `v` draws a threshold `θ_v ~ U[0, 1]` per simulation; `v`
/// activates once the summed weight of its *active* in-neighbors reaches
/// `θ_v`. Requires `Σ_u w(u, v) ≤ 1` for the classic interpretation; larger
/// sums are allowed (they just make activation easier) because real weight
/// assignments (e.g. weighted cascade) already satisfy the constraint.
///
/// The paper proves its results under IC and notes the standard
/// live-edge-equivalence argument extends them to LT; this implementation
/// lets the harness rerun every experiment under LT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinearThreshold;

impl DiffusionModel for LinearThreshold {
    fn simulate(
        &self,
        graph: &Graph,
        seeds: &[NodeId],
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<bool>> {
        validate_seeds(graph, seeds)?;
        let n = graph.node_count();
        let mut active = vec![false; n];
        let mut pressure = vec![0.0f64; n]; // summed weight from active in-neighbors
        let mut threshold = vec![0.0f64; n];
        for t in threshold.iter_mut() {
            *t = rng.random::<f64>();
        }
        let mut frontier: Vec<NodeId> = Vec::with_capacity(seeds.len());
        for &s in seeds {
            if !active[s.index()] {
                active[s.index()] = true;
                frontier.push(s);
            }
        }
        let mut next: Vec<NodeId> = Vec::new();
        while !frontier.is_empty() {
            next.clear();
            for &u in &frontier {
                for e in graph.out_edges(u) {
                    let v = e.target.index();
                    if !active[v] {
                        pressure[v] += e.weight;
                        if pressure[v] >= threshold[v] {
                            active[v] = true;
                            next.push(e.target);
                        }
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        Ok(active)
    }

    fn name(&self) -> &'static str {
        "LT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_weight_edge_always_activates() {
        // θ_v ~ U[0,1] < 1.0 almost surely; weight 1.0 meets any threshold.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let act = LinearThreshold
                .simulate(&g, &[NodeId::new(0)], &mut rng)
                .unwrap();
            assert!(act[1]);
        }
    }

    #[test]
    fn activation_rate_matches_incoming_weight() {
        // One active in-neighbor with weight 0.3 activates v iff θ_v ≤ 0.3.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.3).unwrap();
        let g = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let runs = 6000;
        let mut hits = 0;
        for _ in 0..runs {
            let act = LinearThreshold
                .simulate(&g, &[NodeId::new(0)], &mut rng)
                .unwrap();
            hits += usize::from(act[1]);
        }
        let rate = hits as f64 / runs as f64;
        assert!((rate - 0.3).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn joint_pressure_accumulates() {
        // Two in-neighbors with weight 0.5 each: both active ⇒ pressure 1.0
        // meets any threshold.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let act = LinearThreshold
                .simulate(&g, &[NodeId::new(0), NodeId::new(1)], &mut rng)
                .unwrap();
            assert!(act[2]);
        }
    }

    #[test]
    fn no_seeds_no_activation() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let act = LinearThreshold.simulate(&g, &[], &mut rng).unwrap();
        assert!(act.iter().all(|&a| !a));
    }

    #[test]
    fn out_of_range_seed_errors() {
        let g = GraphBuilder::new(1).build().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(LinearThreshold
            .simulate(&g, &[NodeId::new(9)], &mut rng)
            .is_err());
    }

    #[test]
    fn name_is_lt() {
        assert_eq!(LinearThreshold.name(), "LT");
    }
}
