use crate::model::{coin, validate_seeds};
use crate::{DiffusionModel, Result};
use imc_graph::{Graph, NodeId};

/// The Independent Cascade model (Kempe et al. 2003) — the diffusion model
/// of the IMC paper.
///
/// At round 0 the seeds are active. When a node becomes active it gets a
/// *single* chance to activate each currently inactive out-neighbor `v`,
/// succeeding independently with probability `w(u, v)`. The process runs
/// until no new activation occurs.
///
/// The implementation is a BFS over "fresh" activations, so each edge is
/// examined (and its coin flipped) at most once per simulation — equivalent
/// to the live-edge interpretation used by the RIC/RIS samplers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndependentCascade;

/// Round at which a node activated; [`NEVER`] when it stayed inactive.
pub const NEVER: u32 = u32::MAX;

impl IndependentCascade {
    /// Like [`DiffusionModel::simulate`] but returns each node's
    /// *activation round* (`0` for seeds, [`NEVER`] for inactive nodes)
    /// and stops after `max_rounds` propagation rounds — the
    /// deadline-constrained variant studied in time-critical viral
    /// marketing (Chen et al. 2012).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DiffusionModel::simulate`].
    pub fn simulate_rounds(
        &self,
        graph: &Graph,
        seeds: &[NodeId],
        max_rounds: u32,
        rng: &mut dyn rand::RngCore,
    ) -> crate::Result<Vec<u32>> {
        crate::model::validate_seeds(graph, seeds)?;
        let mut round_of = vec![NEVER; graph.node_count()];
        let mut frontier: Vec<NodeId> = Vec::with_capacity(seeds.len());
        for &s in seeds {
            if round_of[s.index()] == NEVER {
                round_of[s.index()] = 0;
                frontier.push(s);
            }
        }
        let mut next: Vec<NodeId> = Vec::new();
        let mut round = 0u32;
        while !frontier.is_empty() && round < max_rounds {
            round += 1;
            next.clear();
            for &u in &frontier {
                for e in graph.out_edges(u) {
                    if round_of[e.target.index()] == NEVER && coin(rng, e.weight) {
                        round_of[e.target.index()] = round;
                        next.push(e.target);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        Ok(round_of)
    }
}

impl DiffusionModel for IndependentCascade {
    fn simulate(
        &self,
        graph: &Graph,
        seeds: &[NodeId],
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<bool>> {
        validate_seeds(graph, seeds)?;
        let mut active = vec![false; graph.node_count()];
        let mut frontier: Vec<NodeId> = Vec::with_capacity(seeds.len());
        for &s in seeds {
            if !active[s.index()] {
                active[s.index()] = true;
                frontier.push(s);
            }
        }
        let mut next: Vec<NodeId> = Vec::new();
        while !frontier.is_empty() {
            next.clear();
            for &u in &frontier {
                for e in graph.out_edges(u) {
                    if !active[e.target.index()] && coin(rng, e.weight) {
                        active[e.target.index()] = true;
                        next.push(e.target);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        Ok(active)
    }

    fn name(&self) -> &'static str {
        "IC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn seeds_always_active() {
        let g = GraphBuilder::new(3).build().unwrap();
        let act = IndependentCascade
            .simulate(&g, &[NodeId::new(0), NodeId::new(2)], &mut rng())
            .unwrap();
        assert_eq!(act, vec![true, false, true]);
    }

    #[test]
    fn weight_one_chain_fully_activates() {
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, i + 1, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let act = IndependentCascade
            .simulate(&g, &[NodeId::new(0)], &mut rng())
            .unwrap();
        assert!(act.iter().all(|&a| a));
    }

    #[test]
    fn weight_zero_never_propagates() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.0).unwrap();
        let g = b.build().unwrap();
        for seed in 0..20 {
            let mut r = StdRng::seed_from_u64(seed);
            let act = IndependentCascade
                .simulate(&g, &[NodeId::new(0)], &mut r)
                .unwrap();
            assert!(!act[1]);
        }
    }

    #[test]
    fn propagation_respects_direction() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let act = IndependentCascade
            .simulate(&g, &[NodeId::new(1)], &mut rng())
            .unwrap();
        assert_eq!(act, vec![false, true]);
    }

    #[test]
    fn empty_seed_set_activates_nothing() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let act = IndependentCascade.simulate(&g, &[], &mut rng()).unwrap();
        assert!(act.iter().all(|&a| !a));
    }

    #[test]
    fn out_of_range_seed_errors() {
        let g = GraphBuilder::new(2).build().unwrap();
        assert!(IndependentCascade
            .simulate(&g, &[NodeId::new(5)], &mut rng())
            .is_err());
    }

    #[test]
    fn duplicate_seeds_are_harmless() {
        let g = GraphBuilder::new(2).build().unwrap();
        let act = IndependentCascade
            .simulate(&g, &[NodeId::new(0), NodeId::new(0)], &mut rng())
            .unwrap();
        assert_eq!(act, vec![true, false]);
    }

    #[test]
    fn single_chance_per_edge() {
        // 0 -> 1 with p=0.5: over many runs activation rate ≈ 0.5, which
        // would be ≈1 if the edge were retried every round.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        let mut r = StdRng::seed_from_u64(99);
        let runs = 4000;
        let mut hits = 0;
        for _ in 0..runs {
            let act = IndependentCascade
                .simulate(&g, &[NodeId::new(0)], &mut r)
                .unwrap();
            hits += usize::from(act[1]);
        }
        let rate = hits as f64 / runs as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate={rate}");
    }

    #[test]
    fn rounds_variant_reports_activation_times() {
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, i + 1, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let rounds = IndependentCascade
            .simulate_rounds(&g, &[NodeId::new(0)], 100, &mut rng())
            .unwrap();
        assert_eq!(rounds, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rounds_variant_respects_deadline() {
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge(i, i + 1, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let rounds = IndependentCascade
            .simulate_rounds(&g, &[NodeId::new(0)], 2, &mut rng())
            .unwrap();
        assert_eq!(rounds[0], 0);
        assert_eq!(rounds[1], 1);
        assert_eq!(rounds[2], 2);
        assert_eq!(rounds[3], NEVER);
        assert_eq!(rounds[4], NEVER);
    }

    #[test]
    fn zero_deadline_activates_only_seeds() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let rounds = IndependentCascade
            .simulate_rounds(&g, &[NodeId::new(0)], 0, &mut rng())
            .unwrap();
        assert_eq!(rounds, vec![0, NEVER]);
    }

    #[test]
    fn unbounded_rounds_agree_with_simulate_on_deterministic_graph() {
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (0, 3)] {
            b.add_edge(u, v, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let active = IndependentCascade
            .simulate(&g, &[NodeId::new(0)], &mut rng())
            .unwrap();
        let rounds = IndependentCascade
            .simulate_rounds(&g, &[NodeId::new(0)], u32::MAX, &mut rng())
            .unwrap();
        for v in 0..4usize {
            assert_eq!(active[v], rounds[v] != NEVER);
        }
    }

    #[test]
    fn cycle_terminates() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(2, 0, 1.0).unwrap();
        let g = b.build().unwrap();
        let act = IndependentCascade
            .simulate(&g, &[NodeId::new(0)], &mut rng())
            .unwrap();
        assert!(act.iter().all(|&a| a));
    }
}
