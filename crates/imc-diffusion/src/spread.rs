//! Monte-Carlo estimation of the expected influence spread `σ(S)`.

use crate::parallel::sharded_sum;
use crate::DiffusionModel;
use imc_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Estimates the expected number of activated nodes `σ(S)` by averaging
/// `runs` simulations of `model`. Deterministic for a fixed `seed`
/// (sharding is machine-independent, see [`parallel`](crate::parallel)).
///
/// # Panics
///
/// Panics if a seed node is out of range (programmer error at this level;
/// the fallible path is [`DiffusionModel::simulate`]).
pub fn monte_carlo_spread(
    graph: &Graph,
    model: &dyn DiffusionModel,
    seeds: &[NodeId],
    runs: u64,
    seed: u64,
) -> f64 {
    if runs == 0 {
        return 0.0;
    }
    let total = sharded_sum(runs, seed, |shard_seed, shard_runs| {
        let mut rng = StdRng::seed_from_u64(shard_seed);
        let mut acc = 0.0f64;
        for _ in 0..shard_runs {
            let active = model
                .simulate(graph, seeds, &mut rng)
                .expect("seed set validated by caller");
            acc += active.iter().filter(|&&a| a).count() as f64;
        }
        acc
    });
    total / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndependentCascade;
    use imc_graph::GraphBuilder;

    #[test]
    fn no_edges_spread_is_seed_count() {
        let g = GraphBuilder::new(5).build().unwrap();
        let s = monte_carlo_spread(
            &g,
            &IndependentCascade,
            &[NodeId::new(0), NodeId::new(3)],
            100,
            1,
        );
        assert_eq!(s, 2.0);
    }

    #[test]
    fn deterministic_chain_spread_exact() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        let g = b.build().unwrap();
        let s = monte_carlo_spread(&g, &IndependentCascade, &[NodeId::new(0)], 50, 2);
        assert_eq!(s, 3.0);
    }

    #[test]
    fn probabilistic_edge_matches_expectation() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.3).unwrap();
        let g = b.build().unwrap();
        let s = monte_carlo_spread(&g, &IndependentCascade, &[NodeId::new(0)], 20_000, 3);
        assert!((s - 1.3).abs() < 0.02, "spread={s}");
    }

    #[test]
    fn reproducible_for_same_seed() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        let g = b.build().unwrap();
        let a = monte_carlo_spread(&g, &IndependentCascade, &[NodeId::new(0)], 1000, 7);
        let b2 = monte_carlo_spread(&g, &IndependentCascade, &[NodeId::new(0)], 1000, 7);
        assert_eq!(a, b2);
    }

    #[test]
    fn zero_runs_returns_zero() {
        let g = GraphBuilder::new(2).build().unwrap();
        assert_eq!(
            monte_carlo_spread(&g, &IndependentCascade, &[NodeId::new(0)], 0, 1),
            0.0
        );
    }

    #[test]
    fn monotone_in_seed_set() {
        let mut b = GraphBuilder::new(6);
        for i in 0..5 {
            b.add_edge(i, i + 1, 0.4).unwrap();
        }
        let g = b.build().unwrap();
        let s1 = monte_carlo_spread(&g, &IndependentCascade, &[NodeId::new(0)], 5000, 9);
        let s2 = monte_carlo_spread(
            &g,
            &IndependentCascade,
            &[NodeId::new(0), NodeId::new(3)],
            5000,
            9,
        );
        assert!(s2 > s1);
    }
}
