//! Monte-Carlo estimation of the IMC objective `c(S)` and the fractional
//! bound `ν(S)`.
//!
//! `c(S)` (Definition 1 of the paper) is the expected total benefit of
//! communities whose activated-member count reaches their threshold.
//! `ν(S)` (eq. 6) replaces the 0/1 community indicator with the fractional
//! value `min(activated_i / h_i, 1)` — the submodular upper bound UBG
//! greedily optimizes. Both are estimated by forward simulation here; the
//! RIC-sampling estimators live in `imc-core`.

use crate::parallel::sharded_sum;
use crate::DiffusionModel;
use imc_community::CommunitySet;
use imc_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sums benefits of influenced communities for one activation outcome.
pub fn realized_benefit(communities: &CommunitySet, active: &[bool]) -> f64 {
    communities
        .iter()
        .map(|c| {
            let hit = c.members.iter().filter(|v| active[v.index()]).count();
            if hit >= c.threshold as usize {
                c.benefit
            } else {
                0.0
            }
        })
        .sum()
}

/// Fractional benefit `Σ_i b_i · min(activated_i / h_i, 1)` for one
/// activation outcome — the realized value of the paper's `ν`.
pub fn realized_fractional_benefit(communities: &CommunitySet, active: &[bool]) -> f64 {
    communities
        .iter()
        .map(|c| {
            let hit = c.members.iter().filter(|v| active[v.index()]).count() as f64;
            c.benefit * (hit / c.threshold as f64).min(1.0)
        })
        .sum()
}

/// Estimates `c(S)` by averaging `runs` forward simulations.
/// Deterministic for a fixed `seed`.
pub fn monte_carlo_benefit(
    graph: &Graph,
    communities: &CommunitySet,
    model: &dyn DiffusionModel,
    seeds: &[NodeId],
    runs: u64,
    seed: u64,
) -> f64 {
    if runs == 0 {
        return 0.0;
    }
    let total = sharded_sum(runs, seed, |shard_seed, shard_runs| {
        let mut rng = StdRng::seed_from_u64(shard_seed);
        let mut acc = 0.0f64;
        for _ in 0..shard_runs {
            let active = model
                .simulate(graph, seeds, &mut rng)
                .expect("seed set validated by caller");
            acc += realized_benefit(communities, &active);
        }
        acc
    });
    total / runs as f64
}

/// Estimates the fractional objective `ν(S)` by averaging `runs` forward
/// simulations. Used to reproduce the paper's Fig. 8 ratio
/// `c(S_ν) / ν(S_ν)`.
pub fn monte_carlo_fractional_benefit(
    graph: &Graph,
    communities: &CommunitySet,
    model: &dyn DiffusionModel,
    seeds: &[NodeId],
    runs: u64,
    seed: u64,
) -> f64 {
    if runs == 0 {
        return 0.0;
    }
    let total = sharded_sum(runs, seed, |shard_seed, shard_runs| {
        let mut rng = StdRng::seed_from_u64(shard_seed);
        let mut acc = 0.0f64;
        for _ in 0..shard_runs {
            let active = model
                .simulate(graph, seeds, &mut rng)
                .expect("seed set validated by caller");
            acc += realized_fractional_benefit(communities, &active);
        }
        acc
    });
    total / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndependentCascade;
    use imc_graph::GraphBuilder;

    fn two_community_setup() -> (Graph, CommunitySet) {
        // 0 -> 1 (p=1), 0 -> 2 (p=1); communities {1,2} (h=2, b=2) and
        // {3} (h=1, b=1), node 3 unreachable.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(0, 2, 1.0).unwrap();
        let g = b.build().unwrap();
        let cs = CommunitySet::from_parts(
            4,
            vec![
                (vec![NodeId::new(1), NodeId::new(2)], 2, 2.0),
                (vec![NodeId::new(3)], 1, 1.0),
            ],
        )
        .unwrap();
        (g, cs)
    }

    #[test]
    fn realized_benefit_thresholds() {
        let (_, cs) = two_community_setup();
        assert_eq!(realized_benefit(&cs, &[true, true, false, false]), 0.0);
        assert_eq!(realized_benefit(&cs, &[false, true, true, false]), 2.0);
        assert_eq!(realized_benefit(&cs, &[false, true, true, true]), 3.0);
    }

    #[test]
    fn realized_fraction_is_between_benefit_and_total() {
        let (_, cs) = two_community_setup();
        // One of two members active: fractional = 2 * 1/2 = 1, exact = 0.
        let active = [false, true, false, false];
        assert_eq!(realized_benefit(&cs, &active), 0.0);
        assert_eq!(realized_fractional_benefit(&cs, &active), 1.0);
    }

    #[test]
    fn deterministic_graph_exact_benefit() {
        let (g, cs) = two_community_setup();
        let c = monte_carlo_benefit(&g, &cs, &IndependentCascade, &[NodeId::new(0)], 100, 1);
        assert_eq!(c, 2.0); // community {1,2} always influenced, {3} never
    }

    #[test]
    fn benefit_upper_bounded_by_fractional() {
        // Random-ish graph: ν(S) ≥ c(S) must hold empirically (Lemma 3).
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 4), (3, 5)] {
            b.add_edge(u, v, 0.4).unwrap();
        }
        let g = b.build().unwrap();
        let cs = CommunitySet::from_parts(
            6,
            vec![
                (vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)], 2, 3.0),
                (vec![NodeId::new(4), NodeId::new(5)], 2, 2.0),
            ],
        )
        .unwrap();
        let seeds = [NodeId::new(0)];
        let c = monte_carlo_benefit(&g, &cs, &IndependentCascade, &seeds, 4000, 5);
        let v = monte_carlo_fractional_benefit(&g, &cs, &IndependentCascade, &seeds, 4000, 5);
        assert!(v >= c - 1e-9, "nu={v} must dominate c={c}");
    }

    #[test]
    fn paper_figure2_example() {
        // Fig. 2 of the paper: path a -> u -> b' and b -> v ... with all
        // edge weights 0.3 and thresholds 2. We reproduce the qualitative
        // non-submodularity: c({a,b}) - c({a}) > c({b}) - c({}).
        // Topology (communities in brackets): C1 = {x1, x2}, a -> x1,
        // b -> x2, and the paper's numbers come from a specific small graph;
        // here we build a minimal gadget with the same structure.
        let mut b = GraphBuilder::new(4);
        // a = 0, b = 1, community = {2, 3}
        b.add_edge(0, 2, 0.3).unwrap();
        b.add_edge(1, 3, 0.3).unwrap();
        let g = b.build().unwrap();
        let cs = CommunitySet::from_parts(4, vec![(vec![NodeId::new(2), NodeId::new(3)], 2, 1.0)])
            .unwrap();
        let runs = 60_000;
        let c_a = monte_carlo_benefit(&g, &cs, &IndependentCascade, &[NodeId::new(0)], runs, 1);
        let c_b = monte_carlo_benefit(&g, &cs, &IndependentCascade, &[NodeId::new(1)], runs, 2);
        let c_ab = monte_carlo_benefit(
            &g,
            &cs,
            &IndependentCascade,
            &[NodeId::new(0), NodeId::new(1)],
            runs,
            3,
        );
        // Marginal of b on top of a (0.09) exceeds marginal of b alone (0):
        // supermodular behavior, hence non-submodular.
        assert!(c_a < 0.01);
        assert!(c_b < 0.01);
        assert!((c_ab - 0.09).abs() < 0.01, "c_ab={c_ab}");
        assert!(c_ab - c_a > c_b + 0.05);
    }

    #[test]
    fn zero_runs_zero() {
        let (g, cs) = two_community_setup();
        assert_eq!(
            monte_carlo_benefit(&g, &cs, &IndependentCascade, &[NodeId::new(0)], 0, 1),
            0.0
        );
    }
}
