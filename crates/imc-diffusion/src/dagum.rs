//! The Dagum–Karp–Luby–Ross optimal Monte-Carlo stopping rule.
//!
//! Given i.i.d. samples of a random variable `Z ∈ [0, 1]` with unknown mean
//! `μ > 0`, the Stopping Rule Algorithm (Dagum et al., *SIAM J. Computing*
//! 2000, §2.1) draws samples until their sum reaches
//! `Λ′ = 1 + 4(e − 2)·ln(2/δ)·(1 + ε)/ε²`, then returns `Λ′ / T` where `T`
//! is the number of samples drawn. The estimate `μ̂` satisfies
//! `Pr[|μ̂ − μ| ≤ ε·μ] ≥ 1 − δ`.
//!
//! The IMC paper's `Estimate` procedure (Alg. 6) is this rule applied to
//! the indicator "a fresh RIC sample is influenced by S"; this module
//! provides the generic rule plus a convenience wrapper that grades a seed
//! set by forward simulation (used to score the heuristic baselines, §VI.A).

use crate::benefit::realized_benefit;
use crate::parallel::worker_count;
use crate::{DiffusionError, DiffusionModel, Result};
use imc_community::CommunitySet;
use imc_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The stopping-rule threshold `Λ′ = 1 + 4(e − 2)·ln(2/δ)·(1 + ε)/ε²`.
///
/// # Panics
///
/// Panics if `epsilon` or `delta` are outside `(0, 1)`.
pub fn stopping_threshold(epsilon: f64, delta: f64) -> f64 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    1.0 + 4.0 * (std::f64::consts::E - 2.0) * (2.0 / delta).ln() * (1.0 + epsilon)
        / (epsilon * epsilon)
}

/// Runs the Stopping Rule Algorithm on a `[0, 1]`-valued sampler.
///
/// Draws samples until their running sum reaches
/// [`stopping_threshold`]`(epsilon, delta)`; returns the mean estimate.
///
/// # Errors
///
/// * [`DiffusionError::InvalidParameter`] for `ε, δ ∉ (0, 1)`.
/// * [`DiffusionError::BudgetExhausted`] when `max_samples` draws did not
///   reach the threshold (mean too small to certify — the caller decides
///   how to interpret this, mirroring Alg. 6's `return −1`).
pub fn stopping_rule_estimate<F>(
    mut sampler: F,
    epsilon: f64,
    delta: f64,
    max_samples: u64,
    rng: &mut dyn RngCore,
) -> Result<f64>
where
    F: FnMut(&mut dyn RngCore) -> f64,
{
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(DiffusionError::InvalidParameter { name: "epsilon" });
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(DiffusionError::InvalidParameter { name: "delta" });
    }
    let lambda = stopping_threshold(epsilon, delta);
    let mut sum = 0.0f64;
    let mut t: u64 = 0;
    while t < max_samples {
        let z = sampler(rng);
        debug_assert!(
            (0.0..=1.0 + 1e-9).contains(&z),
            "sampler must emit values in [0,1]"
        );
        sum += z;
        t += 1;
        if sum >= lambda {
            return Ok(lambda / t as f64);
        }
    }
    Err(DiffusionError::BudgetExhausted { samples: t })
}

/// Grades a seed set: estimates `c(S)` with the stopping rule over forward
/// simulations of `model` (each sample is the realized benefit normalized
/// by the total benefit `b`, a `[0, 1]` variable with mean `c(S)/b`).
///
/// Simulation work is sharded over threads; each worker runs an
/// independently-seeded stream and the stopping decision is applied to the
/// deterministic interleaving of worker outputs, so results are
/// reproducible for a fixed `seed`.
///
/// # Errors
///
/// Same conditions as [`stopping_rule_estimate`]. A
/// [`DiffusionError::BudgetExhausted`] here means `c(S)` is statistically
/// indistinguishable from 0 within the budget; callers typically map it to
/// benefit 0.
#[allow(clippy::too_many_arguments)] // mirrors the paper's Estimate signature
pub fn dagum_benefit(
    graph: &Graph,
    communities: &CommunitySet,
    model: &dyn DiffusionModel,
    seeds: &[NodeId],
    epsilon: f64,
    delta: f64,
    max_samples: u64,
    seed: u64,
) -> Result<f64> {
    let b = communities.total_benefit();
    if b == 0.0 {
        return Ok(0.0);
    }
    // Parallel batched sampling: workers fill fixed-size batches; the
    // stopping rule consumes batches in deterministic order.
    let batch = 256u64;
    let workers = worker_count();
    let mut produced: u64 = 0;
    let mut consumed_batches: u64 = 0;
    let lambda = stopping_threshold(epsilon, delta);
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(DiffusionError::InvalidParameter { name: "epsilon" });
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(DiffusionError::InvalidParameter { name: "delta" });
    }
    let mut sum = 0.0f64;
    let mut t: u64 = 0;
    'outer: while produced < max_samples {
        // Produce `workers` batches in parallel.
        let n_batches = workers as u64;
        let sums: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_batches)
                .map(|i| {
                    let batch_seed = seed.wrapping_add(
                        0x9E37_79B9_7F4A_7C15u64.wrapping_mul(consumed_batches + i + 1),
                    );
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(batch_seed);
                        let mut vals = Vec::with_capacity(batch as usize);
                        for _ in 0..batch {
                            let active = model
                                .simulate(graph, seeds, &mut rng)
                                .expect("seed set validated by caller");
                            vals.push(realized_benefit(communities, &active) / b);
                        }
                        vals
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        consumed_batches += n_batches;
        for vals in sums {
            for z in vals {
                sum += z;
                t += 1;
                produced += 1;
                if sum >= lambda {
                    break 'outer;
                }
                if produced >= max_samples {
                    break 'outer;
                }
            }
        }
    }
    if sum >= lambda {
        Ok(b * lambda / t as f64)
    } else {
        Err(DiffusionError::BudgetExhausted { samples: t })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndependentCascade;
    use imc_graph::GraphBuilder;
    use rand::Rng;

    #[test]
    fn threshold_formula_matches_paper() {
        // ε = δ = 0.2: Λ′ = 1 + 4(e−2)·ln(10)·1.2/0.04
        let expected = 1.0 + 4.0 * (std::f64::consts::E - 2.0) * 10.0f64.ln() * 1.2 / 0.04;
        assert!((stopping_threshold(0.2, 0.2) - expected).abs() < 1e-9);
    }

    #[test]
    fn estimates_bernoulli_mean_within_epsilon() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = 0.37;
        let est = stopping_rule_estimate(
            |r| if r.random::<f64>() < p { 1.0 } else { 0.0 },
            0.1,
            0.1,
            10_000_000,
            &mut rng,
        )
        .unwrap();
        assert!((est - p).abs() <= 0.1 * p * 1.5, "est={est}");
    }

    #[test]
    fn estimates_constant_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        let est = stopping_rule_estimate(|_| 0.5, 0.2, 0.2, 1_000_000, &mut rng).unwrap();
        // Sum crosses Λ′ after T = ceil(Λ′ / 0.5); estimate Λ′/T ∈ (0.5−, 0.5].
        assert!((est - 0.5).abs() < 0.01, "est={est}");
    }

    #[test]
    fn zero_mean_exhausts_budget() {
        let mut rng = StdRng::seed_from_u64(4);
        let err = stopping_rule_estimate(|_| 0.0, 0.2, 0.2, 1000, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            DiffusionError::BudgetExhausted { samples: 1000 }
        ));
    }

    #[test]
    fn invalid_params_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(stopping_rule_estimate(|_| 1.0, 0.0, 0.2, 10, &mut rng).is_err());
        assert!(stopping_rule_estimate(|_| 1.0, 0.2, 1.0, 10, &mut rng).is_err());
    }

    #[test]
    fn dagum_benefit_on_deterministic_instance() {
        // 0 -> 1 and 0 -> 2 with certainty; community {1,2} h=2 b=4.
        let mut bld = GraphBuilder::new(3);
        bld.add_edge(0, 1, 1.0).unwrap();
        bld.add_edge(0, 2, 1.0).unwrap();
        let g = bld.build().unwrap();
        let cs = CommunitySet::from_parts(3, vec![(vec![NodeId::new(1), NodeId::new(2)], 2, 4.0)])
            .unwrap();
        let est = dagum_benefit(
            &g,
            &cs,
            &IndependentCascade,
            &[NodeId::new(0)],
            0.2,
            0.2,
            100_000,
            7,
        )
        .unwrap();
        assert!((est - 4.0).abs() < 0.2, "est={est}");
    }

    #[test]
    fn dagum_benefit_zero_when_unreachable() {
        let g = GraphBuilder::new(3).build().unwrap();
        let cs = CommunitySet::from_parts(3, vec![(vec![NodeId::new(1), NodeId::new(2)], 2, 4.0)])
            .unwrap();
        let res = dagum_benefit(
            &g,
            &cs,
            &IndependentCascade,
            &[NodeId::new(0)],
            0.2,
            0.2,
            2000,
            7,
        );
        assert!(matches!(res, Err(DiffusionError::BudgetExhausted { .. })));
    }
}
