use std::fmt;

/// Errors from diffusion simulation and estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffusionError {
    /// A seed node id is outside the graph.
    SeedOutOfRange {
        /// The raw offending node id.
        node: u32,
        /// Graph node count.
        node_count: u32,
    },
    /// An estimation parameter (`ε` or `δ`) is outside `(0, 1)`.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
    },
    /// A stopping-rule estimator exhausted its sample budget before
    /// reaching the required confidence.
    BudgetExhausted {
        /// How many samples were drawn.
        samples: u64,
    },
}

impl fmt::Display for DiffusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffusionError::SeedOutOfRange { node, node_count } => {
                write!(
                    f,
                    "seed node {node} out of range for graph with {node_count} nodes"
                )
            }
            DiffusionError::InvalidParameter { name } => {
                write!(f, "estimation parameter {name} must lie in (0, 1)")
            }
            DiffusionError::BudgetExhausted { samples } => {
                write!(
                    f,
                    "sample budget exhausted after {samples} samples without convergence"
                )
            }
        }
    }
}

impl std::error::Error for DiffusionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_detail() {
        let e = DiffusionError::SeedOutOfRange {
            node: 4,
            node_count: 2,
        };
        assert!(e.to_string().contains('4'));
        let e = DiffusionError::InvalidParameter { name: "epsilon" };
        assert!(e.to_string().contains("epsilon"));
        let e = DiffusionError::BudgetExhausted { samples: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<DiffusionError>();
    }
}
