//! Golden-file test for the Prometheus 0.0.4 encoder: a local registry
//! with one family of each kind must render byte-for-byte identically to
//! `tests/golden/exposition.txt`.
//!
//! All observed values are exact binary floats (.25/.5 multiples) so the
//! rendering is deterministic across platforms.

use imc_obs::{encode, Registry};

#[test]
fn exposition_matches_golden_file() {
    let registry = Registry::new();

    let solve = registry.counter_with(
        "imc_requests_total",
        "Completed requests by operation.",
        &[("op", "solve")],
    );
    solve.inc_by(5);
    let estimate = registry.counter_with(
        "imc_requests_total",
        "Completed requests by operation.",
        &[("op", "estimate")],
    );
    estimate.inc_by(2);

    let gauge = registry.gauge(
        "imc_collection_samples",
        "RIC samples in the live collection.",
    );
    gauge.set(4096.0);

    let hist = registry.histogram(
        "imc_request_duration_seconds",
        "Wall-clock request latency.",
        &[0.25, 0.5, 1.0],
    );
    hist.observe(0.125);
    hist.observe(0.25); // le bounds are inclusive
    hist.observe(0.75);
    hist.observe(2.5); // +Inf bucket

    let rendered = encode::to_prometheus(&registry);
    let golden = include_str!("golden/exposition.txt");
    assert_eq!(
        rendered, golden,
        "encoder output drifted from tests/golden/exposition.txt"
    );
}
