//! Property tests for the trace stitcher ([`imc_obs::timeline`]).
//!
//! The stitcher consumes whatever JSONL a crashed or skewed cluster left
//! behind, so the properties hammer exactly those conditions:
//!
//! * **line order is irrelevant** — spans arrive interleaved across
//!   threads and processes, so any permutation of the same lines must
//!   stitch to the same tree;
//! * **clock skew is corrected exactly** — a shard file linked through
//!   an `rpc_client`/`rpc_server` pair plus a `clock_offset` event is
//!   shifted by precisely `-offset_us`;
//! * **truncated streams never panic** — a kill -9 mid-write leaves a
//!   torn final line; every prefix of a valid file must parse to a
//!   subset of the full timeline with at most one skipped line.

use imc_obs::timeline::TraceSet;
use proptest::prelude::*;

/// One synthetic span: parent link, start and duration (µs), name and
/// detail drawn from realistic vocabularies.
#[derive(Debug, Clone)]
struct RawSpan {
    parent: Option<usize>,
    start_us: i64,
    dur_us: i64,
    name: &'static str,
    detail: &'static str,
}

/// A forest of up to 40 spans; span 0 is always a root, later spans pick
/// a parent among their predecessors or none.
fn forest() -> impl Strategy<Value = Vec<RawSpan>> {
    let span = (
        0u32..65_536,
        0u64..5_000_000,
        0u64..2_000_000,
        prop_oneof![
            Just("cluster_solve"),
            Just("scatter_round"),
            Just("rpc_client"),
            Just("reduce"),
        ],
        prop_oneof![
            Just(""),
            Just("GREEDY"),
            Just("c"),
            Just("eval_batch 127.0.0.1:9001"),
            Just("nu x:1.0,y:-2"),
        ],
    );
    prop::collection::vec(span, 1..40).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (sel, start_us, dur_us, name, detail))| RawSpan {
                parent: if i == 0 || sel % 4 == 0 {
                    None
                } else {
                    Some(sel as usize % i)
                },
                start_us: start_us as i64,
                dur_us: dur_us as i64,
                name,
                detail,
            })
            .collect()
    })
}

/// Serializes a forest the way the live sink does (one span event per
/// line, `ts_us` = end time), in index order.
fn serialize(forest: &[RawSpan], trace_id: &str) -> Vec<String> {
    forest
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let parent = s
                .parent
                .map(|p| format!(r#""parent_span_id":"s{p}","#))
                .unwrap_or_default();
            let detail = if s.detail.is_empty() {
                String::new()
            } else {
                format!(r#","detail":"{}""#, s.detail)
            };
            format!(
                r#"{{"ts_us":{},"kind":"span","trace_id":"{trace_id}",{parent}"span_id":"s{i}","span":"{}","start_us":{},"seconds":{:.6}{detail}}}"#,
                s.start_us + s.dur_us,
                s.name,
                s.start_us,
                s.dur_us as f64 / 1e6,
            )
        })
        .collect()
}

/// Deterministic Fisher–Yates permutation from a 64-bit seed (an LCG,
/// so the property owns its shuffle instead of leaning on the strategy
/// surface).
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any permutation of the same span lines stitches to the same
    /// forest: every parent link honored, every span present exactly
    /// once, one folded-stack line per span, and a critical path that
    /// is a root-anchored parent→child chain.
    #[test]
    fn shuffled_lines_stitch_to_the_same_forest(
        forest in forest(),
        seed in 0u64..u64::MAX,
    ) {
        let mut lines = serialize(&forest, "t-prop");
        shuffle(&mut lines, seed);
        let set = TraceSet::parse(&[("in".to_string(), lines.join("\n"))]);
        let tl = set.timeline("t-prop").expect("non-empty forest stitches");

        prop_assert_eq!(tl.spans.len(), forest.len());
        prop_assert_eq!(&set.skipped, &vec![0]);

        // Parent links: a span whose parent exists is that parent's
        // child; everything else is a root.
        let by_id = |id: &str| tl.spans.iter().position(|s| s.span_id == id).unwrap();
        for (i, raw) in forest.iter().enumerate() {
            let at = by_id(&format!("s{i}"));
            match raw.parent {
                Some(p) => {
                    let parent = by_id(&format!("s{p}"));
                    prop_assert!(tl.spans[parent].children.contains(&at));
                    prop_assert!(!tl.roots.contains(&at));
                }
                None => prop_assert!(tl.roots.contains(&at)),
            }
            prop_assert!(tl.spans[at].end_us >= tl.spans[at].start_us);
        }
        let child_count: usize = tl.spans.iter().map(|s| s.children.len()).sum();
        prop_assert_eq!(child_count + tl.roots.len(), forest.len());

        // One folded-stack line per span, all self-times non-negative.
        let folded = tl.folded_stacks();
        prop_assert_eq!(folded.lines().count(), forest.len());
        for line in folded.lines() {
            let value: i64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            prop_assert!(value >= 0);
        }

        // The critical path starts at a root and descends parent→child.
        let path = tl.critical_path();
        prop_assert!(!path.is_empty());
        prop_assert!(tl.roots.contains(&path[0]));
        for pair in path.windows(2) {
            prop_assert!(tl.spans[pair[0]].children.contains(&pair[1]));
        }

        // The report never panics and names the trace.
        prop_assert!(tl.report().contains("t-prop"));
    }

    /// A shard file linked by an `rpc_client`/`rpc_server` pair and a
    /// `clock_offset` event is shifted by exactly `-offset_us`,
    /// whatever the skew's sign or magnitude.
    #[test]
    fn clock_skewed_shard_file_is_aligned_exactly(
        raw_offset in 0u64..20_000_000,
        rtt_us in 0u64..50_000,
        server_start in 1_000_000u64..2_000_000,
        server_dur in 0u64..500_000,
    ) {
        let offset_us = raw_offset as i64 - 10_000_000; // skew in ±10s
        let server_start = server_start as i64;
        let server_dur = server_dur as i64;
        let coordinator = format!(
            concat!(
                r#"{{"ts_us":3000000,"kind":"span","trace_id":"t","span_id":"c1","span":"rpc_client","start_us":1000000,"seconds":2.0,"detail":"eval_batch 127.0.0.1:9101"}}"#,
                "\n",
                r#"{{"ts_us":500000,"kind":"clock_offset","shard":"127.0.0.1:9101","offset_us":{offset},"rtt_us":{rtt},"probes":4}}"#,
            ),
            offset = offset_us,
            rtt = rtt_us,
        );
        let shard = format!(
            r#"{{"ts_us":{end},"kind":"span","trace_id":"t","parent_span_id":"c1","span_id":"srv1","span":"rpc_server","start_us":{start},"seconds":{secs:.6}}}"#,
            end = server_start + offset_us + server_dur,
            start = server_start + offset_us,
            secs = server_dur as f64 / 1e6,
        );
        let set = TraceSet::parse(&[
            ("coordinator".to_string(), coordinator),
            ("shard".to_string(), shard),
        ]);
        let tl = set.timeline("t").expect("trace t stitches");
        let srv = tl.spans.iter().find(|s| s.name == "rpc_server").unwrap();
        prop_assert_eq!(srv.start_us, server_start);
        prop_assert_eq!(srv.end_us, server_start + server_dur);
        let client = tl.spans.iter().position(|s| s.span_id == "c1").unwrap();
        let srv_at = tl.spans.iter().position(|s| s.span_id == "srv1").unwrap();
        prop_assert!(tl.spans[client].children.contains(&srv_at));
        prop_assert_eq!(tl.offsets.len(), 1);
        prop_assert_eq!(tl.offsets[0].offset_us, offset_us);
    }

    /// Every byte-prefix of a valid trace file parses without panicking
    /// into a subset of the full forest, skipping at most the one torn
    /// line.
    #[test]
    fn truncated_streams_parse_a_prefix_of_the_forest(
        forest in forest(),
        seed in 0u64..u64::MAX,
        cut_frac in 0f64..1f64,
    ) {
        let mut lines = serialize(&forest, "t-cut");
        shuffle(&mut lines, seed);
        let full = lines.join("\n");
        let cut = (full.len() as f64 * cut_frac) as usize;
        // All-ASCII serialization, so any byte index is a char boundary.
        let truncated = &full[..cut.min(full.len())];

        let set = TraceSet::parse(&[("in".to_string(), truncated.to_string())]);
        prop_assert!(set.skipped[0] <= 1, "at most the torn line skips");
        if let Some(tl) = set.timeline("t-cut") {
            prop_assert!(tl.spans.len() <= forest.len());
            // Every stitched span is one of the originals, intact.
            for span in &tl.spans {
                let i: usize = span.span_id[1..].parse().unwrap();
                prop_assert_eq!(span.start_us, forest[i].start_us);
                prop_assert_eq!(span.end_us, forest[i].start_us + forest[i].dur_us);
                prop_assert_eq!(span.name.as_str(), forest[i].name);
            }
            let _ = tl.report();
            let _ = tl.folded_stacks();
            let _ = tl.critical_path();
        }
    }
}
