//! Prometheus text exposition format 0.0.4.
//!
//! One `# HELP` / `# TYPE` header per family, then one line per child
//! sample. Histograms expand to cumulative `_bucket{le="..."}` series plus
//! `_sum` and `_count`, exactly as scrapers expect. Serve the output with
//! content type `text/plain; version=0.0.4; charset=utf-8`.

use crate::registry::{Child, Registry};
use std::fmt::Write as _;

/// The HTTP `Content-Type` for this exposition format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Renders every family in `registry` (registration order; children in
/// label order) as Prometheus 0.0.4 text.
pub fn to_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    for family in registry.families() {
        let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
        let children = family.children.read().expect("family lock");
        for (values, child) in children.iter() {
            let labels = render_labels(&family.label_names, values);
            match child {
                Child::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", family.name, labels, c.get());
                }
                Child::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", family.name, labels, fmt_value(g.get()));
                }
                Child::Histogram(h) => {
                    let cumulative = h.cumulative_buckets();
                    for (bound, count) in h.bounds().iter().zip(&cumulative) {
                        let le = with_label(&family.label_names, values, "le", &fmt_value(*bound));
                        let _ = writeln!(out, "{}_bucket{} {}", family.name, le, count);
                    }
                    let inf = with_label(&family.label_names, values, "le", "+Inf");
                    let total = cumulative.last().copied().unwrap_or(0);
                    let _ = writeln!(out, "{}_bucket{} {}", family.name, inf, total);
                    let _ = writeln!(out, "{}_sum{} {}", family.name, labels, fmt_value(h.sum()));
                    let _ = writeln!(out, "{}_count{} {}", family.name, labels, h.count());
                    // Top-bucket exemplar, rendered as a comment line:
                    // format-0.0.4 parsers skip it, humans and tooling can
                    // still jump from a slow bucket to the offending trace.
                    if let Some(ex) = h.exemplar() {
                        let _ = writeln!(
                            out,
                            "# EXEMPLAR {}{} trace_id=\"{}\" value={} ts_us={}",
                            family.name,
                            labels,
                            escape_label(&ex.trace_id),
                            fmt_value(ex.value),
                            ex.ts_us
                        );
                    }
                }
            }
        }
    }
    out
}

/// Renders one finite or infinite value the way Prometheus expects.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn render_labels(names: &[String], values: &[String]) -> String {
    if names.is_empty() {
        return String::new();
    }
    let pairs: Vec<String> = names
        .iter()
        .zip(values)
        .map(|(n, v)| format!("{n}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

fn with_label(names: &[String], values: &[String], extra_name: &str, extra_value: &str) -> String {
    let mut pairs: Vec<String> = names
        .iter()
        .zip(values)
        .map(|(n, v)| format!("{n}=\"{}\"", escape_label(v)))
        .collect();
    pairs.push(format!("{extra_name}=\"{}\"", escape_label(extra_value)));
    format!("{{{}}}", pairs.join(","))
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_labels_render() {
        let r = Registry::new();
        r.counter_with("a_total", "A total.", &[("op", "x")]).inc();
        r.gauge("b", "B gauge.").set(1.5);
        let text = to_prometheus(&r);
        assert!(text.contains("# HELP a_total A total."));
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total{op=\"x\"} 1"));
        assert!(text.contains("# TYPE b gauge"));
        assert!(text.contains("b 1.5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let r = Registry::new();
        let h = r.histogram("h_seconds", "H.", &[0.5, 2.0]);
        h.observe(0.25);
        h.observe(1.0);
        h.observe(10.0);
        let text = to_prometheus(&r);
        assert!(text.contains("h_seconds_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("h_seconds_bucket{le=\"2\"} 2"));
        assert!(text.contains("h_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("h_seconds_sum 11.25"));
        assert!(text.contains("h_seconds_count 3"));
    }

    #[test]
    fn histogram_exemplar_renders_as_a_comment_line() {
        let r = Registry::new();
        let h = r.histogram_with("ex_seconds", "E.", &[0.5, 2.0], &[("op", "solve")]);
        h.observe(0.1);
        let text = to_prometheus(&r);
        assert!(
            !text.contains("# EXEMPLAR"),
            "no exemplar before one is set"
        );
        h.observe_with_exemplar(10.0, "feedbeeffeedbeef");
        let text = to_prometheus(&r);
        let line = text
            .lines()
            .find(|l| l.starts_with("# EXEMPLAR"))
            .expect("exemplar comment present");
        assert!(line.contains("ex_seconds{op=\"solve\"}"), "line: {line}");
        assert!(
            line.contains("trace_id=\"feedbeeffeedbeef\""),
            "line: {line}"
        );
        assert!(line.contains("value=10"), "line: {line}");
        // Every sample line still parses as format 0.0.4: comments aside,
        // nothing rides on a sample line.
        for l in text.lines().filter(|l| l.starts_with("ex_seconds")) {
            assert!(l.rsplit(' ').next().unwrap().parse::<f64>().is_ok());
        }
    }

    #[test]
    fn help_and_label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("e_total", "line1\nline2 \\ slash", &[("p", "a\"b\nc")])
            .inc();
        let text = to_prometheus(&r);
        assert!(text.contains("# HELP e_total line1\\nline2 \\\\ slash"));
        assert!(text.contains("e_total{p=\"a\\\"b\\nc\"} 1"));
    }

    #[test]
    fn label_escaping_handles_trailing_and_consecutive_backslashes() {
        // A value ending in `\` must not swallow the closing quote, and
        // `\\` must double to `\\\\` — a scraper that unescapes the line
        // has to recover the original value byte-for-byte.
        let r = Registry::new();
        r.counter_with("bs_total", "B.", &[("p", "tail\\")]).inc();
        r.counter_with("bs_total", "B.", &[("p", "a\\\\b")]).inc();
        let text = to_prometheus(&r);
        assert!(text.contains("bs_total{p=\"tail\\\\\"} 1"), "text: {text}");
        assert!(
            text.contains("bs_total{p=\"a\\\\\\\\b\"} 1"),
            "text: {text}"
        );
        // Each escaped sample still occupies exactly one line.
        for line in text.lines().filter(|l| l.starts_with("bs_total{")) {
            assert!(line.ends_with(" 1"));
        }
    }

    #[test]
    fn label_escaping_handles_all_three_specials_together() {
        // `\`, `"`, and a raw newline in one value: order of the replace
        // passes matters (escaping `\` last would corrupt the others).
        let r = Registry::new();
        r.counter_with("mix_total", "M.", &[("p", "\\\"\n")]).inc();
        let text = to_prometheus(&r);
        assert!(
            text.contains("mix_total{p=\"\\\\\\\"\\n\"} 1"),
            "text: {text}"
        );
        // The raw newline must not split the sample across lines.
        assert!(!text.contains("mix_total{p=\"\\\\\\\"\n"));
    }

    #[test]
    fn histogram_le_lines_escape_shared_label_values() {
        // The synthesized `le` label rides along with user labels on every
        // bucket line — user-label escaping must survive the combination.
        let r = Registry::new();
        let h = r.histogram_with("esc_seconds", "E.", &[0.5], &[("op", "a\"b")]);
        h.observe(0.1);
        let text = to_prometheus(&r);
        assert!(
            text.contains("esc_seconds_bucket{op=\"a\\\"b\",le=\"0.5\"} 1"),
            "text: {text}"
        );
        assert!(
            text.contains("esc_seconds_bucket{op=\"a\\\"b\",le=\"+Inf\"} 1"),
            "text: {text}"
        );
    }
}
