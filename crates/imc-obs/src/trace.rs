//! Structured JSONL trace events to an optional global sink.
//!
//! A trace event is one JSON object per line: `ts_us` (UNIX microseconds),
//! `kind` (event type, e.g. `"imcaf_round"`), then arbitrary typed fields.
//! The sink is process-global and off by default; when no sink is
//! installed, [`emit`] is a single relaxed atomic load and the event
//! builder is never even constructed by well-behaved callers (guard with
//! [`enabled`]).
//!
//! ```
//! use imc_obs::trace::{self, TraceEvent};
//!
//! if trace::enabled() {
//!     trace::emit(
//!         TraceEvent::new("imcaf_round")
//!             .field("round", 3u64)
//!             .field("samples", 4096u64)
//!             .field("converged", false),
//!     );
//! }
//! ```

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

type Sink = Arc<Mutex<Box<dyn Write + Send>>>;

fn sink_slot() -> &'static RwLock<Option<Sink>> {
    static SLOT: RwLock<Option<Sink>> = RwLock::new(None);
    &SLOT
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether a trace sink is installed. Cheap (one relaxed load): guard
/// event construction with this on hot paths.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a JSONL sink writing (appending is up to the caller: this
/// truncates) to `path`. Replaces any previous sink.
pub fn set_sink_path(path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    set_sink_writer(Box::new(std::io::BufWriter::new(file)));
    Ok(())
}

/// Installs an arbitrary writer as the trace sink. Replaces any previous
/// sink.
pub fn set_sink_writer(writer: Box<dyn Write + Send>) {
    let mut slot = sink_slot().write().expect("trace sink lock");
    *slot = Some(Arc::new(Mutex::new(writer)));
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes the sink (flushing it) and disables tracing.
pub fn clear_sink() {
    let mut slot = sink_slot().write().expect("trace sink lock");
    if let Some(sink) = slot.take() {
        if let Ok(mut w) = sink.lock() {
            let _ = w.flush();
        }
    }
    ENABLED.store(false, Ordering::Relaxed);
}

thread_local! {
    static CURRENT_TRACE_ID: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// RAII guard scoping a request `trace_id` to the current thread.
///
/// While the guard lives, every [`TraceEvent`] constructed **on this
/// thread** carries a `trace_id` field, so all events emitted while
/// serving one request — solver spans, engine iterations, IMCAF rounds —
/// stitch into one span tree in the JSONL sink. Guards nest: dropping an
/// inner guard restores the outer id.
///
/// The id does **not** propagate into worker threads spawned inside the
/// scope (the engine deliberately emits its trace events from the
/// coordinating thread for exactly this reason).
///
/// ```
/// use imc_obs::trace::{self, TraceCtx};
///
/// let guard = TraceCtx::enter("0123456789abcdef");
/// assert_eq!(trace::current_trace_id().as_deref(), Some("0123456789abcdef"));
/// drop(guard);
/// assert_eq!(trace::current_trace_id(), None);
/// ```
#[must_use = "dropping the guard immediately ends the trace scope"]
#[derive(Debug)]
pub struct TraceCtx {
    previous: Option<String>,
}

impl TraceCtx {
    /// Makes `trace_id` the current thread's trace id until the returned
    /// guard is dropped.
    pub fn enter(trace_id: &str) -> TraceCtx {
        let previous =
            CURRENT_TRACE_ID.with(|slot| slot.borrow_mut().replace(trace_id.to_string()));
        TraceCtx { previous }
    }
}

impl Drop for TraceCtx {
    fn drop(&mut self) {
        CURRENT_TRACE_ID.with(|slot| {
            *slot.borrow_mut() = self.previous.take();
        });
    }
}

/// The trace id installed on this thread by a live [`TraceCtx`], if any.
pub fn current_trace_id() -> Option<String> {
    CURRENT_TRACE_ID.with(|slot| slot.borrow().clone())
}

/// Writes one event as a single JSON line. No-op when no sink is
/// installed; write errors are swallowed (tracing must never take the
/// solver down).
pub fn emit(event: TraceEvent) {
    if !enabled() {
        return;
    }
    let sink = {
        let slot = sink_slot().read().expect("trace sink lock");
        match slot.as_ref() {
            Some(s) => Arc::clone(s),
            None => return,
        }
    };
    let line = event.to_json();
    if let Ok(mut w) = sink.lock() {
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    };
}

/// A typed field value inside a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float; non-finite values serialize as JSON `null`.
    F64(f64),
    /// String (JSON-escaped on output).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One structured trace event, built field-by-field then [`emit`]ted.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    ts_us: u64,
    kind: String,
    fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// A new event of the given kind, timestamped now (UNIX microseconds).
    ///
    /// When a [`TraceCtx`] is live on this thread, the event starts with
    /// a `trace_id` field so it joins that request's span tree.
    pub fn new(kind: &str) -> Self {
        let ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let mut fields = Vec::new();
        if let Some(id) = current_trace_id() {
            fields.push(("trace_id".to_string(), FieldValue::Str(id)));
        }
        TraceEvent {
            ts_us,
            kind: kind.to_string(),
            fields,
        }
    }

    /// Appends one typed field (builder style).
    pub fn field(mut self, key: &str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 24 * self.fields.len());
        out.push_str("{\"ts_us\":");
        let _ = write!(out, "{}", self.ts_us);
        out.push_str(",\"kind\":\"");
        escape_into(&mut out, &self.kind);
        out.push('"');
        for (k, v) in &self.fields {
            out.push_str(",\"");
            escape_into(&mut out, k);
            out.push_str("\":");
            match v {
                FieldValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::I64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::F64(x) => {
                    if x.is_finite() {
                        let _ = write!(out, "{x}");
                    } else {
                        out.push_str("null");
                    }
                }
                FieldValue::Str(s) => {
                    out.push('"');
                    escape_into(&mut out, s);
                    out.push('"');
                }
                FieldValue::Bool(b) => {
                    out.push_str(if *b { "true" } else { "false" });
                }
            }
        }
        out.push('}');
        out
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serializes_all_field_types() {
        let e = TraceEvent::new("test")
            .field("u", 7u64)
            .field("i", -3i64)
            .field("f", 0.5)
            .field("nan", f64::NAN)
            .field("s", "a\"b")
            .field("b", true);
        let json = e.to_json();
        assert!(json.starts_with("{\"ts_us\":"));
        assert!(json.contains("\"kind\":\"test\""));
        assert!(json.contains("\"u\":7"));
        assert!(json.contains("\"i\":-3"));
        assert!(json.contains("\"f\":0.5"));
        assert!(json.contains("\"nan\":null"));
        assert!(json.contains("\"s\":\"a\\\"b\""));
        assert!(json.contains("\"b\":true"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn emit_without_sink_is_a_noop() {
        // Must not panic or block; `enabled` can be toggled by other
        // tests, so just exercise the path.
        emit(TraceEvent::new("noop"));
    }

    #[test]
    fn set_sink_path_to_unwritable_location_errs_without_panicking() {
        // A directory that does not exist: File::create must fail, the
        // error must surface as io::Result, and nothing may panic. The
        // previously installed sink (if any) is left untouched because
        // the failure happens before the slot is written.
        let bogus = std::env::temp_dir()
            .join("imc-obs-no-such-dir")
            .join("deeper")
            .join("trace.jsonl");
        let err = set_sink_path(&bogus);
        assert!(
            err.is_err(),
            "creating a sink under a missing dir must fail"
        );
        // Tracing stays usable after the failure.
        emit(TraceEvent::new("after_unwritable_sink"));
    }

    /// A writer whose every write fails — emulates a disk that filled up
    /// after the sink was installed.
    struct FailingWriter;

    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("disk full"))
        }
    }

    #[test]
    fn emit_swallows_write_errors_from_a_failing_sink() {
        set_sink_writer(Box::new(FailingWriter));
        // Every write and flush errors; emit must degrade gracefully.
        emit(TraceEvent::new("lost_event").field("n", 1u64));
        emit(TraceEvent::new("lost_event").field("n", 2u64));
        // clear_sink flushes the failing writer — also must not panic.
        clear_sink();
    }

    #[test]
    fn trace_ctx_attaches_id_and_restores_on_drop() {
        assert_eq!(current_trace_id(), None);
        let outer = TraceCtx::enter("aaaa000011112222");
        assert_eq!(current_trace_id().as_deref(), Some("aaaa000011112222"));
        let json_outer = TraceEvent::new("e").to_json();
        assert!(
            json_outer.contains("\"trace_id\":\"aaaa000011112222\""),
            "events inside the scope carry the id: {json_outer}"
        );
        {
            let _inner = TraceCtx::enter("bbbb000011112222");
            assert_eq!(current_trace_id().as_deref(), Some("bbbb000011112222"));
        }
        // Inner guard dropped: outer id restored, not cleared.
        assert_eq!(current_trace_id().as_deref(), Some("aaaa000011112222"));
        drop(outer);
        assert_eq!(current_trace_id(), None);
        let json_outside = TraceEvent::new("e").to_json();
        assert!(!json_outside.contains("trace_id"));
    }

    #[test]
    fn trace_ctx_is_thread_local() {
        let _guard = TraceCtx::enter("cccc000011112222");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Worker threads do not inherit the coordinating thread's
                // trace id — the engine relies on this to emit from the
                // coordinator only.
                assert_eq!(current_trace_id(), None);
            });
        });
        assert_eq!(current_trace_id().as_deref(), Some("cccc000011112222"));
    }
}
