//! Structured JSONL trace events to an optional global sink.
//!
//! A trace event is one JSON object per line: `ts_us` (UNIX microseconds),
//! `kind` (event type, e.g. `"imcaf_round"`), then arbitrary typed fields.
//! The sink is process-global and off by default; when no sink is
//! installed, [`emit`] is a single relaxed atomic load and the event
//! builder is never even constructed by well-behaved callers (guard with
//! [`enabled`]).
//!
//! ```
//! use imc_obs::trace::{self, TraceEvent};
//!
//! if trace::enabled() {
//!     trace::emit(
//!         TraceEvent::new("imcaf_round")
//!             .field("round", 3u64)
//!             .field("samples", 4096u64)
//!             .field("converged", false),
//!     );
//! }
//! ```

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

type Sink = Arc<Mutex<Box<dyn Write + Send>>>;

fn sink_slot() -> &'static RwLock<Option<Sink>> {
    static SLOT: RwLock<Option<Sink>> = RwLock::new(None);
    &SLOT
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether a trace sink is installed. Cheap (one relaxed load): guard
/// event construction with this on hot paths.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a JSONL sink writing (appending is up to the caller: this
/// truncates) to `path`. Replaces any previous sink.
///
/// The file is written *unbuffered*: [`emit`] hands the kernel one
/// complete line per write syscall, so even when several processes
/// append to the same file (coordinator + shards sharing a trace path)
/// no line is ever torn across another's.
pub fn set_sink_path(path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    set_sink_writer(Box::new(file));
    Ok(())
}

/// Installs a JSONL sink *appending* to `path` (creating it if absent).
/// Replaces any previous sink. Use this when several processes share one
/// trace file: combined with the single-write-per-line discipline of
/// [`emit`], `O_APPEND` keeps their lines whole.
pub fn set_sink_path_append(path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::options()
        .create(true)
        .append(true)
        .open(path)?;
    set_sink_writer(Box::new(file));
    Ok(())
}

/// Installs an arbitrary writer as the trace sink. Replaces any previous
/// sink.
pub fn set_sink_writer(writer: Box<dyn Write + Send>) {
    let mut slot = sink_slot().write().expect("trace sink lock");
    *slot = Some(Arc::new(Mutex::new(writer)));
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes the sink (flushing it) and disables tracing.
pub fn clear_sink() {
    let mut slot = sink_slot().write().expect("trace sink lock");
    if let Some(sink) = slot.take() {
        if let Ok(mut w) = sink.lock() {
            let _ = w.flush();
        }
    }
    ENABLED.store(false, Ordering::Relaxed);
}

/// The per-thread span context: which trace this thread is serving and
/// which span is currently open (the parent of anything emitted now).
#[derive(Debug, Clone, Default)]
struct Ctx {
    trace_id: Option<String>,
    span_id: Option<String>,
}

thread_local! {
    static CURRENT: RefCell<Ctx> = RefCell::new(Ctx::default());
}

/// The current wall clock as UNIX microseconds — the timestamp base every
/// trace event uses, exposed so spans can stamp their start consistently.
pub fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Mints a fresh 16-hex-digit id for a trace or span. Ids are unique per
/// process run (counter + wall clock + pid hashed together); they carry
/// no ordering information.
pub fn fresh_id() -> String {
    use std::hash::{Hash, Hasher};
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    COUNTER.fetch_add(1, Ordering::Relaxed).hash(&mut hasher);
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
        .hash(&mut hasher);
    std::process::id().hash(&mut hasher);
    format!("{:016x}", hasher.finish())
}

/// RAII guard scoping a request `trace_id` to the current thread.
///
/// While the guard lives, every [`TraceEvent`] constructed **on this
/// thread** carries a `trace_id` field, so all events emitted while
/// serving one request — solver spans, engine iterations, IMCAF rounds —
/// stitch into one span tree in the JSONL sink. Guards nest: dropping an
/// inner guard restores the outer id.
///
/// The id does **not** propagate into worker threads spawned inside the
/// scope (the engine deliberately emits its trace events from the
/// coordinating thread for exactly this reason).
///
/// ```
/// use imc_obs::trace::{self, TraceCtx};
///
/// let guard = TraceCtx::enter("0123456789abcdef");
/// assert_eq!(trace::current_trace_id().as_deref(), Some("0123456789abcdef"));
/// drop(guard);
/// assert_eq!(trace::current_trace_id(), None);
/// ```
#[must_use = "dropping the guard immediately ends the trace scope"]
#[derive(Debug)]
pub struct TraceCtx {
    previous: Ctx,
}

impl TraceCtx {
    /// Makes `trace_id` the current thread's trace id until the returned
    /// guard is dropped. The span stack starts empty: the next
    /// [`Span`](crate::Span) opened inside the scope becomes a root span
    /// of the trace.
    pub fn enter(trace_id: &str) -> TraceCtx {
        TraceCtx::enter_remote(trace_id, None)
    }

    /// Adopts a span context received over the wire: `trace_id` plus the
    /// caller's span id, so spans opened inside the scope nest under the
    /// *remote* parent when the timeline is stitched across processes.
    pub fn enter_remote(trace_id: &str, parent_span_id: Option<&str>) -> TraceCtx {
        let next = Ctx {
            trace_id: Some(trace_id.to_string()),
            span_id: parent_span_id.map(str::to_string),
        };
        let previous = CURRENT.with(|slot| std::mem::replace(&mut *slot.borrow_mut(), next));
        TraceCtx { previous }
    }
}

impl Drop for TraceCtx {
    fn drop(&mut self) {
        CURRENT.with(|slot| {
            *slot.borrow_mut() = std::mem::take(&mut self.previous);
        });
    }
}

/// The trace id installed on this thread by a live [`TraceCtx`], if any.
pub fn current_trace_id() -> Option<String> {
    CURRENT.with(|slot| slot.borrow().trace_id.clone())
}

/// The id of the innermost open span on this thread, if any — what a new
/// event or child span should use as `parent_span_id`.
pub fn current_span_id() -> Option<String> {
    CURRENT.with(|slot| slot.borrow().span_id.clone())
}

/// Makes `span_id` the current span on this thread, returning the
/// previous one for restoration. Used by [`Span`](crate::Span) to
/// maintain the nesting stack; `None` pops to "no open span".
pub(crate) fn swap_current_span(span_id: Option<String>) -> Option<String> {
    CURRENT.with(|slot| std::mem::replace(&mut slot.borrow_mut().span_id, span_id))
}

/// Writes one event as a single JSON line. No-op when no sink is
/// installed; write errors are swallowed (tracing must never take the
/// solver down).
pub fn emit(event: TraceEvent) {
    if !enabled() {
        return;
    }
    let sink = {
        let slot = sink_slot().read().expect("trace sink lock");
        match slot.as_ref() {
            Some(s) => Arc::clone(s),
            None => return,
        }
    };
    // One complete line per write call: the newline is part of the same
    // buffer, so concurrent emitters (and other processes appending to
    // the same file) can never tear a record in half.
    let mut line = event.to_json();
    line.push('\n');
    if let Ok(mut w) = sink.lock() {
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    };
}

/// A typed field value inside a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float; non-finite values serialize as JSON `null`.
    F64(f64),
    /// String (JSON-escaped on output).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One structured trace event, built field-by-field then [`emit`]ted.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    ts_us: u64,
    kind: String,
    fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// A new event of the given kind, timestamped now (UNIX microseconds).
    ///
    /// When a [`TraceCtx`] is live on this thread, the event starts with
    /// a `trace_id` field so it joins that request's span tree; when a
    /// [`Span`](crate::Span) is open, a `parent_span_id` field nests the
    /// event under it.
    pub fn new(kind: &str) -> Self {
        let ts_us = now_us();
        let mut fields = Vec::new();
        if let Some(id) = current_trace_id() {
            fields.push(("trace_id".to_string(), FieldValue::Str(id)));
        }
        if let Some(id) = current_span_id() {
            fields.push(("parent_span_id".to_string(), FieldValue::Str(id)));
        }
        TraceEvent {
            ts_us,
            kind: kind.to_string(),
            fields,
        }
    }

    /// Appends one typed field (builder style).
    pub fn field(mut self, key: &str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 24 * self.fields.len());
        out.push_str("{\"ts_us\":");
        let _ = write!(out, "{}", self.ts_us);
        out.push_str(",\"kind\":\"");
        escape_into(&mut out, &self.kind);
        out.push('"');
        for (k, v) in &self.fields {
            out.push_str(",\"");
            escape_into(&mut out, k);
            out.push_str("\":");
            match v {
                FieldValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::I64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::F64(x) => {
                    if x.is_finite() {
                        let _ = write!(out, "{x}");
                    } else {
                        out.push_str("null");
                    }
                }
                FieldValue::Str(s) => {
                    out.push('"');
                    escape_into(&mut out, s);
                    out.push('"');
                }
                FieldValue::Bool(b) => {
                    out.push_str(if *b { "true" } else { "false" });
                }
            }
        }
        out.push('}');
        out
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serializes tests (across this crate's modules) that install or clear
/// the process-global sink, so parallel tests don't clobber each other's
/// writers.
#[cfg(test)]
pub(crate) fn sink_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serializes_all_field_types() {
        let e = TraceEvent::new("test")
            .field("u", 7u64)
            .field("i", -3i64)
            .field("f", 0.5)
            .field("nan", f64::NAN)
            .field("s", "a\"b")
            .field("b", true);
        let json = e.to_json();
        assert!(json.starts_with("{\"ts_us\":"));
        assert!(json.contains("\"kind\":\"test\""));
        assert!(json.contains("\"u\":7"));
        assert!(json.contains("\"i\":-3"));
        assert!(json.contains("\"f\":0.5"));
        assert!(json.contains("\"nan\":null"));
        assert!(json.contains("\"s\":\"a\\\"b\""));
        assert!(json.contains("\"b\":true"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn emit_without_sink_is_a_noop() {
        // Must not panic or block; `enabled` can be toggled by other
        // tests, so just exercise the path.
        emit(TraceEvent::new("noop"));
    }

    #[test]
    fn set_sink_path_to_unwritable_location_errs_without_panicking() {
        // A directory that does not exist: File::create must fail, the
        // error must surface as io::Result, and nothing may panic. The
        // previously installed sink (if any) is left untouched because
        // the failure happens before the slot is written.
        let bogus = std::env::temp_dir()
            .join("imc-obs-no-such-dir")
            .join("deeper")
            .join("trace.jsonl");
        let err = set_sink_path(&bogus);
        assert!(
            err.is_err(),
            "creating a sink under a missing dir must fail"
        );
        // Tracing stays usable after the failure.
        emit(TraceEvent::new("after_unwritable_sink"));
    }

    /// A writer whose every write fails — emulates a disk that filled up
    /// after the sink was installed.
    struct FailingWriter;

    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("disk full"))
        }
    }

    #[test]
    fn emit_swallows_write_errors_from_a_failing_sink() {
        let _serial = sink_test_lock();
        set_sink_writer(Box::new(FailingWriter));
        // Every write and flush errors; emit must degrade gracefully.
        emit(TraceEvent::new("lost_event").field("n", 1u64));
        emit(TraceEvent::new("lost_event").field("n", 2u64));
        // clear_sink flushes the failing writer — also must not panic.
        clear_sink();
    }

    /// A writer that asserts the single-write-per-line discipline: every
    /// `write` call it sees must be exactly one complete JSONL record
    /// (newline included). This is what keeps multi-process appends and
    /// racing in-process emitters from tearing records.
    #[derive(Clone)]
    struct WholeLineBuf(Arc<Mutex<Vec<String>>>);

    impl Write for WholeLineBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let text = std::str::from_utf8(buf).expect("trace writes are utf8");
            assert!(
                text.ends_with('\n') && text.matches('\n').count() == 1,
                "emit must hand the sink one whole line per write, got {text:?}"
            );
            self.0
                .lock()
                .expect("buffer lock")
                .push(text.trim_end().to_string());
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn racing_emitters_never_tear_lines() {
        let _serial = sink_test_lock();
        let lines = Arc::new(Mutex::new(Vec::new()));
        set_sink_writer(Box::new(WholeLineBuf(Arc::clone(&lines))));
        let threads = 8usize;
        let per_thread = 200usize;
        // Long payloads so a torn write would be easy to produce if emit
        // ever issued more than one write call per record.
        let payload = "x".repeat(512);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let payload = payload.as_str();
                scope.spawn(move || {
                    for n in 0..per_thread {
                        emit(
                            TraceEvent::new("race")
                                .field("writer", t)
                                .field("n", n)
                                .field("payload", payload)
                                .field("tail", "END"),
                        );
                    }
                });
            }
        });
        clear_sink();
        let lines = lines.lock().expect("buffer lock");
        // Other tests may emit through the global sink while it is ours
        // (they never install their own: sink_test_lock is held), so
        // filter to this test's kind before counting.
        let ours: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"kind\":\"race\""))
            .collect();
        assert_eq!(ours.len(), threads * per_thread);
        for line in ours {
            assert!(line.starts_with("{\"ts_us\":") && line.ends_with("\"tail\":\"END\"}"));
            assert!(line.contains(&payload));
        }
    }

    #[test]
    fn trace_ctx_attaches_id_and_restores_on_drop() {
        assert_eq!(current_trace_id(), None);
        let outer = TraceCtx::enter("aaaa000011112222");
        assert_eq!(current_trace_id().as_deref(), Some("aaaa000011112222"));
        let json_outer = TraceEvent::new("e").to_json();
        assert!(
            json_outer.contains("\"trace_id\":\"aaaa000011112222\""),
            "events inside the scope carry the id: {json_outer}"
        );
        {
            let _inner = TraceCtx::enter("bbbb000011112222");
            assert_eq!(current_trace_id().as_deref(), Some("bbbb000011112222"));
        }
        // Inner guard dropped: outer id restored, not cleared.
        assert_eq!(current_trace_id().as_deref(), Some("aaaa000011112222"));
        drop(outer);
        assert_eq!(current_trace_id(), None);
        let json_outside = TraceEvent::new("e").to_json();
        assert!(!json_outside.contains("trace_id"));
    }

    #[test]
    fn trace_ctx_is_thread_local() {
        let _guard = TraceCtx::enter("cccc000011112222");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Worker threads do not inherit the coordinating thread's
                // trace id — the engine relies on this to emit from the
                // coordinator only.
                assert_eq!(current_trace_id(), None);
            });
        });
        assert_eq!(current_trace_id().as_deref(), Some("cccc000011112222"));
    }
}
