//! RAII spans: time a phase into the global `imc_span_duration_seconds`
//! histogram and (when a trace sink is installed) emit a `span` trace
//! event on drop.
//!
//! ```
//! {
//!     let _span = imc_obs::Span::enter("doctest_phase");
//!     // ... phase work ...
//! } // drop records the duration
//! ```

use crate::metrics::DEFAULT_DURATION_BUCKETS;
use crate::trace::{self, TraceEvent};
use std::time::Instant;

/// Histogram family every span reports into, labeled by `span` (the span
/// name) and `detail` (a free-form qualifier, empty for plain spans).
pub const SPAN_DURATION_METRIC: &str = "imc_span_duration_seconds";

const SPAN_DURATION_HELP: &str = "Duration of instrumented phases, labeled by span name.";

/// A timed phase; records its duration when dropped.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    detail: String,
    start: Instant,
}

impl Span {
    /// Starts a span named `name` (the `span` label on the histogram).
    pub fn enter(name: &'static str) -> Self {
        Span {
            name,
            detail: String::new(),
            start: Instant::now(),
        }
    }

    /// Starts a span with a qualifier carried in the `detail` label (for
    /// example a shard index or an algorithm name). Keep cardinality low:
    /// every distinct `(span, detail)` pair is its own time series.
    pub fn enter_with(name: &'static str, detail: impl Into<String>) -> Self {
        Span {
            name,
            detail: detail.into(),
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since the span started.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        crate::global()
            .histogram_with(
                SPAN_DURATION_METRIC,
                SPAN_DURATION_HELP,
                DEFAULT_DURATION_BUCKETS,
                &[("span", self.name), ("detail", &self.detail)],
            )
            .observe(secs);
        if trace::enabled() {
            let mut event = TraceEvent::new("span")
                .field("span", self.name)
                .field("seconds", secs);
            if !self.detail.is_empty() {
                event = event.field("detail", self.detail.as_str());
            }
            trace::emit(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_count(name: &str, detail: &str) -> u64 {
        crate::global()
            .histogram_with(
                SPAN_DURATION_METRIC,
                SPAN_DURATION_HELP,
                DEFAULT_DURATION_BUCKETS,
                &[("span", name), ("detail", detail)],
            )
            .count()
    }

    #[test]
    fn span_records_into_global_histogram() {
        let before = span_count("span_test", "");
        {
            let _span = Span::enter("span_test");
        }
        assert_eq!(span_count("span_test", ""), before + 1);
    }

    #[test]
    fn span_with_detail_is_a_distinct_series() {
        {
            let _span = Span::enter_with("span_detail_test", "shard=3");
        }
        assert!(span_count("span_detail_test", "shard=3") >= 1);
        assert_eq!(span_count("span_detail_test", "shard=9"), 0);
    }
}
