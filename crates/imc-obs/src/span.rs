//! RAII spans: time a phase into the global `imc_span_duration_seconds`
//! histogram and (when a trace sink is installed) emit a `span` trace
//! event on drop.
//!
//! Every span carries a fresh `span_id`; while it is open it is the
//! current span of its thread, so nested spans and point events record it
//! as their `parent_span_id`. Together with the thread's `trace_id`
//! (see [`trace::TraceCtx`]) that is the linkage the timeline stitcher
//! ([`crate::timeline`]) uses to rebuild one solve tree across processes.
//!
//! ```
//! {
//!     let _span = imc_obs::Span::enter("doctest_phase");
//!     // ... phase work ...
//! } // drop records the duration
//! ```
//!
//! Spans must be dropped on the thread that entered them (they restore a
//! thread-local stack) — which RAII scoping gives you for free.

use crate::metrics::DEFAULT_DURATION_BUCKETS;
use crate::trace::{self, TraceEvent};
use std::time::Instant;

/// Histogram family every span reports into, labeled by `span` (the span
/// name) and `detail` (a free-form qualifier, empty for plain spans).
pub const SPAN_DURATION_METRIC: &str = "imc_span_duration_seconds";

const SPAN_DURATION_HELP: &str = "Duration of instrumented phases, labeled by span name.";

/// A timed phase; records its duration when dropped.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    detail: String,
    start: Instant,
    start_us: u64,
    span_id: String,
    parent_span_id: Option<String>,
}

impl Span {
    /// Starts a span named `name` (the `span` label on the histogram).
    pub fn enter(name: &'static str) -> Self {
        Span::enter_with(name, String::new())
    }

    /// Starts a span with a qualifier carried in the `detail` label (for
    /// example a shard index or an algorithm name). Keep cardinality low:
    /// every distinct `(span, detail)` pair is its own time series.
    pub fn enter_with(name: &'static str, detail: impl Into<String>) -> Self {
        let span_id = trace::fresh_id();
        let parent_span_id = trace::swap_current_span(Some(span_id.clone()));
        Span {
            name,
            detail: detail.into(),
            start: Instant::now(),
            start_us: trace::now_us(),
            span_id,
            parent_span_id,
        }
    }

    /// Seconds elapsed since the span started.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// This span's id — what a remote callee should adopt as its
    /// `parent_span_id` (see `TraceCtx::enter_remote`).
    pub fn id(&self) -> &str {
        &self.span_id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        // Pop this span off the thread's stack *before* building the
        // event: TraceEvent::new then attaches the restored parent as
        // `parent_span_id`, and we add our own `span_id` explicitly.
        let _ = trace::swap_current_span(self.parent_span_id.take());
        crate::global()
            .histogram_with(
                SPAN_DURATION_METRIC,
                SPAN_DURATION_HELP,
                DEFAULT_DURATION_BUCKETS,
                &[("span", self.name), ("detail", &self.detail)],
            )
            .observe(secs);
        if trace::enabled() {
            let mut event = TraceEvent::new("span")
                .field("span_id", self.span_id.as_str())
                .field("span", self.name)
                .field("start_us", self.start_us)
                .field("seconds", secs);
            if !self.detail.is_empty() {
                event = event.field("detail", self.detail.as_str());
            }
            trace::emit(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_count(name: &str, detail: &str) -> u64 {
        crate::global()
            .histogram_with(
                SPAN_DURATION_METRIC,
                SPAN_DURATION_HELP,
                DEFAULT_DURATION_BUCKETS,
                &[("span", name), ("detail", detail)],
            )
            .count()
    }

    #[test]
    fn span_records_into_global_histogram() {
        let before = span_count("span_test", "");
        {
            let _span = Span::enter("span_test");
        }
        assert_eq!(span_count("span_test", ""), before + 1);
    }

    #[test]
    fn span_with_detail_is_a_distinct_series() {
        {
            let _span = Span::enter_with("span_detail_test", "shard=3");
        }
        assert!(span_count("span_detail_test", "shard=3") >= 1);
        assert_eq!(span_count("span_detail_test", "shard=9"), 0);
    }

    #[test]
    fn spans_maintain_the_thread_current_span_stack() {
        assert_eq!(trace::current_span_id(), None);
        let outer = Span::enter("stack_outer");
        assert_eq!(trace::current_span_id().as_deref(), Some(outer.id()));
        {
            let inner = Span::enter("stack_inner");
            assert_eq!(trace::current_span_id().as_deref(), Some(inner.id()));
        }
        assert_eq!(trace::current_span_id().as_deref(), Some(outer.id()));
        drop(outer);
        assert_eq!(trace::current_span_id(), None);
    }

    #[test]
    fn span_events_link_parent_child_and_remote_context() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buf lock").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let _serial = trace::sink_test_lock();
        let bytes = Arc::new(Mutex::new(Vec::new()));
        trace::set_sink_writer(Box::new(Buf(Arc::clone(&bytes))));
        let (outer_id, inner_id) = {
            let _ctx = trace::TraceCtx::enter_remote("feedfacefeedface", Some("badc0ffee0ddf00d"));
            let outer = Span::enter("link_outer");
            let outer_id = outer.id().to_string();
            let inner = Span::enter_with("link_inner", "shard=a");
            let inner_id = inner.id().to_string();
            trace::emit(trace::TraceEvent::new("link_point").field("n", 1u64));
            drop(inner);
            drop(outer);
            (outer_id, inner_id)
        };
        trace::clear_sink();
        let text = String::from_utf8(bytes.lock().expect("buf lock").clone()).expect("utf8");
        let line_with = |needle: &str| {
            text.lines()
                .find(|l| l.contains(needle))
                .unwrap_or_else(|| panic!("no line containing {needle}: {text}"))
                .to_string()
        };
        // The point event nests under the innermost open span.
        let point = line_with("\"kind\":\"link_point\"");
        assert!(point.contains("\"trace_id\":\"feedfacefeedface\""));
        assert!(point.contains(&format!("\"parent_span_id\":\"{inner_id}\"")));
        // The inner span is a child of the outer; the outer adopted the
        // remote parent from TraceCtx::enter_remote.
        let inner = line_with("\"span\":\"link_inner\"");
        assert!(inner.contains(&format!("\"span_id\":\"{inner_id}\"")));
        assert!(inner.contains(&format!("\"parent_span_id\":\"{outer_id}\"")));
        assert!(inner.contains("\"start_us\":"));
        let outer = line_with("\"span\":\"link_outer\"");
        assert!(outer.contains(&format!("\"span_id\":\"{outer_id}\"")));
        assert!(outer.contains("\"parent_span_id\":\"badc0ffee0ddf00d\""));
    }
}
