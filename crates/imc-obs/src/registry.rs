//! The metric registry: named families of counters/gauges/histograms with
//! label sets.
//!
//! A *family* is one exported metric name (`imc_requests_total`) with a
//! help string, a kind, and a fixed list of label names; its *children*
//! are the concrete instruments, one per label-value tuple. Registration
//! is idempotent: asking for an existing (name, labels) pair returns the
//! same `Arc`, so callers cache handles freely.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, RwLock};

/// Which instrument type a family exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Current-value gauge.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Child {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) name: String,
    pub(crate) help: String,
    pub(crate) kind: MetricKind,
    pub(crate) label_names: Vec<String>,
    /// Bucket layout shared by every child (histogram families only; the
    /// first registration wins).
    bounds: Vec<f64>,
    pub(crate) children: RwLock<BTreeMap<Vec<String>, Child>>,
}

/// A collection of metric families, encodable as one exposition.
///
/// Most code uses the process-wide [`global()`](crate::global) registry;
/// local registries exist for tests and embedding.
#[derive(Debug, Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    families: Vec<Arc<Family>>,
    by_name: HashMap<String, usize>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or retrieves) an unlabeled counter.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered with a different kind or
    /// label set — metric identity is static configuration.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter child with the given labels.
    ///
    /// # Panics
    ///
    /// Same conditions as [`counter`](Self::counter); additionally when
    /// the label *names* differ from the family's first registration.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let family = self.family(name, help, MetricKind::Counter, labels, &[]);
        let child = self.child(&family, labels, || Child::Counter(Arc::new(Counter::new())));
        match child {
            Child::Counter(c) => c,
            _ => unreachable!("family kind checked above"),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    ///
    /// # Panics
    ///
    /// Same conditions as [`counter`](Self::counter).
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge child with the given labels.
    ///
    /// # Panics
    ///
    /// Same conditions as [`counter_with`](Self::counter_with).
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let family = self.family(name, help, MetricKind::Gauge, labels, &[]);
        let child = self.child(&family, labels, || Child::Gauge(Arc::new(Gauge::new())));
        match child {
            Child::Gauge(g) => g,
            _ => unreachable!("family kind checked above"),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram with the given
    /// bucket bounds.
    ///
    /// # Panics
    ///
    /// Same conditions as [`counter`](Self::counter), plus
    /// [`Histogram::new`]'s bound validation.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Registers (or retrieves) a histogram child with the given labels.
    ///
    /// Every child of a family shares the bucket layout of the family's
    /// first registration; later `bounds` arguments are ignored.
    ///
    /// # Panics
    ///
    /// Same conditions as [`counter_with`](Self::counter_with), plus
    /// [`Histogram::new`]'s bound validation.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let family = self.family(name, help, MetricKind::Histogram, labels, bounds);
        let family_bounds = family.bounds.clone();
        let child = self.child(&family, labels, || {
            Child::Histogram(Arc::new(Histogram::new(&family_bounds)))
        });
        match child {
            Child::Histogram(h) => h,
            _ => unreachable!("family kind checked above"),
        }
    }

    /// Registration-ordered snapshot of the families (for the encoder).
    pub(crate) fn families(&self) -> Vec<Arc<Family>> {
        self.inner.read().expect("registry lock").families.clone()
    }

    fn family(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Family> {
        let label_names: Vec<String> = labels.iter().map(|(k, _)| (*k).to_string()).collect();
        let mut inner = self.inner.write().expect("registry lock");
        if let Some(&idx) = inner.by_name.get(name) {
            let family = Arc::clone(&inner.families[idx]);
            assert!(
                family.kind == kind,
                "metric `{name}` re-registered as {kind:?}, was {:?}",
                family.kind
            );
            assert!(
                family.label_names == label_names,
                "metric `{name}` re-registered with labels {label_names:?}, was {:?}",
                family.label_names
            );
            return family;
        }
        if kind == MetricKind::Histogram {
            // Validate bucket layout eagerly so the panic points here.
            let _ = Histogram::new(bounds);
        }
        let family = Arc::new(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            label_names,
            bounds: bounds.to_vec(),
            children: RwLock::new(BTreeMap::new()),
        });
        let idx = inner.families.len();
        inner.families.push(Arc::clone(&family));
        inner.by_name.insert(name.to_string(), idx);
        family
    }

    fn child(
        &self,
        family: &Family,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Child,
    ) -> Child {
        let key: Vec<String> = labels.iter().map(|(_, v)| (*v).to_string()).collect();
        {
            let children = family.children.read().expect("family lock");
            if let Some(c) = children.get(&key) {
                return c.clone();
            }
        }
        let mut children = family.children.write().expect("family lock");
        children.entry(key).or_insert_with(make).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labeled_children_are_distinct() {
        let r = Registry::new();
        let solve = r.counter_with("req_total", "reqs", &[("op", "solve")]);
        let stats = r.counter_with("req_total", "reqs", &[("op", "stats")]);
        solve.inc();
        assert_eq!(solve.get(), 1);
        assert_eq!(stats.get(), 0);
        assert_eq!(r.families().len(), 1);
    }

    #[test]
    fn histogram_children_share_bounds() {
        let r = Registry::new();
        let a = r.histogram_with("h", "h", &[1.0, 2.0], &[("x", "a")]);
        // Later bounds are ignored; the family layout wins.
        let b = r.histogram_with("h", "h", &[9.0], &[("x", "b")]);
        assert_eq!(a.bounds(), b.bounds());
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("same_name", "a");
        let _ = r.gauge("same_name", "b");
    }

    #[test]
    #[should_panic(expected = "labels")]
    fn label_name_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter_with("same", "a", &[("op", "x")]);
        let _ = r.counter_with("same", "a", &[("kind", "x")]);
    }

    #[test]
    fn concurrent_registration_and_updates_are_exact() {
        // The satellite-required registry concurrency test: N threads
        // race to register AND update the same families; totals exact.
        let r = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    let op = if t % 2 == 0 { "even" } else { "odd" };
                    for _ in 0..per_thread {
                        r.counter_with("race_total", "racing counter", &[("op", op)])
                            .inc();
                        r.histogram("race_hist", "racing histogram", &[1.0, 2.0])
                            .observe(1.5);
                    }
                });
            }
        });
        let even = r.counter_with("race_total", "racing counter", &[("op", "even")]);
        let odd = r.counter_with("race_total", "racing counter", &[("op", "odd")]);
        assert_eq!(even.get() + odd.get(), threads as u64 * per_thread);
        assert_eq!(even.get(), odd.get());
        let h = r.histogram("race_hist", "racing histogram", &[1.0, 2.0]);
        assert_eq!(h.count(), threads as u64 * per_thread);
        assert_eq!(h.sum(), 1.5 * (threads as u64 * per_thread) as f64);
        assert_eq!(
            h.cumulative_buckets(),
            vec![0, threads as u64 * per_thread, threads as u64 * per_thread]
        );
    }
}
