//! The three instrument types: counters, gauges, fixed-bucket histograms.
//!
//! All updates are lock-free. Counters and histogram bucket/count updates
//! are single relaxed `fetch_add`s; gauge stores and the histogram sum use
//! f64 bit-casts over `AtomicU64` (a CAS loop for additive updates), so
//! concurrent totals are exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically-increasing `u64` counter.
///
/// Prometheus type `counter`; names should end in `_total`.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn inc_by(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable `f64` gauge (current-value metric: sizes, generations,
/// temperatures).
///
/// Stored as f64 bits in an `AtomicU64`; `set`/`get` are single atomic
/// ops, `add` is a CAS loop.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge starting at `0.0`.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative). Exact under concurrency.
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram of `f64` observations.
///
/// Buckets are defined by their inclusive upper bounds (ascending); an
/// implicit `+Inf` bucket catches the rest. Per-bucket tallies are stored
/// *non*-cumulatively and summed cumulatively only at exposition time.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 (the +Inf bucket)
    count: AtomicU64,
    sum_bits: AtomicU64,
    exemplar: Mutex<Option<Exemplar>>,
}

/// The trace id of a notable observation, attached to a histogram so a
/// dashboard's top-bucket count links back to an offending request.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Trace id of the request that produced the observation.
    pub trace_id: String,
    /// The observed value (seconds for `*_duration_seconds` families).
    pub value: f64,
    /// Wall-clock UNIX microseconds when the observation was recorded.
    pub ts_us: u64,
}

/// Duration buckets (seconds) covering 10 µs … ~2.6 s exponentially —
/// the default for `*_duration_seconds` histograms across the workspace.
pub const DEFAULT_DURATION_BUCKETS: &[f64] = &[
    1e-5, 4e-5, 1.6e-4, 6.4e-4, 2.56e-3, 1.024e-2, 4.096e-2, 0.16384, 0.65536, 2.62144,
];

impl Histogram {
    /// A histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty, non-finite, or not strictly
    /// ascending — bucket layouts are static configuration, so a bad one
    /// is a programming error.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must be strictly ascending");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            exemplar: Mutex::new(None),
        }
    }

    /// Records one observation and, when it lands in the top finite
    /// bucket or the `+Inf` overflow, stores `trace_id` as the
    /// histogram's [`Exemplar`] (latest offender wins). Observations in
    /// lower buckets never touch the exemplar slot, so the hot path
    /// stays lock-free.
    pub fn observe_with_exemplar(&self, v: f64, trace_id: &str) {
        self.observe(v);
        let top_start = self.bounds.len().saturating_sub(1);
        let in_top = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len())
            >= top_start;
        if in_top {
            if let Ok(mut slot) = self.exemplar.lock() {
                *slot = Some(Exemplar {
                    trace_id: trace_id.to_string(),
                    value: v,
                    ts_us: crate::trace::now_us(),
                });
            }
        }
    }

    /// The most recent top-bucket exemplar, if any observation has set
    /// one via [`observe_with_exemplar`](Self::observe_with_exemplar).
    pub fn exemplar(&self) -> Option<Exemplar> {
        self.exemplar.lock().ok().and_then(|slot| slot.clone())
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loop keeps the sum exact under concurrency.
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Records a [`std::time::Duration`] in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The configured upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative per-bucket counts, one entry per bound plus the final
    /// `+Inf` bucket (which equals [`count`](Self::count) once no
    /// observation is in flight).
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.buckets
            .iter()
            .map(|b| {
                acc += b.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the recorded
    /// observations from the bucket layout, Prometheus
    /// `histogram_quantile`-style: linear interpolation inside the bucket
    /// containing the target rank, the last finite bound when the rank
    /// lands in the `+Inf` bucket, `0.0` when nothing has been observed.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_cumulative(&self.bounds, &self.cumulative_buckets(), q)
    }
}

/// The `q`-quantile of a histogram given as bucket upper `bounds` plus
/// `cumulative` counts (one entry per bound, then the `+Inf` bucket).
///
/// This is the same estimate [`Histogram::quantile`] computes, exposed as
/// a free function so callers can merge the cumulative buckets of several
/// same-layout histograms (e.g. per-operation children of one family)
/// before asking for an aggregate quantile.
///
/// # Panics
///
/// Panics when `cumulative.len() != bounds.len() + 1` — merged layouts
/// must match the family's bounds.
pub fn quantile_from_cumulative(bounds: &[f64], cumulative: &[u64], q: f64) -> f64 {
    assert_eq!(
        cumulative.len(),
        bounds.len() + 1,
        "cumulative buckets must cover every bound plus +Inf"
    );
    let total = *cumulative.last().expect("at least the +Inf bucket");
    if total == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = q * total as f64;
    let idx = cumulative
        .iter()
        .position(|&c| c as f64 >= rank)
        .unwrap_or(bounds.len());
    if idx >= bounds.len() {
        // Rank fell in the +Inf bucket: the honest answer is "at least the
        // last finite bound" — report that bound, as Prometheus does.
        return bounds[bounds.len() - 1];
    }
    let upper = bounds[idx];
    let lower = if idx == 0 { 0.0 } else { bounds[idx - 1] };
    let below = if idx == 0 { 0 } else { cumulative[idx - 1] };
    let in_bucket = cumulative[idx] - below;
    if in_bucket == 0 {
        // The rank landed exactly on the cumulative boundary of an
        // *empty* bucket (only reachable at rank 0 when the histogram's
        // mass all sits in later buckets — the exact-fill edge). No
        // observation lives in this bucket, so its upper bound would
        // overstate: the distribution up to this rank ends at `lower`.
        return lower;
    }
    lower + (upper - lower) * ((rank - below as f64) / in_bucket as f64).clamp(0.0, 1.0)
}

/// `count` bucket bounds growing geometrically from `start` by `factor`.
///
/// # Panics
///
/// Panics when `start <= 0`, `factor <= 1`, or `count == 0`.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0, "exponential buckets need a positive start");
    assert!(factor > 1.0, "exponential buckets need a factor > 1");
    assert!(count > 0, "exponential buckets need at least one bucket");
    let mut bounds = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        bounds.push(b);
        b *= factor;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.inc_by(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_sets_and_adds() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5); // bucket le=1
        h.observe(1.0); // le bounds are inclusive
        h.observe(5.0); // bucket le=10
        h.observe(100.0); // +Inf
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106.5);
        assert_eq!(h.cumulative_buckets(), vec![2, 3, 4]);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..50 {
            h.observe(0.5); // le=1
        }
        for _ in 0..50 {
            h.observe(1.5); // le=2
        }
        // Median rank (50) sits exactly at the top of the first bucket.
        assert!((h.quantile(0.5) - 1.0).abs() < 1e-12);
        // 75th percentile: halfway through the (1, 2] bucket.
        assert!((h.quantile(0.75) - 1.5).abs() < 1e-12);
        // Extremes clamp to the bucket edges.
        assert!(h.quantile(0.0) >= 0.0);
        assert!((h.quantile(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn exact_fill_single_bucket_interpolates_not_upper_bound() {
        // Every observation lands in one interior bucket (2, 4]: the
        // daemon-stats layout after a burst of identical-latency requests.
        // p50/p99 must interpolate across the bucket, not collapse to the
        // bucket's upper bound.
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        for _ in 0..100 {
            h.observe(3.0);
        }
        assert!(
            (h.quantile(0.5) - 3.0).abs() < 1e-12,
            "p50 = bucket midpoint"
        );
        let p99 = h.quantile(0.99);
        assert!((p99 - (2.0 + 2.0 * 0.99)).abs() < 1e-12, "got {p99}");
        assert!(p99 < 4.0, "p99 must stay below the bucket upper bound");
        // Rank 0 lands on the exactly-filled boundary of the empty first
        // bucket; the estimate must not report that empty bucket's upper
        // bound (1.0) — nothing was observed at or below it.
        assert_eq!(h.quantile(0.0), 0.0);
    }

    #[test]
    fn exemplar_tracks_latest_top_bucket_observation_only() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // Fast observations never set an exemplar.
        h.observe_with_exemplar(0.5, "aaaa111122223333");
        assert_eq!(h.exemplar(), None);
        // A top-finite-bucket observation does; the overflow bucket too;
        // latest offender wins.
        h.observe_with_exemplar(3.0, "bbbb111122223333");
        assert_eq!(
            h.exemplar().map(|e| e.trace_id),
            Some("bbbb111122223333".to_string())
        );
        h.observe_with_exemplar(9.0, "cccc111122223333");
        let ex = h.exemplar().expect("exemplar set");
        assert_eq!(ex.trace_id, "cccc111122223333");
        assert_eq!(ex.value, 9.0);
        assert!(ex.ts_us > 0);
        // The counts include every observation, exemplar-worthy or not.
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_in_the_inf_bucket_reports_last_finite_bound() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(100.0);
        h.observe(200.0);
        assert_eq!(h.quantile(0.99), 2.0);
    }

    #[test]
    fn quantile_from_merged_cumulative_buckets() {
        // Two same-layout histograms merged bucket-wise must yield the
        // quantile of the union of their observations.
        let a = Histogram::new(&[1.0, 2.0, 4.0]);
        let b = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..10 {
            a.observe(0.5);
        }
        for _ in 0..10 {
            b.observe(3.0);
        }
        let merged: Vec<u64> = a
            .cumulative_buckets()
            .iter()
            .zip(b.cumulative_buckets())
            .map(|(&x, y)| x + y)
            .collect();
        let q50 = quantile_from_cumulative(&[1.0, 2.0, 4.0], &merged, 0.5);
        // Half the mass is at 0.5, half at 3.0: the median lands on the
        // first bucket's top edge.
        assert!((q50 - 1.0).abs() < 1e-12, "got {q50}");
        let q90 = quantile_from_cumulative(&[1.0, 2.0, 4.0], &merged, 0.9);
        assert!(q90 > 2.0 && q90 <= 4.0, "got {q90}");
    }

    #[test]
    #[should_panic(expected = "cumulative buckets")]
    fn quantile_rejects_mismatched_layouts() {
        let _ = quantile_from_cumulative(&[1.0, 2.0], &[1, 2], 0.5);
    }

    #[test]
    fn exponential_buckets_grow() {
        assert_eq!(exponential_buckets(1.0, 2.0, 4), vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn concurrent_totals_are_exact() {
        // N threads hammering one counter, one gauge and one histogram:
        // every total must come out exact, not approximately.
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let g = Arc::new(Gauge::new());
        let h = Arc::new(Histogram::new(&[0.5, 1.5, 3.0]));
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let c = Arc::clone(&c);
                let g = Arc::clone(&g);
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        c.inc();
                        g.add(1.0);
                        h.observe((((t * per_thread + i) % 4) as f64) + 0.25);
                    }
                });
            }
        });
        let total = threads * per_thread;
        assert_eq!(c.get(), total);
        assert_eq!(g.get(), total as f64);
        assert_eq!(h.count(), total);
        // Observations cycle 0.25, 1.25, 2.25, 3.25 — exactly total/4 each
        // (f64 sums of .25 multiples are exact in binary).
        assert_eq!(h.sum(), (0.25 + 1.25 + 2.25 + 3.25) * (total / 4) as f64);
        assert_eq!(
            h.cumulative_buckets(),
            vec![total / 4, total / 2, 3 * total / 4, total]
        );
    }
}
