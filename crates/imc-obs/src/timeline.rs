//! Solve-timeline reconstruction from JSONL trace files.
//!
//! The trace sink ([`crate::trace`]) writes flat JSON objects — span
//! events (`kind":"span"`, emitted when a [`crate::Span`] closes) and
//! free-form events (`round_attribution`, `retry_probe`,
//! `clock_offset`, …). This module stitches one or more such files —
//! typically the coordinator's plus one per shard daemon — back into a
//! per-solve span tree and answers the operator's questions: where did
//! the wall time go, which shard was the straggler each round, and what
//! did the fault-recovery machinery do.
//!
//! Three steps:
//!
//! 1. **Parse** — a tolerant flat-JSON reader; lines that are truncated
//!    (a process died mid-write) or not flat objects are counted and
//!    skipped, never fatal.
//! 2. **Align** — `clock_offset` events (emitted by the coordinator's
//!    NTP-style ping probes) map a shard address to its clock offset;
//!    each shard file is mapped to its address through the
//!    `rpc_server` → `rpc_client` parent link (the client span's
//!    `detail` carries `"<op> <addr>"`) and all its timestamps are
//!    translated onto the coordinator's clock.
//! 3. **Analyze** — build the span tree per `trace_id`, compute the
//!    critical path (at every level, the child that finishes last),
//!    fold the per-round `round_attribution` events into a
//!    compute/scatter-wait/reduce table naming the straggler shard, and
//!    render a human report plus flamegraph-compatible folded stacks.

use std::collections::HashMap;
use std::fmt::Write as _;

/// One parsed scalar value from a flat trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatValue {
    /// A JSON number that parsed as an integer.
    Int(i64),
    /// A JSON number with a fraction or exponent.
    Num(f64),
    /// A JSON string (unescaped).
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl FlatValue {
    /// The value as `i64`, when it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            FlatValue::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FlatValue::Int(n) => Some(*n as f64),
            FlatValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FlatValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parsed flat JSON object: ordered `(key, value)` pairs.
pub type FlatObject = Vec<(String, FlatValue)>;

/// Looks a key up in a [`FlatObject`] (first occurrence wins).
pub fn get<'a>(obj: &'a FlatObject, key: &str) -> Option<&'a FlatValue> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parses one flat JSON object line. Returns `None` for anything that
/// is not a complete single-level object of scalar values — truncated
/// tails, nested containers, blank lines.
pub fn parse_flat(line: &str) -> Option<FlatObject> {
    let mut chars = line.trim().char_indices().peekable();
    let s = line.trim();
    if !s.starts_with('{') {
        return None;
    }
    chars.next(); // consume '{'
    let mut fields = FlatObject::new();
    skip_ws(s, &mut chars);
    if let Some(&(_, '}')) = chars.peek() {
        chars.next();
        return finishes_clean(s, &mut chars).then_some(fields);
    }
    loop {
        skip_ws(s, &mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(s, &mut chars);
        match chars.next() {
            Some((_, ':')) => {}
            _ => return None,
        }
        skip_ws(s, &mut chars);
        let value = parse_value(s, &mut chars)?;
        fields.push((key, value));
        skip_ws(s, &mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            _ => return None,
        }
    }
    finishes_clean(s, &mut chars).then_some(fields)
}

fn finishes_clean(s: &str, chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) -> bool {
    skip_ws(s, chars);
    chars.next().is_none()
}

fn skip_ws(_s: &str, chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
    while matches!(chars.peek(), Some(&(_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) -> Option<String> {
    match chars.next() {
        Some((_, '"')) => {}
        _ => return None,
    }
    let mut out = String::new();
    loop {
        let (_, c) = chars.next()?;
        match c {
            '"' => return Some(out),
            '\\' => {
                let (_, esc) = chars.next()?;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars.next()?;
                            code = code * 16 + h.to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            c => out.push(c),
        }
    }
}

fn parse_value(
    s: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
) -> Option<FlatValue> {
    match chars.peek().copied()? {
        (_, '"') => parse_string(chars).map(FlatValue::Str),
        (_, 't') => parse_keyword(s, chars, "true", FlatValue::Bool(true)),
        (_, 'f') => parse_keyword(s, chars, "false", FlatValue::Bool(false)),
        (_, 'n') => parse_keyword(s, chars, "null", FlatValue::Null),
        (start, c) if c == '-' || c.is_ascii_digit() => {
            let mut end = start;
            while let Some(&(i, c)) = chars.peek() {
                if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                    end = i + c.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            let text = &s[start..end];
            if let Ok(n) = text.parse::<i64>() {
                Some(FlatValue::Int(n))
            } else {
                text.parse::<f64>().ok().map(FlatValue::Num)
            }
        }
        _ => None,
    }
}

fn parse_keyword(
    s: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    word: &str,
    value: FlatValue,
) -> Option<FlatValue> {
    let start = chars.peek()?.0;
    let end = start + word.len();
    if s.len() >= end && &s[start..end] == word {
        for _ in 0..word.chars().count() {
            chars.next();
        }
        Some(value)
    } else {
        None
    }
}

/// One span reconstructed from a `kind":"span"` event, timestamps
/// already translated onto the coordinator's clock.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span's own id.
    pub span_id: String,
    /// Span name (`cluster_solve`, `scatter_round`, `rpc_client`, …).
    pub name: String,
    /// The qualifier the span was opened with (may be empty).
    pub detail: String,
    /// Start, microseconds on the coordinator's clock.
    pub start_us: i64,
    /// End, microseconds on the coordinator's clock.
    pub end_us: i64,
    /// Parent span id, when the span was nested.
    pub parent_span_id: Option<String>,
    /// Index of the source file the span came from.
    pub file: usize,
    /// Child span indices (into [`Timeline::spans`]), in start order.
    pub children: Vec<usize>,
}

impl SpanNode {
    /// The span's duration in seconds.
    pub fn seconds(&self) -> f64 {
        (self.end_us - self.start_us).max(0) as f64 / 1e6
    }
}

/// One non-span event, timestamp translated onto the coordinator clock.
#[derive(Debug, Clone)]
pub struct EventNode {
    /// The event's `kind` field.
    pub kind: String,
    /// Timestamp, microseconds on the coordinator's clock.
    pub ts_us: i64,
    /// Enclosing span id at emit time, when a span was open.
    pub parent_span_id: Option<String>,
    /// Index of the source file the event came from.
    pub file: usize,
    /// All fields of the line (including the ones lifted above).
    pub fields: FlatObject,
}

/// One CELF round's wall-time attribution, decoded from a
/// `round_attribution` event.
#[derive(Debug, Clone)]
pub struct Round {
    /// `"c"` (ĉ fan-out) or `"nu"` (ν carry chain).
    pub objective: String,
    /// Candidate nodes evaluated this round.
    pub batch: u64,
    /// Shards that answered.
    pub shards: u64,
    /// Wall seconds of the fan-out (scatter + slowest shard + gather).
    pub scatter_s: f64,
    /// Wall seconds of the coordinator-side reduce.
    pub reduce_s: f64,
    /// Address of the slowest shard this round.
    pub straggler: String,
    /// The straggler's RPC seconds.
    pub straggler_s: f64,
    /// The fastest shard's RPC seconds (the straggler's headroom).
    pub fastest_s: f64,
    /// Event timestamp (coordinator clock, µs).
    pub ts_us: i64,
}

/// A shard clock offset decoded from a `clock_offset` event.
#[derive(Debug, Clone)]
pub struct OffsetRecord {
    /// Shard address.
    pub shard: String,
    /// `shard_clock − coordinator_clock`, µs.
    pub offset_us: i64,
    /// Minimum observed probe round-trip, µs.
    pub rtt_us: i64,
}

/// Everything parsed from one set of trace files, grouped by trace id.
#[derive(Debug, Default)]
pub struct TraceSet {
    /// Span events per trace id (file index, raw object).
    spans: HashMap<String, Vec<(usize, FlatObject)>>,
    /// Non-span events per trace id.
    events: HashMap<String, Vec<(usize, FlatObject)>>,
    /// Events with no trace id (clock offsets ride here too).
    unattached: Vec<(usize, FlatObject)>,
    /// Input file labels, index-aligned with the `file` fields.
    pub files: Vec<String>,
    /// Lines that failed to parse, per file.
    pub skipped: Vec<usize>,
}

impl TraceSet {
    /// Parses `(label, contents)` pairs — one per trace file. Unparsable
    /// lines are counted in [`TraceSet::skipped`] and dropped.
    pub fn parse(inputs: &[(String, String)]) -> TraceSet {
        let mut set = TraceSet {
            files: inputs.iter().map(|(label, _)| label.clone()).collect(),
            skipped: vec![0; inputs.len()],
            ..TraceSet::default()
        };
        for (file, (_, contents)) in inputs.iter().enumerate() {
            for line in contents.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                let Some(obj) = parse_flat(line) else {
                    set.skipped[file] += 1;
                    continue;
                };
                let kind = get(&obj, "kind").and_then(FlatValue::as_str).unwrap_or("");
                let trace_id = get(&obj, "trace_id").and_then(FlatValue::as_str);
                match (kind, trace_id) {
                    ("span", Some(id)) => set
                        .spans
                        .entry(id.to_string())
                        .or_default()
                        .push((file, obj)),
                    (_, Some(id)) => set
                        .events
                        .entry(id.to_string())
                        .or_default()
                        .push((file, obj)),
                    (_, None) => set.unattached.push((file, obj)),
                }
            }
        }
        set
    }

    /// Every trace id seen, largest span count first.
    pub fn trace_ids(&self) -> Vec<String> {
        let mut ids: Vec<(usize, String)> = self
            .spans
            .keys()
            .map(|id| (self.spans[id].len(), id.clone()))
            .collect();
        ids.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        ids.into_iter().map(|(_, id)| id).collect()
    }

    /// Shard clock offsets harvested from every `clock_offset` event in
    /// the inputs (attached to a trace or not).
    pub fn clock_offsets(&self) -> Vec<OffsetRecord> {
        let mut out = Vec::new();
        let all = self.unattached.iter().chain(self.events.values().flatten());
        for (_, obj) in all {
            if get(obj, "kind").and_then(FlatValue::as_str) != Some("clock_offset") {
                continue;
            }
            let (Some(shard), Some(offset_us)) = (
                get(obj, "shard").and_then(FlatValue::as_str),
                get(obj, "offset_us").and_then(FlatValue::as_i64),
            ) else {
                continue;
            };
            out.push(OffsetRecord {
                shard: shard.to_string(),
                offset_us,
                rtt_us: get(obj, "rtt_us").and_then(FlatValue::as_i64).unwrap_or(0),
            });
        }
        out
    }

    /// Stitches one trace id into a [`Timeline`]: aligns per-file
    /// clocks, builds the span tree, attaches events.
    pub fn timeline(&self, trace_id: &str) -> Option<Timeline> {
        let raw_spans = self.spans.get(trace_id)?;
        let raw_events = self.events.get(trace_id).cloned().unwrap_or_default();
        let offsets = self.clock_offsets();

        // Map file index → shard address: a file owning an `rpc_server`
        // span whose parent is an `rpc_client` span in another file
        // takes the address out of the client span's detail
        // ("<op> <addr>" — the address is the last token).
        let client_details: HashMap<&str, (usize, &str)> = raw_spans
            .iter()
            .filter(|(_, obj)| get(obj, "span").and_then(FlatValue::as_str) == Some("rpc_client"))
            .filter_map(|(file, obj)| {
                let id = get(obj, "span_id").and_then(FlatValue::as_str)?;
                let detail = get(obj, "detail").and_then(FlatValue::as_str)?;
                Some((id, (*file, detail)))
            })
            .collect();
        let mut file_addr: HashMap<usize, String> = HashMap::new();
        for (file, obj) in raw_spans {
            if get(obj, "span").and_then(FlatValue::as_str) != Some("rpc_server") {
                continue;
            }
            let Some(parent) = get(obj, "parent_span_id").and_then(FlatValue::as_str) else {
                continue;
            };
            if let Some(&(client_file, detail)) = client_details.get(parent) {
                if client_file != *file {
                    if let Some(addr) = detail.rsplit(' ').next() {
                        file_addr.entry(*file).or_insert_with(|| addr.to_string());
                    }
                }
            }
        }
        let shift_for = |file: usize| -> i64 {
            file_addr
                .get(&file)
                .and_then(|addr| offsets.iter().find(|o| &o.shard == addr))
                .map(|o| -o.offset_us)
                .unwrap_or(0)
        };

        let mut spans: Vec<SpanNode> = raw_spans
            .iter()
            .filter_map(|(file, obj)| {
                let shift = shift_for(*file);
                let start_us = get(obj, "start_us").and_then(FlatValue::as_i64)? + shift;
                let end_us = get(obj, "ts_us").and_then(FlatValue::as_i64)? + shift;
                Some(SpanNode {
                    span_id: get(obj, "span_id").and_then(FlatValue::as_str)?.to_string(),
                    name: get(obj, "span").and_then(FlatValue::as_str)?.to_string(),
                    detail: get(obj, "detail")
                        .and_then(FlatValue::as_str)
                        .unwrap_or("")
                        .to_string(),
                    start_us,
                    end_us: end_us.max(start_us),
                    parent_span_id: get(obj, "parent_span_id")
                        .and_then(FlatValue::as_str)
                        .map(str::to_string),
                    file: *file,
                    children: Vec::new(),
                })
            })
            .collect();
        spans.sort_by(|a, b| a.start_us.cmp(&b.start_us).then(a.span_id.cmp(&b.span_id)));
        let index_of: HashMap<String, usize> = spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.span_id.clone(), i))
            .collect();
        let mut roots = Vec::new();
        for i in 0..spans.len() {
            let parent = spans[i]
                .parent_span_id
                .as_ref()
                .and_then(|p| index_of.get(p))
                .copied();
            match parent {
                // A self-parented span (id collision) stays a root.
                Some(p) if p != i => spans[p].children.push(i),
                _ => roots.push(i),
            }
        }

        let events: Vec<EventNode> = raw_events
            .iter()
            .filter_map(|(file, obj)| {
                let shift = shift_for(*file);
                Some(EventNode {
                    kind: get(obj, "kind").and_then(FlatValue::as_str)?.to_string(),
                    ts_us: get(obj, "ts_us").and_then(FlatValue::as_i64)? + shift,
                    parent_span_id: get(obj, "parent_span_id")
                        .and_then(FlatValue::as_str)
                        .map(str::to_string),
                    file: *file,
                    fields: obj.clone(),
                })
            })
            .collect();

        Some(Timeline {
            trace_id: trace_id.to_string(),
            spans,
            roots,
            events,
            offsets,
            files: self.files.clone(),
            skipped: self.skipped.clone(),
        })
    }

    /// The best solve timeline: prefers the trace with a `cluster_solve`
    /// (or `solve`-named) root span, falls back to the largest trace.
    pub fn solve_timeline(&self) -> Option<Timeline> {
        let ids = self.trace_ids();
        ids.iter()
            .filter_map(|id| self.timeline(id))
            .find(|t| t.spans.iter().any(|s| s.name.contains("solve")))
            .or_else(|| ids.first().and_then(|id| self.timeline(id)))
    }
}

/// One stitched trace: the span tree plus its attached events, all on
/// the coordinator's clock.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// The stitched trace id.
    pub trace_id: String,
    /// All spans, sorted by start time.
    pub spans: Vec<SpanNode>,
    /// Indices of spans with no (present) parent.
    pub roots: Vec<usize>,
    /// Non-span events of this trace.
    pub events: Vec<EventNode>,
    /// Clock offsets that were applied.
    pub offsets: Vec<OffsetRecord>,
    /// Input file labels.
    pub files: Vec<String>,
    /// Unparsable line count per input file.
    pub skipped: Vec<usize>,
}

impl Timeline {
    /// Per-round attribution decoded from `round_attribution` events,
    /// in timestamp order.
    pub fn rounds(&self) -> Vec<Round> {
        let mut rounds: Vec<Round> = self
            .events
            .iter()
            .filter(|e| e.kind == "round_attribution")
            .map(|e| Round {
                objective: get(&e.fields, "objective")
                    .and_then(FlatValue::as_str)
                    .unwrap_or("?")
                    .to_string(),
                batch: get(&e.fields, "batch")
                    .and_then(FlatValue::as_i64)
                    .unwrap_or(0) as u64,
                shards: get(&e.fields, "shards")
                    .and_then(FlatValue::as_i64)
                    .unwrap_or(0) as u64,
                scatter_s: get(&e.fields, "scatter_s")
                    .and_then(FlatValue::as_f64)
                    .unwrap_or(0.0),
                reduce_s: get(&e.fields, "reduce_s")
                    .and_then(FlatValue::as_f64)
                    .unwrap_or(0.0),
                straggler: get(&e.fields, "straggler")
                    .and_then(FlatValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                straggler_s: get(&e.fields, "straggler_s")
                    .and_then(FlatValue::as_f64)
                    .unwrap_or(0.0),
                fastest_s: get(&e.fields, "fastest_s")
                    .and_then(FlatValue::as_f64)
                    .unwrap_or(0.0),
                ts_us: e.ts_us,
            })
            .collect();
        rounds.sort_by_key(|r| r.ts_us);
        rounds
    }

    /// The critical path: from the longest root, repeatedly descend
    /// into the child that finishes last. Returns span indices, root
    /// first.
    pub fn critical_path(&self) -> Vec<usize> {
        let root = self.roots.iter().copied().max_by(|&a, &b| {
            (self.spans[a].end_us - self.spans[a].start_us)
                .cmp(&(self.spans[b].end_us - self.spans[b].start_us))
        });
        let Some(mut at) = root else {
            return Vec::new();
        };
        let mut path = vec![at];
        loop {
            let next = self.spans[at]
                .children
                .iter()
                .copied()
                .max_by_key(|&c| self.spans[c].end_us);
            match next {
                Some(c) => {
                    path.push(c);
                    at = c;
                }
                None => return path,
            }
        }
    }

    /// Flamegraph-compatible folded stacks: one `frame;frame;... N`
    /// line per span, `N` the span's *self* time in microseconds
    /// (duration minus the children's, floored at zero). Feed to
    /// `flamegraph.pl` or speedscope as-is.
    pub fn folded_stacks(&self) -> String {
        fn frame(span: &SpanNode) -> String {
            let mut name = span.name.clone();
            if !span.detail.is_empty() {
                name.push(':');
                name.push_str(&span.detail);
            }
            name.replace([';', ' '], "_")
        }
        fn walk(tl: &Timeline, at: usize, prefix: &str, out: &mut String) {
            let span = &tl.spans[at];
            let stack = if prefix.is_empty() {
                frame(span)
            } else {
                format!("{prefix};{}", frame(span))
            };
            let child_us: i64 = span
                .children
                .iter()
                .map(|&c| (tl.spans[c].end_us - tl.spans[c].start_us).max(0))
                .sum();
            let self_us = (span.end_us - span.start_us - child_us).max(0);
            let _ = writeln!(out, "{stack} {self_us}");
            for &c in &span.children {
                walk(tl, c, &stack, out);
            }
        }
        let mut out = String::new();
        for &root in &self.roots {
            walk(self, root, "", &mut out);
        }
        out
    }

    /// The human-readable timeline report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace {}", self.trace_id);
        for (file, label) in self.files.iter().enumerate() {
            let _ = writeln!(
                out,
                "  input {label}: {} spans, {} events, {} unparsable lines",
                self.spans.iter().filter(|s| s.file == file).count(),
                self.events.iter().filter(|e| e.file == file).count(),
                self.skipped.get(file).copied().unwrap_or(0),
            );
        }
        for o in &self.offsets {
            let _ = writeln!(
                out,
                "  clock {}: offset {:+}us (min rtt {}us)",
                o.shard, o.offset_us, o.rtt_us
            );
        }
        if let Some(&root) = self.roots.first() {
            let longest = self
                .roots
                .iter()
                .copied()
                .max_by_key(|&r| self.spans[r].end_us - self.spans[r].start_us)
                .unwrap_or(root);
            let span = &self.spans[longest];
            let _ = writeln!(
                out,
                "  root span {}{} {:.6}s ({} spans total, {} roots)",
                span.name,
                if span.detail.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", span.detail)
                },
                span.seconds(),
                self.spans.len(),
                self.roots.len(),
            );
        }

        let rounds = self.rounds();
        if !rounds.is_empty() {
            let _ = writeln!(out, "rounds ({}):", rounds.len());
            // A lazy CELF solve scatters once per queue pop, so real
            // traces hold tens of thousands of rounds; list the opening
            // rounds plus the slowest ones and elide the rest (the
            // verdict below still aggregates every round).
            const HEAD: usize = 4;
            const SLOWEST: usize = 8;
            let shown: std::collections::HashSet<usize> = if rounds.len() <= HEAD + SLOWEST + 4 {
                (0..rounds.len()).collect()
            } else {
                let mut by_scatter: Vec<usize> = (0..rounds.len()).collect();
                by_scatter.sort_by(|&a, &b| {
                    rounds[b]
                        .scatter_s
                        .partial_cmp(&rounds[a].scatter_s)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                (0..HEAD)
                    .chain(by_scatter.into_iter().take(SLOWEST))
                    .collect()
            };
            let mut elided = 0usize;
            let mut totals: HashMap<&str, (usize, f64)> = HashMap::new();
            for (i, r) in rounds.iter().enumerate() {
                if !shown.contains(&i) {
                    elided += 1;
                    if !r.straggler.is_empty() {
                        let entry = totals.entry(&r.straggler).or_insert((0, 0.0));
                        entry.0 += 1;
                        entry.1 += r.straggler_s;
                    }
                    continue;
                }
                let wait_s = (r.scatter_s - r.straggler_s).max(0.0);
                let _ = writeln!(
                    out,
                    "  #{:<3} {:<2} batch={:<5} scatter={:.6}s reduce={:.6}s \
                     straggler={} ({:.6}s, fastest {:.6}s, overhead {:.6}s)",
                    i + 1,
                    r.objective,
                    r.batch,
                    r.scatter_s,
                    r.reduce_s,
                    if r.straggler.is_empty() {
                        "-"
                    } else {
                        &r.straggler
                    },
                    r.straggler_s,
                    r.fastest_s,
                    wait_s,
                );
                if !r.straggler.is_empty() {
                    let entry = totals.entry(&r.straggler).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 += r.straggler_s;
                }
            }
            if elided > 0 {
                let _ = writeln!(
                    out,
                    "  ... {elided} rounds elided (showing the first {HEAD} and the {SLOWEST} slowest) ..."
                );
            }
            let mut ranked: Vec<(&str, (usize, f64))> = totals.into_iter().collect();
            ranked.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
            if let Some((addr, (n, secs))) = ranked.first() {
                let _ = writeln!(
                    out,
                    "  straggler verdict: {addr} slowest in {n}/{} rounds ({secs:.6}s total)",
                    rounds.len()
                );
            }
        }

        let faults: Vec<&EventNode> = self
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind.as_str(),
                    "retry_probe" | "shard_revived" | "shard_dead" | "degraded_rescatter"
                )
            })
            .collect();
        if !faults.is_empty() {
            let _ = writeln!(out, "fault recovery ({} events):", faults.len());
            for e in &faults {
                let shard = get(&e.fields, "shard")
                    .or_else(|| get(&e.fields, "lost"))
                    .and_then(FlatValue::as_str)
                    .unwrap_or("?");
                let extra = match e.kind.as_str() {
                    "retry_probe" => format!(
                        "attempt={} recovered={}",
                        get(&e.fields, "attempt")
                            .and_then(FlatValue::as_i64)
                            .unwrap_or(0),
                        matches!(get(&e.fields, "recovered"), Some(FlatValue::Bool(true))),
                    ),
                    "degraded_rescatter" => format!(
                        "survivors={}",
                        get(&e.fields, "survivors")
                            .and_then(FlatValue::as_i64)
                            .unwrap_or(0)
                    ),
                    _ => String::new(),
                };
                let _ = writeln!(out, "  {:<20} shard={shard} {extra}", e.kind);
            }
        }

        let path = self.critical_path();
        if !path.is_empty() {
            let _ = writeln!(out, "critical path:");
            for (depth, &i) in path.iter().enumerate() {
                let span = &self.spans[i];
                let _ = writeln!(
                    out,
                    "  {:indent$}{} {:.6}s{}",
                    "",
                    span.name,
                    span.seconds(),
                    if span.detail.is_empty() {
                        String::new()
                    } else {
                        format!(" [{}]", span.detail)
                    },
                    indent = depth * 2,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_parser_handles_scalars_and_escapes() {
        let obj = parse_flat(
            r#"{"ts_us":17,"kind":"span","ok":true,"off":-4,"x":0.5,"nil":null,"s":"a\"b\\c\nd"}"#,
        )
        .expect("parses");
        assert_eq!(get(&obj, "ts_us").unwrap().as_i64(), Some(17));
        assert_eq!(get(&obj, "kind").unwrap().as_str(), Some("span"));
        assert_eq!(get(&obj, "off").unwrap().as_i64(), Some(-4));
        assert_eq!(get(&obj, "x").unwrap().as_f64(), Some(0.5));
        assert_eq!(get(&obj, "nil"), Some(&FlatValue::Null));
        assert_eq!(get(&obj, "s").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(get(&obj, "ok"), Some(&FlatValue::Bool(true)));
        assert!(parse_flat("{}").is_some());
    }

    #[test]
    fn flat_parser_rejects_truncated_and_nested_lines() {
        assert!(parse_flat(r#"{"a":1"#).is_none(), "truncated object");
        assert!(
            parse_flat(r#"{"a":"unterminat"#).is_none(),
            "truncated string"
        );
        assert!(parse_flat(r#"{"a":{"b":1}}"#).is_none(), "nested object");
        assert!(parse_flat(r#"{"a":[1,2]}"#).is_none(), "array value");
        assert!(parse_flat("").is_none());
        assert!(parse_flat(r#"{"a":1} trailing"#).is_none());
    }

    fn span_line(
        trace: &str,
        id: &str,
        parent: Option<&str>,
        name: &str,
        start: i64,
        end: i64,
        detail: &str,
    ) -> String {
        let parent = parent
            .map(|p| format!(",\"parent_span_id\":\"{p}\""))
            .unwrap_or_default();
        let detail = if detail.is_empty() {
            String::new()
        } else {
            format!(",\"detail\":\"{detail}\"")
        };
        format!(
            "{{\"ts_us\":{end},\"kind\":\"span\",\"trace_id\":\"{trace}\"{parent},\"span_id\":\"{id}\",\"span\":\"{name}\",\"start_us\":{start},\"seconds\":{}{detail}}}",
            (end - start) as f64 / 1e6
        )
    }

    /// A two-file fixture: coordinator (solve → round → rpc_client) and
    /// one shard (rpc_server) whose clock runs 1s ahead.
    fn fixture() -> TraceSet {
        let coord = [
            span_line("t1", "c1", None, "cluster_solve", 1_000_000, 2_000_000, "GREEDY"),
            span_line("t1", "r1", Some("c1"), "scatter_round", 1_100_000, 1_600_000, "c"),
            span_line("t1", "p1", Some("r1"), "rpc_client", 1_100_000, 1_500_000, "eval_batch 127.0.0.1:9001"),
            concat!(
                r#"{"ts_us":1600100,"kind":"round_attribution","trace_id":"t1","parent_span_id":"r1","objective":"c","batch":64,"#,
                r#""shards":1,"scatter_s":0.4,"reduce_s":0.01,"straggler":"127.0.0.1:9001","straggler_s":0.4,"fastest_s":0.4}"#
            )
            .to_string(),
            r#"{"ts_us":900000,"kind":"clock_offset","shard":"127.0.0.1:9001","offset_us":1000000,"rtt_us":200,"probes":4}"#.to_string(),
        ]
        .join("\n");
        // Shard timestamps are +1s relative to the coordinator.
        let shard = span_line(
            "t1",
            "s1",
            Some("p1"),
            "rpc_server",
            2_150_000,
            2_450_000,
            "eval_batch",
        );
        TraceSet::parse(&[
            ("coord.jsonl".to_string(), coord),
            ("shard.jsonl".to_string(), shard),
        ])
    }

    #[test]
    fn stitches_across_files_and_aligns_clocks() {
        let set = fixture();
        let tl = set.solve_timeline().expect("timeline");
        assert_eq!(tl.trace_id, "t1");
        assert_eq!(tl.spans.len(), 4);
        assert_eq!(tl.roots.len(), 1);
        // The shard's rpc_server span is shifted back onto the
        // coordinator clock (−1s) and nests inside rpc_client.
        let server = tl.spans.iter().find(|s| s.name == "rpc_server").unwrap();
        assert_eq!(server.start_us, 1_150_000);
        assert_eq!(server.end_us, 1_450_000);
        let client_idx = tl
            .spans
            .iter()
            .position(|s| s.name == "rpc_client")
            .unwrap();
        assert!(tl.spans[client_idx]
            .children
            .iter()
            .any(|&c| tl.spans[c].name == "rpc_server"));
        // Solve root covers every other span.
        let root = &tl.spans[tl.roots[0]];
        assert_eq!(root.name, "cluster_solve");
        for s in &tl.spans {
            assert!(s.start_us >= root.start_us && s.end_us <= root.end_us);
        }
    }

    #[test]
    fn rounds_and_critical_path_and_folded_stacks() {
        let set = fixture();
        let tl = set.solve_timeline().unwrap();
        let rounds = tl.rounds();
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].straggler, "127.0.0.1:9001");
        assert!((rounds[0].scatter_s - 0.4).abs() < 1e-9);

        let path = tl.critical_path();
        let names: Vec<&str> = path.iter().map(|&i| tl.spans[i].name.as_str()).collect();
        assert_eq!(
            names,
            vec!["cluster_solve", "scatter_round", "rpc_client", "rpc_server"]
        );

        let folded = tl.folded_stacks();
        assert!(!folded.trim().is_empty());
        let top = folded
            .lines()
            .find(|l| l.starts_with("cluster_solve:GREEDY "))
            .expect("root self-time line");
        // Root self time: 1s total − 0.5s round child = 0.5s.
        assert_eq!(top, "cluster_solve:GREEDY 500000");
        assert!(folded
            .contains("cluster_solve:GREEDY;scatter_round:c;rpc_client:eval_batch_127.0.0.1:9001"));
        // Every line is "frames N".
        for line in folded.lines() {
            let n = line.rsplit(' ').next().unwrap();
            assert!(n.parse::<i64>().is_ok(), "line: {line}");
        }

        let report = tl.report();
        assert!(report.contains("straggler=127.0.0.1:9001"));
        assert!(report.contains("straggler verdict: 127.0.0.1:9001 slowest in 1/1 rounds"));
        assert!(report.contains("critical path:"));
        assert!(report.contains("clock 127.0.0.1:9001: offset +1000000us"));
    }

    #[test]
    fn truncated_tail_and_out_of_order_lines_survive() {
        let set = fixture();
        let mut coord = String::new();
        // Reverse the coordinator's lines and truncate the last one.
        let base = [
            span_line("t1", "c1", None, "cluster_solve", 1_000_000, 2_000_000, ""),
            span_line(
                "t1",
                "r1",
                Some("c1"),
                "scatter_round",
                1_100_000,
                1_600_000,
                "c",
            ),
        ];
        for line in base.iter().rev() {
            coord.push_str(line);
            coord.push('\n');
        }
        coord.push_str(&span_line("t1", "x9", Some("r1"), "rpc_client", 1, 2, "")[..40]);
        let set2 = TraceSet::parse(&[("coord.jsonl".to_string(), coord)]);
        let tl = set2.timeline("t1").expect("timeline");
        assert_eq!(tl.spans.len(), 2, "truncated line dropped");
        assert_eq!(tl.skipped[0], 1);
        assert_eq!(tl.roots.len(), 1);
        assert_eq!(tl.spans[tl.roots[0]].name, "cluster_solve");
        drop(set);
    }

    #[test]
    fn orphaned_spans_become_roots() {
        // Parent span lost (e.g. the coordinator died before closing
        // it): the child must still surface as a root, not vanish.
        let line = span_line("t1", "k1", Some("missing"), "rpc_client", 10, 20, "");
        let set = TraceSet::parse(&[("f".to_string(), line)]);
        let tl = set.timeline("t1").unwrap();
        assert_eq!(tl.roots.len(), 1);
        assert!(!tl.folded_stacks().trim().is_empty());
    }
}
