//! # imc-obs — unified observability for the `imc` workspace
//!
//! A vendored, `std`-only metrics/tracing layer shared by the solver stack
//! (`imc-core`), the query daemon (`imc-service`), the CLI and the bench
//! harness, in the same offline idiom as the `vendor/` dependency
//! stand-ins: no external crates, no network, atomic hot paths.
//!
//! Three pieces:
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) behind a
//!   [`Registry`]. Instruments are created once (cache the returned `Arc`
//!   in a `OnceLock` near the hot path) and updated lock-free with relaxed
//!   atomics; histogram sums use a CAS loop so concurrent totals are
//!   *exact*, not approximate.
//! * **Exposition** ([`encode::to_prometheus`]) renders a registry in the
//!   Prometheus text format 0.0.4 — the wire format behind
//!   `GET /metrics`.
//! * **Tracing** ([`trace`], [`span::Span`]) — structured JSONL events to
//!   an optional global sink, plus RAII spans that both time a phase into
//!   a histogram and emit a trace event.
//!
//! The process-wide registry is [`global()`]; libraries register their
//! instruments there so one exposition pass sees the whole stack. Local
//! [`Registry`] values exist for tests and embedding.
//!
//! ```
//! use imc_obs::{encode, Registry};
//!
//! let registry = Registry::new();
//! let requests = registry.counter_with(
//!     "imc_requests_total",
//!     "Completed requests by operation.",
//!     &[("op", "solve")],
//! );
//! requests.inc();
//! let text = encode::to_prometheus(&registry);
//! assert!(text.contains(r#"imc_requests_total{op="solve"} 1"#));
//! ```
//!
//! Metric naming follows the scheme documented in `DESIGN.md` §7: every
//! name carries the `imc_` prefix, counters end in `_total`, and unit
//! suffixes (`_seconds`, `_us`) name the unit explicitly.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod encode;
mod metrics;
mod registry;
pub mod span;
pub mod timeline;
pub mod trace;

pub use metrics::{
    exponential_buckets, quantile_from_cumulative, Counter, Exemplar, Gauge, Histogram,
    DEFAULT_DURATION_BUCKETS,
};
pub use registry::{MetricKind, Registry};
pub use span::Span;

use std::sync::OnceLock;

/// The process-wide registry shared by every instrumented crate.
///
/// Created lazily on first use and never dropped; all `imc_*` metrics of
/// the solver stack and the daemon live here so a single
/// [`encode::to_prometheus`] call exports the whole process.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global() as *const Registry;
        let b = global() as *const Registry;
        assert_eq!(a, b);
    }

    #[test]
    fn global_registry_registers_and_encodes() {
        let c = global().counter("imc_obs_selftest_total", "Self-test counter.");
        c.inc_by(3);
        let text = encode::to_prometheus(global());
        assert!(text.contains("imc_obs_selftest_total"));
    }
}
