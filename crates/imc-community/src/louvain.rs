//! Multi-level Louvain modularity optimization.
//!
//! The IMC paper extracts communities with the Louvain method (Blondel et
//! al. 2008). This is a full implementation: repeated local-moving passes
//! followed by graph aggregation until modularity stops improving. Directed
//! input is symmetrized (`w_uv + w_vu`), the standard reduction also used by
//! reference implementations; the directed variant the paper cites (reference \[22\])
//! differs only in the null-model term and produces equivalent partitions
//! for the purpose of the IMC experiments (see DESIGN.md substitutions).
//!
//! Determinism: the node visiting order of each local-moving sweep is a
//! seeded shuffle, so a fixed `seed` always yields the same partition.

use imc_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A weighted undirected multigraph level in the Louvain hierarchy.
#[derive(Debug, Clone)]
struct Level {
    /// adj[u] = (neighbor, weight); symmetric, no self entries.
    adj: Vec<Vec<(u32, f64)>>,
    /// Self-loop weight per node (appears once; contributes twice to degree).
    self_loop: Vec<f64>,
    /// Total weight `2m` = Σ_i k_i.
    two_m: f64,
}

impl Level {
    fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Weighted degree `k_i` including the self-loop (counted twice).
    fn degree(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self.self_loop[u]
    }

    fn from_graph(graph: &Graph) -> Level {
        let n = graph.node_count();
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        // Symmetrize: undirected weight = w(u,v) + w(v,u).
        for e in graph.edges() {
            let (u, v) = (e.source.index(), e.target.index());
            adj[u].push((v as u32, e.weight));
            adj[v].push((u as u32, e.weight));
        }
        // Merge parallel entries.
        for row in &mut adj {
            row.sort_by_key(|&(v, _)| v);
            let mut merged: Vec<(u32, f64)> = Vec::with_capacity(row.len());
            for &(v, w) in row.iter() {
                match merged.last_mut() {
                    Some(last) if last.0 == v => last.1 += w,
                    _ => merged.push((v, w)),
                }
            }
            *row = merged;
        }
        let self_loop = vec![0.0; n];
        let two_m: f64 = adj
            .iter()
            .flat_map(|r| r.iter().map(|&(_, w)| w))
            .sum::<f64>();
        Level {
            adj,
            self_loop,
            two_m,
        }
    }
}

/// One local-moving phase. Returns the community assignment and whether any
/// node moved.
fn local_moving(level: &Level, rng: &mut StdRng) -> (Vec<u32>, bool) {
    let n = level.node_count();
    let mut community: Vec<u32> = (0..n as u32).collect();
    let mut sigma_tot: Vec<f64> = (0..n).map(|u| level.degree(u)).collect();
    let degrees: Vec<f64> = sigma_tot.clone();
    let two_m = level.two_m.max(f64::MIN_POSITIVE);

    let mut order: Vec<usize> = (0..n).collect();
    let mut moved_any = false;
    // neighbor-community weight scratch (sparse clearing).
    let mut weight_to: Vec<f64> = vec![0.0; n];
    let mut touched: Vec<u32> = Vec::new();

    loop {
        let mut moved_this_pass = false;
        order.shuffle(rng);
        for &u in &order {
            let cu = community[u];
            // Sum link weights from u to each neighbor community.
            touched.clear();
            for &(v, w) in &level.adj[u] {
                let cv = community[v as usize];
                if weight_to[cv as usize] == 0.0 {
                    touched.push(cv);
                }
                weight_to[cv as usize] += w;
            }
            // Remove u from its community.
            sigma_tot[cu as usize] -= degrees[u];
            let base = weight_to[cu as usize];
            // Best target: maximize k_i_in(c) − Σ_tot(c)·k_i / 2m.
            let mut best_c = cu;
            let mut best_gain = base - sigma_tot[cu as usize] * degrees[u] / two_m;
            for &c in &touched {
                if c == cu {
                    continue;
                }
                let gain = weight_to[c as usize] - sigma_tot[c as usize] * degrees[u] / two_m;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_c = c;
                }
            }
            sigma_tot[best_c as usize] += degrees[u];
            if best_c != cu {
                community[u] = best_c;
                moved_this_pass = true;
                moved_any = true;
            }
            for &c in &touched {
                weight_to[c as usize] = 0.0;
            }
        }
        if !moved_this_pass {
            break;
        }
    }
    (community, moved_any)
}

/// Renumber an assignment to dense ids `0..k`; returns (dense, k).
fn renumber(assignment: &[u32]) -> (Vec<u32>, usize) {
    let mut map = vec![u32::MAX; assignment.len()];
    let mut next = 0u32;
    let mut dense = Vec::with_capacity(assignment.len());
    for &c in assignment {
        if map[c as usize] == u32::MAX {
            map[c as usize] = next;
            next += 1;
        }
        dense.push(map[c as usize]);
    }
    (dense, next as usize)
}

/// Collapse communities into super-nodes.
fn aggregate(level: &Level, dense: &[u32], k: usize) -> Level {
    let mut self_loop = vec![0.0; k];
    let mut pair_weights: std::collections::HashMap<(u32, u32), f64> =
        std::collections::HashMap::new();
    for u in 0..level.node_count() {
        let cu = dense[u];
        self_loop[cu as usize] += level.self_loop[u];
        for &(v, w) in &level.adj[u] {
            let cv = dense[v as usize];
            if cu == cv {
                // Each undirected edge appears twice in adj; halve.
                self_loop[cu as usize] += w / 2.0;
            } else {
                *pair_weights.entry((cu, cv)).or_insert(0.0) += w;
            }
        }
    }
    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); k];
    for (&(cu, cv), &w) in &pair_weights {
        adj[cu as usize].push((cv, w));
    }
    for row in &mut adj {
        row.sort_by_key(|&(v, _)| v);
    }
    Level {
        adj,
        self_loop,
        two_m: level.two_m,
    }
}

/// Runs multi-level Louvain and returns the detected communities, each a
/// sorted list of original node ids. Isolated nodes come back as singleton
/// communities. Communities are ordered by their smallest member.
///
/// ```
/// use imc_community::louvain::louvain;
/// use imc_graph::generators::planted_partition;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let pp = planted_partition(90, 3, 0.5, 0.005, &mut rng);
/// let comms = louvain(&pp.graph, 42);
/// assert!(comms.len() >= 3); // recovers (at least) the planted blocks
/// ```
pub fn louvain(graph: &Graph, seed: u64) -> Vec<Vec<NodeId>> {
    louvain_levels(graph, seed)
        .into_iter()
        .last()
        .unwrap_or_default()
}

/// Runs multi-level Louvain and returns the **whole hierarchy**: one
/// partition of the original nodes per aggregation level, coarsening from
/// the first local-moving pass to the final communities (`last()` equals
/// [`louvain`]'s output). Useful when a size-constrained level is wanted
/// instead of the modularity optimum — e.g. picking the finest level whose
/// communities fit the paper's `s` cap.
///
/// ```
/// use imc_community::louvain::louvain_levels;
/// use imc_graph::generators::planted_partition;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let pp = planted_partition(90, 3, 0.5, 0.005, &mut rng);
/// let levels = louvain_levels(&pp.graph, 42);
/// assert!(!levels.is_empty());
/// // Levels only coarsen: community counts are non-increasing.
/// for w in levels.windows(2) {
///     assert!(w[1].len() <= w[0].len());
/// }
/// ```
pub fn louvain_levels(graph: &Graph, seed: u64) -> Vec<Vec<Vec<NodeId>>> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut level = Level::from_graph(graph);
    // membership[v] = current community of original node v.
    let mut membership: Vec<u32> = (0..n as u32).collect();
    let mut levels: Vec<Vec<Vec<NodeId>>> = Vec::new();

    loop {
        let (assignment, moved) = local_moving(&level, &mut rng);
        let (dense, k) = renumber(&assignment);
        // Project onto original nodes.
        for m in membership.iter_mut() {
            *m = dense[*m as usize];
        }
        levels.push(snapshot(&membership));
        if !moved || k == level.node_count() {
            break;
        }
        level = aggregate(&level, &dense, k);
    }
    levels
}

/// Materializes the current membership as sorted community lists.
fn snapshot(membership: &[u32]) -> Vec<Vec<NodeId>> {
    let (dense, k) = renumber(membership);
    let mut communities: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for (v, &c) in dense.iter().enumerate() {
        communities[c as usize].push(NodeId::new(v as u32));
    }
    for c in &mut communities {
        c.sort();
    }
    communities.sort_by_key(|c| c[0]);
    communities
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_graph::generators::planted_partition;
    use imc_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_cliques_with_a_bridge() {
        // Clique {0,1,2}, clique {3,4,5}, weak bridge 2-3.
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)] {
            b.add_undirected(u, v, 1.0).unwrap();
        }
        b.add_undirected(2, 3, 0.1).unwrap();
        let g = b.build().unwrap();
        let comms = louvain(&g, 7);
        assert_eq!(comms.len(), 2);
        assert_eq!(comms[0], vec![0.into(), 1.into(), 2.into()]);
        assert_eq!(comms[1], vec![3.into(), 4.into(), 5.into()]);
    }

    #[test]
    fn output_partitions_all_nodes() {
        let mut rng = StdRng::seed_from_u64(2);
        let pp = planted_partition(120, 4, 0.3, 0.02, &mut rng);
        let comms = louvain(&pp.graph, 3);
        let total: usize = comms.iter().map(|c| c.len()).sum();
        assert_eq!(total, 120);
        let mut seen = std::collections::HashSet::new();
        for c in &comms {
            for v in c {
                assert!(seen.insert(*v), "node {v} in two communities");
            }
        }
    }

    #[test]
    fn recovers_planted_blocks() {
        let mut rng = StdRng::seed_from_u64(5);
        let pp = planted_partition(150, 5, 0.5, 0.002, &mut rng);
        let comms = louvain(&pp.graph, 11);
        // With this separation Louvain should find close to 5 communities.
        assert!(
            comms.len() >= 4 && comms.len() <= 8,
            "found {}",
            comms.len()
        );
        // Modularity should be clearly positive.
        let q = crate::modularity::modularity(&pp.graph, &comms);
        assert!(q > 0.5, "modularity {q} too low");
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = GraphBuilder::new(3).build().unwrap();
        let comms = louvain(&g, 1);
        assert_eq!(comms.len(), 3);
        for c in comms {
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn empty_graph_gives_no_communities() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(louvain(&g, 0).is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng = StdRng::seed_from_u64(8);
        let pp = planted_partition(80, 4, 0.4, 0.01, &mut rng);
        assert_eq!(louvain(&pp.graph, 99), louvain(&pp.graph, 99));
    }

    #[test]
    fn levels_coarsen_and_each_is_a_partition() {
        let mut rng = StdRng::seed_from_u64(13);
        let pp = planted_partition(100, 5, 0.4, 0.02, &mut rng);
        let levels = louvain_levels(&pp.graph, 3);
        assert!(!levels.is_empty());
        for (i, level) in levels.iter().enumerate() {
            let total: usize = level.iter().map(|c| c.len()).sum();
            assert_eq!(total, 100, "level {i} is not a partition");
        }
        for w in levels.windows(2) {
            assert!(w[1].len() <= w[0].len(), "levels must coarsen");
        }
        // Final level equals louvain().
        assert_eq!(levels.last().unwrap(), &louvain(&pp.graph, 3));
    }

    #[test]
    fn levels_refine_consistently() {
        // Every community at level i+1 is a union of level-i communities.
        let mut rng = StdRng::seed_from_u64(17);
        let pp = planted_partition(80, 4, 0.4, 0.02, &mut rng);
        let levels = louvain_levels(&pp.graph, 5);
        for w in levels.windows(2) {
            let mut fine_of = vec![usize::MAX; 80];
            for (ci, c) in w[0].iter().enumerate() {
                for v in c {
                    fine_of[v.index()] = ci;
                }
            }
            for coarse in &w[1] {
                // Collect the fine communities intersecting this coarse one.
                let fines: std::collections::HashSet<usize> =
                    coarse.iter().map(|v| fine_of[v.index()]).collect();
                let union_size: usize = fines.iter().map(|&fi| w[0][fi].len()).sum();
                assert_eq!(union_size, coarse.len(), "coarse splits a fine community");
            }
        }
    }

    #[test]
    fn louvain_beats_random_partition_modularity() {
        let mut rng = StdRng::seed_from_u64(21);
        let pp = planted_partition(100, 4, 0.4, 0.02, &mut rng);
        let louvain_comms = louvain(&pp.graph, 4);
        let random_comms =
            crate::random_partition::random_partition(pp.graph.node_count() as u32, 4, 33);
        let ql = crate::modularity::modularity(&pp.graph, &louvain_comms);
        let qr = crate::modularity::modularity(&pp.graph, &random_comms);
        assert!(ql > qr, "louvain q={ql} should beat random q={qr}");
    }
}
