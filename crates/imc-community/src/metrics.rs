//! Partition-comparison metrics: Normalized Mutual Information and purity.
//!
//! Used by the test suite (does Louvain recover planted blocks?) and by
//! downstream analyses comparing detectors.

use imc_graph::NodeId;

/// Assigns each of `n` nodes its community index under `partition`
/// (`usize::MAX` for uncovered nodes).
fn labels(n: usize, partition: &[Vec<NodeId>]) -> Vec<usize> {
    let mut label = vec![usize::MAX; n];
    for (c, members) in partition.iter().enumerate() {
        for &v in members {
            label[v.index()] = c;
        }
    }
    label
}

/// Normalized Mutual Information between two partitions of the same `n`
/// nodes, `NMI = 2·I(X;Y) / (H(X) + H(Y))`, in `[0, 1]`; 1 iff the
/// partitions are identical up to relabeling. Uncovered nodes are treated
/// as singleton classes. Returns 1.0 when both partitions carry no
/// information (both single-class).
///
/// # Panics
///
/// Panics if a member id is `≥ n`.
pub fn nmi(n: usize, a: &[Vec<NodeId>], b: &[Vec<NodeId>]) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let mut la = labels(n, a);
    let mut lb = labels(n, b);
    // Turn uncovered into fresh singleton classes.
    let mut next_a = a.len();
    for l in la.iter_mut() {
        if *l == usize::MAX {
            *l = next_a;
            next_a += 1;
        }
    }
    let mut next_b = b.len();
    for l in lb.iter_mut() {
        if *l == usize::MAX {
            *l = next_b;
            next_b += 1;
        }
    }

    // Joint counts.
    let mut joint: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    let mut ca = vec![0.0f64; next_a];
    let mut cb = vec![0.0f64; next_b];
    for v in 0..n {
        *joint.entry((la[v], lb[v])).or_insert(0.0) += 1.0;
        ca[la[v]] += 1.0;
        cb[lb[v]] += 1.0;
    }
    let nf = n as f64;
    let h = |counts: &[f64]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0.0)
            .map(|&c| {
                let p = c / nf;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&ca);
    let hb = h(&cb);
    let mut mi = 0.0f64;
    for (&(x, y), &c) in &joint {
        let pxy = c / nf;
        let px = ca[x] / nf;
        let py = cb[y] / nf;
        mi += pxy * (pxy / (px * py)).ln();
    }
    if ha + hb == 0.0 {
        1.0 // both partitions are a single class: identical, trivially
    } else {
        (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
    }
}

/// Purity of partition `a` against ground truth `b`: the fraction of nodes
/// whose `a`-community's majority ground-truth class matches their own.
///
/// # Panics
///
/// Panics if a member id is `≥ n`.
pub fn purity(n: usize, a: &[Vec<NodeId>], truth: &[Vec<NodeId>]) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let lt = labels(n, truth);
    let mut correct = 0usize;
    for members in a {
        let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &v in members {
            *counts.entry(lt[v.index()]).or_insert(0) += 1;
        }
        correct += counts.values().copied().max().unwrap_or(0);
    }
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(r: std::ops::Range<u32>) -> Vec<NodeId> {
        r.map(NodeId::new).collect()
    }

    #[test]
    fn identical_partitions_have_nmi_one() {
        let p = vec![ids(0..3), ids(3..6)];
        assert!((nmi(6, &p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeled_partitions_have_nmi_one() {
        let a = vec![ids(0..3), ids(3..6)];
        let b = vec![ids(3..6), ids(0..3)];
        assert!((nmi(6, &a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_have_low_nmi() {
        // a splits {0..4}/{4..8}; b interleaves evens/odds: zero MI.
        let a = vec![ids(0..4), ids(4..8)];
        let b = vec![
            vec![0, 2, 4, 6].into_iter().map(NodeId::new).collect(),
            vec![1, 3, 5, 7].into_iter().map(NodeId::new).collect(),
        ];
        assert!(nmi(8, &a, &b) < 1e-9);
    }

    #[test]
    fn refinement_has_intermediate_nmi() {
        let coarse = vec![ids(0..4)];
        let fine = vec![ids(0..2), ids(2..4)];
        let v = nmi(4, &coarse, &fine);
        // Single-class coarse has zero entropy → NMI formula gives 0 here.
        assert!(v < 1.0);
    }

    #[test]
    fn trivial_partitions() {
        let single = vec![ids(0..4)];
        assert!((nmi(4, &single, &single) - 1.0).abs() < 1e-12);
        assert_eq!(nmi(0, &[], &[]), 1.0);
    }

    #[test]
    fn purity_of_exact_match_is_one() {
        let p = vec![ids(0..3), ids(3..6)];
        assert_eq!(purity(6, &p, &p), 1.0);
    }

    #[test]
    fn purity_of_merged_partition() {
        let truth = vec![ids(0..3), ids(3..6)];
        let merged = vec![ids(0..6)];
        assert!((purity(6, &merged, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uncovered_nodes_are_singletons_for_nmi() {
        let a = vec![ids(0..2)]; // node 2 uncovered
        let b = vec![ids(0..2), ids(2..3)];
        assert!((nmi(3, &a, &b) - 1.0).abs() < 1e-12);
    }
}
