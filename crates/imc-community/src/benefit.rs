use crate::{CommunityError, Result};

/// Policy assigning the benefit `b_i` to each community.
///
/// The paper's evaluation sets `b_i = |C_i|` ([`Population`]); the
/// theoretical sections implicitly use unit benefits ([`Uniform`] with 1.0).
///
/// [`Population`]: BenefitPolicy::Population
/// [`Uniform`]: BenefitPolicy::Uniform
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BenefitPolicy {
    /// `b_i = |C_i|` — the paper's experimental setting.
    Population,
    /// Every community is worth the same constant.
    Uniform(f64),
    /// `b_i = scale · |C_i|` — population benefit with a global scale.
    ScaledPopulation(f64),
}

impl BenefitPolicy {
    /// Benefit for a community with `population` members.
    ///
    /// # Errors
    ///
    /// [`CommunityError::InvalidBenefit`] when the resulting benefit would
    /// be non-positive or non-finite.
    pub fn benefit_for(&self, population: usize) -> Result<f64> {
        let b = match *self {
            BenefitPolicy::Population => population as f64,
            BenefitPolicy::Uniform(b) => b,
            BenefitPolicy::ScaledPopulation(s) => s * population as f64,
        };
        if b > 0.0 && b.is_finite() {
            Ok(b)
        } else {
            Err(CommunityError::InvalidBenefit {
                index: 0,
                benefit: b,
            })
        }
    }
}

impl Default for BenefitPolicy {
    /// The paper's experimental setting, `b_i = |C_i|`.
    fn default() -> Self {
        BenefitPolicy::Population
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_benefit() {
        assert_eq!(BenefitPolicy::Population.benefit_for(8).unwrap(), 8.0);
    }

    #[test]
    fn uniform_benefit() {
        assert_eq!(BenefitPolicy::Uniform(3.5).benefit_for(100).unwrap(), 3.5);
    }

    #[test]
    fn scaled_population() {
        assert_eq!(
            BenefitPolicy::ScaledPopulation(0.5).benefit_for(8).unwrap(),
            4.0
        );
    }

    #[test]
    fn invalid_benefits_rejected() {
        assert!(BenefitPolicy::Uniform(0.0).benefit_for(5).is_err());
        assert!(BenefitPolicy::Uniform(-1.0).benefit_for(5).is_err());
        assert!(BenefitPolicy::Uniform(f64::INFINITY)
            .benefit_for(5)
            .is_err());
        assert!(BenefitPolicy::ScaledPopulation(1.0).benefit_for(0).is_err());
    }

    #[test]
    fn default_is_population() {
        assert_eq!(BenefitPolicy::default(), BenefitPolicy::Population);
    }
}
