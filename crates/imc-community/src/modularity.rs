//! Newman modularity of a partition, on the symmetrized weighted graph.

use imc_graph::{Graph, NodeId};

/// Computes the modularity `Q` of `partition` over `graph`.
///
/// The directed graph is symmetrized (`w_uv + w_vu`), matching the
/// [`louvain`](crate::louvain::louvain) optimizer:
///
/// `Q = Σ_c [ Σ_in(c) / 2m − (Σ_tot(c) / 2m)² ]`
///
/// Nodes missing from the partition are treated as singleton communities
/// (they only contribute through the degree term). Returns 0 for an
/// edgeless graph.
///
/// ```
/// use imc_community::modularity::modularity;
/// use imc_graph::GraphBuilder;
/// # fn main() -> Result<(), imc_graph::GraphError> {
/// let mut b = GraphBuilder::new(4);
/// b.add_undirected(0, 1, 1.0)?;
/// b.add_undirected(2, 3, 1.0)?;
/// let g = b.build()?;
/// let good = modularity(&g, &[vec![0.into(), 1.into()], vec![2.into(), 3.into()]]);
/// let bad = modularity(&g, &[vec![0.into(), 2.into()], vec![1.into(), 3.into()]]);
/// assert!(good > bad);
/// # Ok(())
/// # }
/// ```
pub fn modularity(graph: &Graph, partition: &[Vec<NodeId>]) -> f64 {
    let n = graph.node_count();
    if n == 0 {
        return 0.0;
    }
    // community_of[v]: assigned community or a fresh singleton id.
    let mut community_of = vec![u32::MAX; n];
    for (c, members) in partition.iter().enumerate() {
        for &v in members {
            community_of[v.index()] = c as u32;
        }
    }
    let mut next = partition.len() as u32;
    for slot in community_of.iter_mut() {
        if *slot == u32::MAX {
            *slot = next;
            next += 1;
        }
    }
    let k = next as usize;

    // Symmetrized degrees and intra-community weights.
    let mut sigma_tot = vec![0.0f64; k];
    let mut sigma_in = vec![0.0f64; k];
    let mut two_m = 0.0f64;
    for e in graph.edges() {
        let (u, v) = (e.source.index(), e.target.index());
        let (cu, cv) = (community_of[u], community_of[v]);
        // Each directed edge contributes w to both endpoints' symmetrized
        // degree and 2w to 2m.
        sigma_tot[cu as usize] += e.weight;
        sigma_tot[cv as usize] += e.weight;
        two_m += 2.0 * e.weight;
        if cu == cv {
            sigma_in[cu as usize] += 2.0 * e.weight;
        }
    }
    if two_m == 0.0 {
        return 0.0;
    }
    (0..k)
        .map(|c| sigma_in[c] / two_m - (sigma_tot[c] / two_m).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_graph::GraphBuilder;

    fn two_cliques() -> Graph {
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)] {
            b.add_undirected(u, v, 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn perfect_split_has_high_modularity() {
        let g = two_cliques();
        let q = modularity(
            &g,
            &[
                vec![0.into(), 1.into(), 2.into()],
                vec![3.into(), 4.into(), 5.into()],
            ],
        );
        assert!((q - 0.5).abs() < 1e-12, "q={q}");
    }

    #[test]
    fn single_community_has_zero_modularity() {
        let g = two_cliques();
        let all: Vec<NodeId> = g.nodes().collect();
        let q = modularity(&g, &[all]);
        assert!(q.abs() < 1e-12);
    }

    #[test]
    fn singletons_have_negative_modularity() {
        let g = two_cliques();
        let singles: Vec<Vec<NodeId>> = g.nodes().map(|v| vec![v]).collect();
        assert!(modularity(&g, &singles) < 0.0);
    }

    #[test]
    fn missing_nodes_treated_as_singletons() {
        let g = two_cliques();
        let partial = vec![vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]];
        let explicit = vec![
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
            vec![NodeId::new(3)],
            vec![NodeId::new(4)],
            vec![NodeId::new(5)],
        ];
        assert!((modularity(&g, &partial) - modularity(&g, &explicit)).abs() < 1e-12);
    }

    #[test]
    fn edgeless_graph_is_zero() {
        let g = GraphBuilder::new(5).build().unwrap();
        assert_eq!(modularity(&g, &[]), 0.0);
    }

    #[test]
    fn modularity_bounded_above_by_one() {
        let g = two_cliques();
        let q = modularity(
            &g,
            &[
                vec![0.into(), 1.into(), 2.into()],
                vec![3.into(), 4.into(), 5.into()],
            ],
        );
        assert!(q <= 1.0);
    }
}
