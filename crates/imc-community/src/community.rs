use crate::{CommunityError, CommunitySetBuilder, Result};
use imc_graph::{Graph, NodeId};
use std::fmt;

/// Compact identifier of a community within a [`CommunitySet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CommunityId(u32);

impl CommunityId {
    /// Creates a community id from a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        CommunityId(raw)
    }

    /// Returns the id as a `usize` suitable for indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CommunityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl From<u32> for CommunityId {
    fn from(raw: u32) -> Self {
        CommunityId(raw)
    }
}

/// One community: its members, activation threshold `h_i`, and benefit
/// `b_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Community {
    /// Identifier within the owning [`CommunitySet`].
    pub id: CommunityId,
    /// Sorted, deduplicated member nodes.
    pub members: Vec<NodeId>,
    /// Activation threshold `h_i ≥ 1`: the community is *influenced* when at
    /// least this many members are activated. May exceed `|members|`, in
    /// which case the community can never be influenced (the paper permits
    /// this; [`MAF`](https://doc.rust-lang.org) style solvers simply skip it).
    pub threshold: u32,
    /// Benefit `b_i > 0` gained when the community is influenced.
    pub benefit: f64,
}

impl Community {
    /// Number of members `|C_i|`.
    pub fn population(&self) -> usize {
        self.members.len()
    }

    /// `true` when at least `threshold` members could ever be activated,
    /// i.e. `threshold ≤ |C_i|`.
    pub fn is_satisfiable(&self) -> bool {
        (self.threshold as usize) <= self.members.len()
    }

    /// Membership test (binary search; members are sorted).
    pub fn contains(&self, v: NodeId) -> bool {
        self.members.binary_search(&v).is_ok()
    }
}

/// A validated collection of disjoint communities over a graph's nodes.
///
/// Construct through [`CommunitySet::builder`] or
/// [`CommunitySet::from_parts`]. Invariants enforced at construction:
///
/// * communities are pairwise disjoint;
/// * all members are valid node ids;
/// * no community is empty;
/// * thresholds are `≥ 1` and benefits are positive and finite.
///
/// Not every node must belong to a community ([`community_of`] returns
/// `None` for uncovered nodes); the paper's setup covers all nodes, but the
/// algorithms never require it.
///
/// [`community_of`]: CommunitySet::community_of
#[derive(Debug, Clone, PartialEq)]
pub struct CommunitySet {
    communities: Vec<Community>,
    /// `node_to_community[v] == u32::MAX` when `v` is uncovered.
    node_to_community: Vec<u32>,
    total_benefit: f64,
    max_threshold: u32,
    min_benefit: f64,
}

impl CommunitySet {
    /// Starts a [`CommunitySetBuilder`] for the given graph.
    pub fn builder(graph: &Graph) -> CommunitySetBuilder<'_> {
        CommunitySetBuilder::new(graph)
    }

    /// Builds a `CommunitySet` from explicit `(members, threshold, benefit)`
    /// triples, validating all invariants.
    ///
    /// # Errors
    ///
    /// * [`CommunityError::EmptyCommunity`] for an empty member list.
    /// * [`CommunityError::NodeOutOfRange`] when a member id `≥ node_count`.
    /// * [`CommunityError::OverlappingNode`] when communities intersect.
    /// * [`CommunityError::ZeroThreshold`] for `threshold == 0`.
    /// * [`CommunityError::InvalidBenefit`] for non-positive/non-finite
    ///   benefits.
    pub fn from_parts(node_count: u32, parts: Vec<(Vec<NodeId>, u32, f64)>) -> Result<Self> {
        let mut node_to_community = vec![u32::MAX; node_count as usize];
        let mut communities = Vec::with_capacity(parts.len());
        for (index, (mut members, threshold, benefit)) in parts.into_iter().enumerate() {
            if members.is_empty() {
                return Err(CommunityError::EmptyCommunity { index });
            }
            if threshold == 0 {
                return Err(CommunityError::ZeroThreshold { index });
            }
            if !(benefit > 0.0 && benefit.is_finite()) {
                return Err(CommunityError::InvalidBenefit { index, benefit });
            }
            members.sort();
            members.dedup();
            for &v in &members {
                if v.raw() >= node_count {
                    return Err(CommunityError::NodeOutOfRange {
                        node: v.raw(),
                        node_count,
                    });
                }
                if node_to_community[v.index()] != u32::MAX {
                    return Err(CommunityError::OverlappingNode { node: v.raw() });
                }
                node_to_community[v.index()] = index as u32;
            }
            communities.push(Community {
                id: CommunityId::new(index as u32),
                members,
                threshold,
                benefit,
            });
        }
        let total_benefit = communities.iter().map(|c| c.benefit).sum();
        let max_threshold = communities.iter().map(|c| c.threshold).max().unwrap_or(0);
        let min_benefit = communities
            .iter()
            .map(|c| c.benefit)
            .fold(f64::INFINITY, f64::min);
        Ok(CommunitySet {
            communities,
            node_to_community,
            total_benefit,
            max_threshold,
            min_benefit,
        })
    }

    /// Number of communities `r`.
    pub fn len(&self) -> usize {
        self.communities.len()
    }

    /// `true` when there are no communities.
    pub fn is_empty(&self) -> bool {
        self.communities.is_empty()
    }

    /// Iterator over the communities in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, Community> {
        self.communities.iter()
    }

    /// The community with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: CommunityId) -> &Community {
        &self.communities[id.index()]
    }

    /// The community containing `v`, or `None` when `v` is uncovered.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the graph the set was built for.
    pub fn community_of(&self, v: NodeId) -> Option<CommunityId> {
        let c = self.node_to_community[v.index()];
        (c != u32::MAX).then(|| CommunityId::new(c))
    }

    /// Total benefit `b = Σ b_i`.
    pub fn total_benefit(&self) -> f64 {
        self.total_benefit
    }

    /// Largest activation threshold `h = max_i h_i`.
    pub fn max_threshold(&self) -> u32 {
        self.max_threshold
    }

    /// Smallest benefit `β = min_i b_i` (`∞` for an empty set).
    pub fn min_benefit(&self) -> f64 {
        self.min_benefit
    }

    /// Number of nodes covered by some community.
    pub fn covered_nodes(&self) -> usize {
        self.node_to_community
            .iter()
            .filter(|&&c| c != u32::MAX)
            .count()
    }

    /// Number of nodes of the underlying graph.
    pub fn node_count(&self) -> usize {
        self.node_to_community.len()
    }

    /// `true` when every threshold is at most `bound` (the premise of the
    /// paper's BT / BT^(d) algorithms).
    pub fn thresholds_bounded_by(&self, bound: u32) -> bool {
        self.communities.iter().all(|c| c.threshold <= bound)
    }

    /// Sampling distribution ρ over communities: `ρ(C_i) = b_i / b`
    /// (Section III of the paper). Returns the cumulative distribution for
    /// O(log r) inverse-CDF sampling.
    pub fn benefit_cdf(&self) -> Vec<f64> {
        let mut acc = 0.0;
        let mut cdf = Vec::with_capacity(self.communities.len());
        for c in &self.communities {
            acc += c.benefit / self.total_benefit;
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0; // guard against floating-point shortfall
        }
        cdf
    }
}

impl<'a> IntoIterator for &'a CommunitySet {
    type Item = &'a Community;
    type IntoIter = std::slice::Iter<'a, Community>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId::new(x)).collect()
    }

    fn sample_set() -> CommunitySet {
        CommunitySet::from_parts(
            10,
            vec![
                (ids(&[0, 1, 2]), 2, 3.0),
                (ids(&[3, 4]), 1, 2.0),
                (ids(&[5, 6, 7, 8]), 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn derived_quantities() {
        let cs = sample_set();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs.total_benefit(), 9.0);
        assert_eq!(cs.max_threshold(), 3);
        assert_eq!(cs.min_benefit(), 2.0);
        assert_eq!(cs.covered_nodes(), 9);
        assert_eq!(cs.node_count(), 10);
    }

    #[test]
    fn membership_lookup() {
        let cs = sample_set();
        assert_eq!(cs.community_of(NodeId::new(4)), Some(CommunityId::new(1)));
        assert_eq!(cs.community_of(NodeId::new(9)), None);
        assert!(cs.get(CommunityId::new(0)).contains(NodeId::new(2)));
        assert!(!cs.get(CommunityId::new(0)).contains(NodeId::new(3)));
    }

    #[test]
    fn rejects_overlap() {
        let err = CommunitySet::from_parts(5, vec![(ids(&[0, 1]), 1, 1.0), (ids(&[1, 2]), 1, 1.0)])
            .unwrap_err();
        assert_eq!(err, CommunityError::OverlappingNode { node: 1 });
    }

    #[test]
    fn rejects_out_of_range() {
        let err = CommunitySet::from_parts(3, vec![(ids(&[0, 5]), 1, 1.0)]).unwrap_err();
        assert!(matches!(
            err,
            CommunityError::NodeOutOfRange { node: 5, .. }
        ));
    }

    #[test]
    fn rejects_empty_and_zero_threshold_and_bad_benefit() {
        assert!(matches!(
            CommunitySet::from_parts(3, vec![(vec![], 1, 1.0)]),
            Err(CommunityError::EmptyCommunity { index: 0 })
        ));
        assert!(matches!(
            CommunitySet::from_parts(3, vec![(ids(&[0]), 0, 1.0)]),
            Err(CommunityError::ZeroThreshold { index: 0 })
        ));
        assert!(matches!(
            CommunitySet::from_parts(3, vec![(ids(&[0]), 1, 0.0)]),
            Err(CommunityError::InvalidBenefit { .. })
        ));
        assert!(matches!(
            CommunitySet::from_parts(3, vec![(ids(&[0]), 1, f64::NAN)]),
            Err(CommunityError::InvalidBenefit { .. })
        ));
    }

    #[test]
    fn members_are_sorted_and_deduped() {
        let cs = CommunitySet::from_parts(5, vec![(ids(&[3, 1, 3, 2]), 1, 1.0)]).unwrap();
        assert_eq!(cs.get(CommunityId::new(0)).members, ids(&[1, 2, 3]));
    }

    #[test]
    fn satisfiability() {
        let cs = CommunitySet::from_parts(5, vec![(ids(&[0, 1]), 3, 1.0)]).unwrap();
        assert!(!cs.get(CommunityId::new(0)).is_satisfiable());
        assert!(cs.thresholds_bounded_by(3));
        assert!(!cs.thresholds_bounded_by(2));
    }

    #[test]
    fn benefit_cdf_is_monotone_and_ends_at_one() {
        let cs = sample_set();
        let cdf = cs.benefit_cdf();
        assert_eq!(cdf.len(), 3);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cdf.last().unwrap(), 1.0);
        assert!((cdf[0] - 3.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn into_iterator_works() {
        let cs = sample_set();
        let total: usize = (&cs).into_iter().map(|c| c.population()).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn empty_set_is_valid() {
        let cs = CommunitySet::from_parts(4, vec![]).unwrap();
        assert!(cs.is_empty());
        assert_eq!(cs.total_benefit(), 0.0);
        assert_eq!(cs.max_threshold(), 0);
    }
}
