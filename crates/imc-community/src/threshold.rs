use crate::{CommunityError, Result};

/// Policy assigning the activation threshold `h_i` to each community.
///
/// The paper uses two settings: `Constant(2)` for the bounded-threshold
/// experiments (the regime where BT/MB apply) and `Fraction(0.5)` — half the
/// population — for the regular experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// Every community gets the same threshold `h`.
    Constant(u32),
    /// `h_i = max(1, ⌈fraction · |C_i|⌉)`.
    Fraction(f64),
}

impl ThresholdPolicy {
    /// Threshold for a community with `population` members.
    ///
    /// # Errors
    ///
    /// [`CommunityError::InvalidFraction`] when a [`Fraction`] policy is
    /// outside `(0, 1]`, [`CommunityError::ZeroThreshold`] for
    /// `Constant(0)`.
    ///
    /// [`Fraction`]: ThresholdPolicy::Fraction
    pub fn threshold_for(&self, population: usize) -> Result<u32> {
        match *self {
            ThresholdPolicy::Constant(h) => {
                if h == 0 {
                    Err(CommunityError::ZeroThreshold { index: 0 })
                } else {
                    Ok(h)
                }
            }
            ThresholdPolicy::Fraction(f) => {
                if !(f > 0.0 && f <= 1.0) {
                    return Err(CommunityError::InvalidFraction { fraction: f });
                }
                Ok(((f * population as f64).ceil() as u32).max(1))
            }
        }
    }
}

impl Default for ThresholdPolicy {
    /// The paper's bounded-threshold default, `h_i = 2`.
    fn default() -> Self {
        ThresholdPolicy::Constant(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ignores_population() {
        let p = ThresholdPolicy::Constant(2);
        assert_eq!(p.threshold_for(1).unwrap(), 2);
        assert_eq!(p.threshold_for(100).unwrap(), 2);
    }

    #[test]
    fn fraction_rounds_up() {
        let p = ThresholdPolicy::Fraction(0.5);
        assert_eq!(p.threshold_for(8).unwrap(), 4);
        assert_eq!(p.threshold_for(5).unwrap(), 3);
        assert_eq!(p.threshold_for(1).unwrap(), 1);
    }

    #[test]
    fn fraction_never_below_one() {
        let p = ThresholdPolicy::Fraction(0.01);
        assert_eq!(p.threshold_for(3).unwrap(), 1);
    }

    #[test]
    fn full_fraction_needs_everyone() {
        let p = ThresholdPolicy::Fraction(1.0);
        assert_eq!(p.threshold_for(7).unwrap(), 7);
    }

    #[test]
    fn invalid_inputs_error() {
        assert!(ThresholdPolicy::Constant(0).threshold_for(5).is_err());
        assert!(ThresholdPolicy::Fraction(0.0).threshold_for(5).is_err());
        assert!(ThresholdPolicy::Fraction(1.5).threshold_for(5).is_err());
        assert!(ThresholdPolicy::Fraction(-0.5).threshold_for(5).is_err());
    }

    #[test]
    fn default_is_paper_bounded_case() {
        assert_eq!(ThresholdPolicy::default(), ThresholdPolicy::Constant(2));
    }
}
