//! Asynchronous label propagation (Raghavan, Albert, Kumara 2007).
//!
//! A fast, parameter-free alternative to Louvain: every node repeatedly
//! adopts the label carried by the (weighted) majority of its neighbors,
//! in a seeded random order, until labels stabilize. Near-linear per
//! sweep; typically converges in a handful of sweeps. Quality is below
//! Louvain's but it is an order of magnitude faster on large graphs — a
//! useful trade-off for the harness's biggest analogs.

use imc_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Runs label propagation on the symmetrized weighted graph; returns
/// communities as sorted member lists, ordered by smallest member.
/// `max_sweeps` bounds the sweep count (propagation can oscillate on
/// bipartite-ish structures; 20 is far beyond typical convergence).
pub fn label_propagation(graph: &Graph, seed: u64, max_sweeps: usize) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    // Symmetrized adjacency.
    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for e in graph.edges() {
        adj[e.source.index()].push((e.target.raw(), e.weight));
        adj[e.target.index()].push((e.source.raw(), e.weight));
    }

    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weight_of: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();

    for _ in 0..max_sweeps {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &u in &order {
            if adj[u].is_empty() {
                continue;
            }
            weight_of.clear();
            for &(v, w) in &adj[u] {
                *weight_of.entry(label[v as usize]).or_insert(0.0) += w;
            }
            // Majority label; ties broken by smaller label id for
            // determinism (the original algorithm breaks ties randomly).
            let current = label[u];
            let (&best, &best_w) = weight_of
                .iter()
                .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(a.0)))
                .expect("non-empty adjacency");
            let current_w = weight_of.get(&current).copied().unwrap_or(0.0);
            if best != current && best_w > current_w {
                label[u] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Gather label classes.
    let mut map: std::collections::HashMap<u32, Vec<NodeId>> = std::collections::HashMap::new();
    for (v, &l) in label.iter().enumerate() {
        map.entry(l).or_default().push(NodeId::new(v as u32));
    }
    let mut out: Vec<Vec<NodeId>> = map.into_values().collect();
    for c in &mut out {
        c.sort();
    }
    out.sort_by_key(|c| c[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_graph::generators::planted_partition;
    use imc_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_cliques_found() {
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)] {
            b.add_undirected(u, v, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let comms = label_propagation(&g, 3, 20);
        assert_eq!(comms.len(), 2);
        assert_eq!(comms[0], vec![0.into(), 1.into(), 2.into()]);
    }

    #[test]
    fn partitions_all_nodes() {
        let mut rng = StdRng::seed_from_u64(5);
        let pp = planted_partition(150, 5, 0.4, 0.01, &mut rng);
        let comms = label_propagation(&pp.graph, 1, 20);
        let total: usize = comms.iter().map(|c| c.len()).sum();
        assert_eq!(total, 150);
        let mut seen = std::collections::HashSet::new();
        for c in &comms {
            for v in c {
                assert!(seen.insert(*v));
            }
        }
    }

    #[test]
    fn recovers_strong_planted_structure() {
        let mut rng = StdRng::seed_from_u64(7);
        let pp = planted_partition(120, 4, 0.6, 0.002, &mut rng);
        let comms = label_propagation(&pp.graph, 2, 30);
        // With this separation LP finds close to the planted count.
        assert!((2..=8).contains(&comms.len()), "found {}", comms.len());
        let q = crate::modularity::modularity(&pp.graph, &comms);
        assert!(q > 0.4, "modularity {q}");
    }

    #[test]
    fn isolated_nodes_keep_own_label() {
        let g = GraphBuilder::new(3).build().unwrap();
        let comms = label_propagation(&g, 0, 10);
        assert_eq!(comms.len(), 3);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng = StdRng::seed_from_u64(9);
        let pp = planted_partition(80, 4, 0.4, 0.01, &mut rng);
        assert_eq!(
            label_propagation(&pp.graph, 11, 20),
            label_propagation(&pp.graph, 11, 20)
        );
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(label_propagation(&g, 0, 5).is_empty());
    }
}
