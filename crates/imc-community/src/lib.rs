//! Community model and detection for the `imc` workspace.
//!
//! The IMC problem takes a collection of **disjoint communities**, each with
//! an activation threshold `h_i` and a benefit `b_i`. This crate provides:
//!
//! * [`CommunitySet`] — the validated collection (disjointness, in-range
//!   membership, positive thresholds) plus the derived quantities the IMC
//!   algorithms need (`b = Σ b_i`, `h = max h_i`, `β = min b_i`).
//! * [`CommunitySetBuilder`] — fluent construction: detect with
//!   [`louvain`](louvain::louvain), assign randomly
//!   ([`random_partition`](random_partition::random_partition)), or supply
//!   explicit groups; then split oversized communities (the paper's `s`
//!   cap), and apply [`ThresholdPolicy`] / [`BenefitPolicy`].
//! * [`louvain`] — a full multi-level Louvain modularity optimizer.
//! * [`modularity`] — partition quality measure.
//!
//! ```
//! use imc_community::{BenefitPolicy, CommunitySet, ThresholdPolicy};
//! use imc_graph::{generators::planted_partition, WeightModel};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(3);
//! let pp = planted_partition(60, 4, 0.4, 0.01, &mut rng);
//! let g = pp.graph.reweighted(WeightModel::WeightedCascade);
//! let cs = CommunitySet::builder(&g)
//!     .louvain(42)
//!     .split_larger_than(8)
//!     .threshold(ThresholdPolicy::Fraction(0.5))
//!     .benefit(BenefitPolicy::Population)
//!     .build()?;
//! assert!(cs.len() >= 4);
//! assert!(cs.max_threshold() >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benefit;
mod builder;
mod community;
mod error;
mod threshold;

pub mod label_propagation;
pub mod louvain;
pub mod metrics;
pub mod modularity;
pub mod random_partition;
pub mod split;

pub use benefit::BenefitPolicy;
pub use builder::CommunitySetBuilder;
pub use community::{Community, CommunityId, CommunitySet};
pub use error::CommunityError;
pub use threshold::ThresholdPolicy;

/// Convenience result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, CommunityError>;
