use crate::louvain::louvain;
use crate::random_partition::random_partition;
use crate::split::split_larger_than;
use crate::{BenefitPolicy, CommunityError, CommunitySet, Result, ThresholdPolicy};
use imc_graph::{Graph, NodeId};

/// Where the node partition comes from.
#[derive(Debug, Clone)]
enum PartitionSource {
    Louvain { seed: u64 },
    LabelPropagation { seed: u64 },
    Random { count: u32, seed: u64 },
    Explicit(Vec<Vec<NodeId>>),
}

/// Fluent constructor for [`CommunitySet`], mirroring the paper's §VI.A
/// pipeline: *form communities* (Louvain or Random) → *cap size by `s`* →
/// *assign thresholds and benefits*.
///
/// ```
/// use imc_community::{BenefitPolicy, CommunitySet, ThresholdPolicy};
/// use imc_graph::generators::watts_strogatz;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let g = watts_strogatz(60, 3, 0.1, &mut rng);
/// let cs = CommunitySet::builder(&g)
///     .random(6, 9)
///     .split_larger_than(8)
///     .threshold(ThresholdPolicy::Constant(2))
///     .benefit(BenefitPolicy::Population)
///     .build()?;
/// assert!(cs.iter().all(|c| c.population() <= 8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CommunitySetBuilder<'g> {
    graph: &'g Graph,
    source: Option<PartitionSource>,
    size_cap: Option<usize>,
    threshold: ThresholdPolicy,
    benefit: BenefitPolicy,
}

impl<'g> CommunitySetBuilder<'g> {
    pub(crate) fn new(graph: &'g Graph) -> Self {
        CommunitySetBuilder {
            graph,
            source: None,
            size_cap: None,
            threshold: ThresholdPolicy::default(),
            benefit: BenefitPolicy::default(),
        }
    }

    /// Detect communities with Louvain modularity optimization.
    pub fn louvain(mut self, seed: u64) -> Self {
        self.source = Some(PartitionSource::Louvain { seed });
        self
    }

    /// Detect communities with asynchronous label propagation (faster,
    /// lower quality than Louvain).
    pub fn label_propagation(mut self, seed: u64) -> Self {
        self.source = Some(PartitionSource::LabelPropagation { seed });
        self
    }

    /// Assign nodes uniformly at random into `count` communities (the
    /// paper's Random baseline).
    pub fn random(mut self, count: u32, seed: u64) -> Self {
        self.source = Some(PartitionSource::Random { count, seed });
        self
    }

    /// Use an explicit partition (e.g. ground-truth blocks from a
    /// generator).
    pub fn explicit(mut self, communities: Vec<Vec<NodeId>>) -> Self {
        self.source = Some(PartitionSource::Explicit(communities));
        self
    }

    /// Cap community sizes at `s`, splitting larger ones into `⌈|C|/s⌉`
    /// chunks (paper parameter `s`, default: no cap).
    pub fn split_larger_than(mut self, s: usize) -> Self {
        self.size_cap = Some(s);
        self
    }

    /// Threshold policy (default: the paper's bounded case `h_i = 2`).
    pub fn threshold(mut self, policy: ThresholdPolicy) -> Self {
        self.threshold = policy;
        self
    }

    /// Benefit policy (default: the paper's `b_i = |C_i|`).
    pub fn benefit(mut self, policy: BenefitPolicy) -> Self {
        self.benefit = policy;
        self
    }

    /// Materializes the [`CommunitySet`].
    ///
    /// # Errors
    ///
    /// [`CommunityError::NoPartitionSource`] when neither
    /// [`louvain`](Self::louvain), [`random`](Self::random) nor
    /// [`explicit`](Self::explicit) was called; otherwise any validation
    /// error from [`CommunitySet::from_parts`] or the policies.
    pub fn build(self) -> Result<CommunitySet> {
        let partition = match self.source {
            None => return Err(CommunityError::NoPartitionSource),
            Some(PartitionSource::Louvain { seed }) => louvain(self.graph, seed),
            Some(PartitionSource::LabelPropagation { seed }) => {
                crate::label_propagation::label_propagation(self.graph, seed, 20)
            }
            Some(PartitionSource::Random { count, seed }) => {
                random_partition(self.graph.node_count() as u32, count, seed)
            }
            Some(PartitionSource::Explicit(parts)) => parts,
        };
        let partition = match self.size_cap {
            Some(cap) => split_larger_than(partition, cap),
            None => partition,
        };
        let mut parts = Vec::with_capacity(partition.len());
        for members in partition {
            let population = members.len();
            let h = self.threshold.threshold_for(population)?;
            let b = self.benefit.benefit_for(population)?;
            parts.push((members, h, b));
        }
        CommunitySet::from_parts(self.graph.node_count() as u32, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_graph::generators::planted_partition;
    use imc_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_graph() -> Graph {
        let mut rng = StdRng::seed_from_u64(1);
        planted_partition(40, 4, 0.5, 0.02, &mut rng).graph
    }

    #[test]
    fn requires_a_source() {
        let g = toy_graph();
        assert!(matches!(
            CommunitySet::builder(&g).build(),
            Err(CommunityError::NoPartitionSource)
        ));
    }

    #[test]
    fn louvain_pipeline_covers_all_nodes() {
        let g = toy_graph();
        let cs = CommunitySet::builder(&g).louvain(7).build().unwrap();
        assert_eq!(cs.covered_nodes(), g.node_count());
    }

    #[test]
    fn random_pipeline_with_cap_and_policies() {
        let g = toy_graph();
        let cs = CommunitySet::builder(&g)
            .random(5, 11)
            .split_larger_than(4)
            .threshold(ThresholdPolicy::Fraction(0.5))
            .benefit(BenefitPolicy::Population)
            .build()
            .unwrap();
        for c in cs.iter() {
            assert!(c.population() <= 4);
            assert_eq!(c.threshold, ((c.population() as f64) / 2.0).ceil() as u32);
            assert_eq!(c.benefit, c.population() as f64);
        }
    }

    #[test]
    fn explicit_partition_used_verbatim() {
        let g = GraphBuilder::new(4).build().unwrap();
        let cs = CommunitySet::builder(&g)
            .explicit(vec![vec![0.into(), 1.into()], vec![2.into()]])
            .threshold(ThresholdPolicy::Constant(1))
            .benefit(BenefitPolicy::Uniform(1.0))
            .build()
            .unwrap();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.community_of(3.into()), None);
    }

    #[test]
    fn builder_propagates_policy_errors() {
        let g = GraphBuilder::new(4).build().unwrap();
        let res = CommunitySet::builder(&g)
            .explicit(vec![vec![0.into()]])
            .threshold(ThresholdPolicy::Fraction(2.0))
            .build();
        assert!(matches!(res, Err(CommunityError::InvalidFraction { .. })));
    }

    #[test]
    fn label_propagation_pipeline_covers_all_nodes() {
        let g = toy_graph();
        let cs = CommunitySet::builder(&g)
            .label_propagation(3)
            .build()
            .unwrap();
        assert_eq!(cs.covered_nodes(), g.node_count());
        assert!(cs.len() >= 2);
    }

    #[test]
    fn default_policies_are_paper_defaults() {
        let g = toy_graph();
        let cs = CommunitySet::builder(&g).random(8, 2).build().unwrap();
        for c in cs.iter() {
            assert_eq!(c.threshold, 2);
            assert_eq!(c.benefit, c.population() as f64);
        }
    }
}
