use std::fmt;

/// Errors from community construction and validation.
#[derive(Debug, Clone, PartialEq)]
pub enum CommunityError {
    /// A node appears in two communities (communities must be disjoint).
    OverlappingNode {
        /// The raw node id found twice.
        node: u32,
    },
    /// A community member is outside the graph's node range.
    NodeOutOfRange {
        /// The raw offending node id.
        node: u32,
        /// Graph node count.
        node_count: u32,
    },
    /// A community with no members was supplied.
    EmptyCommunity {
        /// Index of the empty community in the input order.
        index: usize,
    },
    /// A threshold of zero (a community trivially influenced by any seed
    /// set, including the empty one) was produced or supplied.
    ZeroThreshold {
        /// Index of the offending community.
        index: usize,
    },
    /// A non-positive or non-finite benefit was produced or supplied.
    InvalidBenefit {
        /// Index of the offending community.
        index: usize,
        /// The offending benefit.
        benefit: f64,
    },
    /// A fractional threshold policy outside `(0, 1]`.
    InvalidFraction {
        /// The offending fraction.
        fraction: f64,
    },
    /// The builder was asked to build without any partition source.
    NoPartitionSource,
}

impl fmt::Display for CommunityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommunityError::OverlappingNode { node } => {
                write!(f, "node {node} belongs to more than one community")
            }
            CommunityError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "community member {node} out of range for graph with {node_count} nodes"
                )
            }
            CommunityError::EmptyCommunity { index } => {
                write!(f, "community #{index} has no members")
            }
            CommunityError::ZeroThreshold { index } => {
                write!(f, "community #{index} has a zero activation threshold")
            }
            CommunityError::InvalidBenefit { index, benefit } => {
                write!(f, "community #{index} has invalid benefit {benefit}")
            }
            CommunityError::InvalidFraction { fraction } => {
                write!(f, "threshold fraction {fraction} must be in (0, 1]")
            }
            CommunityError::NoPartitionSource => {
                write!(f, "no partition source configured on the builder")
            }
        }
    }
}

impl std::error::Error for CommunityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        assert!(CommunityError::OverlappingNode { node: 3 }
            .to_string()
            .contains('3'));
        assert!(CommunityError::EmptyCommunity { index: 2 }
            .to_string()
            .contains('2'));
        assert!(CommunityError::InvalidFraction { fraction: 1.5 }
            .to_string()
            .contains("1.5"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CommunityError>();
    }
}
