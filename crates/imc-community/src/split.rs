//! Community size capping, the paper's `s` parameter.
//!
//! "To prevent cases in which some communities are significantly larger
//! than the others, we limited the community size by a certain value `s`.
//! If a community `C` was larger than `s`, we split it into `⌈|C|/s⌉`
//! communities" (§VI.A). Splitting is deterministic: members are taken in
//! sorted order and cut into near-equal chunks, so the resulting sizes are
//! as balanced as possible while every chunk stays `≤ s`.

use imc_graph::NodeId;

/// Splits any community larger than `cap` into `⌈|C|/cap⌉` near-equal
/// chunks. Order of the output follows the input, with chunks of a split
/// community adjacent.
///
/// # Panics
///
/// Panics if `cap == 0`.
///
/// ```
/// use imc_community::split::split_larger_than;
/// use imc_graph::NodeId;
/// let big: Vec<NodeId> = (0..10u32).map(NodeId::new).collect();
/// let parts = split_larger_than(vec![big], 4);
/// assert_eq!(parts.len(), 3); // ceil(10/4)
/// assert!(parts.iter().all(|p| p.len() <= 4));
/// ```
pub fn split_larger_than(communities: Vec<Vec<NodeId>>, cap: usize) -> Vec<Vec<NodeId>> {
    assert!(cap > 0, "size cap must be positive");
    let mut out = Vec::with_capacity(communities.len());
    for mut members in communities {
        if members.len() <= cap {
            out.push(members);
            continue;
        }
        members.sort();
        let chunks = members.len().div_ceil(cap);
        let base = members.len() / chunks;
        let extra = members.len() % chunks;
        let mut pos = 0usize;
        for i in 0..chunks {
            let size = base + usize::from(i < extra);
            out.push(members[pos..pos + size].to_vec());
            pos += size;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u32>) -> Vec<NodeId> {
        range.map(NodeId::new).collect()
    }

    #[test]
    fn small_communities_untouched() {
        let input = vec![ids(0..3), ids(3..8)];
        let out = split_larger_than(input.clone(), 8);
        assert_eq!(out, input);
    }

    #[test]
    fn exact_cap_untouched() {
        let out = split_larger_than(vec![ids(0..8)], 8);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn split_count_matches_paper_formula() {
        for size in [9usize, 16, 17, 31, 100] {
            let cap = 8usize;
            let out = split_larger_than(vec![ids(0..size as u32)], cap);
            assert_eq!(out.len(), size.div_ceil(cap), "size {size}");
            assert!(out.iter().all(|p| p.len() <= cap));
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let out = split_larger_than(vec![ids(0..10)], 4);
        let sizes: Vec<usize> = out.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn members_preserved() {
        let out = split_larger_than(vec![ids(0..23)], 5);
        let mut all: Vec<NodeId> = out.into_iter().flatten().collect();
        all.sort();
        assert_eq!(all, ids(0..23));
    }

    #[test]
    fn cap_one_gives_singletons() {
        let out = split_larger_than(vec![ids(0..5)], 1);
        assert_eq!(out.len(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cap_panics() {
        let _ = split_larger_than(vec![ids(0..3)], 0);
    }
}
