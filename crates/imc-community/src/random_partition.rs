//! Random community assignment — the paper's baseline community formation.
//!
//! "In the Random algorithm, we fix the number of communities and randomly
//! put nodes into communities" (§VI.A). Implemented as a seeded shuffle
//! followed by near-equal slicing, so every community is non-empty whenever
//! `n ≥ r`.

use imc_graph::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Randomly partitions nodes `0..n` into `r` communities of near-equal
/// size. Each community is sorted; communities are ordered by smallest
/// member. When `n < r` only `n` singleton communities are returned.
///
/// # Panics
///
/// Panics if `r == 0` while `n > 0`.
///
/// ```
/// use imc_community::random_partition::random_partition;
/// let parts = random_partition(10, 3, 42);
/// assert_eq!(parts.len(), 3);
/// let total: usize = parts.iter().map(|p| p.len()).sum();
/// assert_eq!(total, 10);
/// ```
pub fn random_partition(n: u32, r: u32, seed: u64) -> Vec<Vec<NodeId>> {
    if n == 0 {
        return Vec::new();
    }
    assert!(r > 0, "need at least one community");
    let r = r.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<u32> = (0..n).collect();
    nodes.shuffle(&mut rng);
    // Distribute sizes as evenly as possible: first (n % r) parts get one
    // extra member.
    let base = (n / r) as usize;
    let extra = (n % r) as usize;
    let mut parts: Vec<Vec<NodeId>> = Vec::with_capacity(r as usize);
    let mut pos = 0usize;
    for i in 0..r as usize {
        let size = base + usize::from(i < extra);
        let mut members: Vec<NodeId> = nodes[pos..pos + size]
            .iter()
            .map(|&v| NodeId::new(v))
            .collect();
        members.sort();
        parts.push(members);
        pos += size;
    }
    parts.sort_by_key(|p| p[0]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_all_nodes_disjointly() {
        let parts = random_partition(100, 7, 1);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 100);
        let mut seen = std::collections::HashSet::new();
        for p in &parts {
            for v in p {
                assert!(seen.insert(*v));
            }
        }
    }

    #[test]
    fn sizes_are_balanced() {
        let parts = random_partition(10, 3, 5);
        let mut sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        sizes.sort();
        assert_eq!(sizes, vec![3, 3, 4]);
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(random_partition(50, 5, 9), random_partition(50, 5, 9));
    }

    #[test]
    fn different_seeds_differ() {
        // Overwhelmingly likely for n=50.
        assert_ne!(random_partition(50, 5, 1), random_partition(50, 5, 2));
    }

    #[test]
    fn more_communities_than_nodes_clamps() {
        let parts = random_partition(3, 10, 0);
        assert_eq!(parts.len(), 3);
        for p in parts {
            assert_eq!(p.len(), 1);
        }
    }

    #[test]
    fn zero_nodes_empty() {
        assert!(random_partition(0, 5, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one community")]
    fn zero_communities_panics() {
        let _ = random_partition(5, 0, 0);
    }
}
