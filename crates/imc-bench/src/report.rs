//! Plain-text table and CSV reporting for the experiment harness.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rectangular result table with a title, column headers, and rows of
/// strings. Renders aligned text for stdout and CSV for files.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table/experiment title (also the CSV file stem).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:>w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells containing commas/quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the text rendering to stdout and, when `out_dir` is set,
    /// writes `<out_dir>/<slug(title)>.csv`.
    ///
    /// # Errors
    ///
    /// I/O errors from writing the CSV file.
    pub fn emit(&self, out_dir: Option<&Path>) -> io::Result<()> {
        println!("{}", self.to_text());
        if let Some(dir) = out_dir {
            std::fs::create_dir_all(dir)?;
            let slug: String = self
                .title
                .to_lowercase()
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '-' })
                .collect();
            let slug = slug.trim_matches('-').replace("--", "-");
            std::fs::write(dir.join(format!("{slug}.csv")), self.to_csv())?;
        }
        Ok(())
    }
}

/// Formats a float with sensible experiment precision.
pub fn fmt_f(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a duration as fractional seconds.
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_aligns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "22".into()]);
        let text = t.to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("long-name"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn csv_escapes_specials() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["with,comma".into(), "with\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn emit_writes_csv() {
        let dir = std::env::temp_dir().join(format!("imc-bench-{}", std::process::id()));
        let mut t = Table::new("Fig 9 (demo)", &["a"]);
        t.push_row(vec!["1".into()]);
        t.emit(Some(&dir)).unwrap();
        let written = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(written, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_f(42.25), "42.2");
        assert_eq!(fmt_f(1.23456), "1.235");
    }
}
