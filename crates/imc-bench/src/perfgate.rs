//! `imc-bench perf-gate` — the performance regression gate.
//!
//! Compares freshly generated `BENCH_ric.json` / `BENCH_solver.json` /
//! `BENCH_service.json` against the committed baselines at the
//! repository root, with schema-aware tolerances:
//!
//! * `seeds_identical: false` in a candidate solver **or RIC** record
//!   **always** fails the gate — determinism regressions are never
//!   tolerable. The same holds for the cluster artifact's
//!   `seeds_identical` / `evaluations_identical` / `eval_roundtrip`
//!   flags (on *either* side: a broken committed baseline also fails).
//! * `BENCH_service.json` is optional on the candidate side only —
//!   `--quick` CI runs regenerate just the solver/RIC files, so a
//!   missing cluster candidate earns a note, never a failure.
//! * Wall-time rows are compared only between *matching workloads*
//!   (same dataset, sample count, `k`, and — for the solver table —
//!   the same `(strategy, threads)` pair). A quick-mode candidate
//!   measured against the committed full-mode baseline skips the
//!   wall-time rows with a note instead of comparing apples to oranges;
//!   this is what keeps the `--quick` CI job non-flaky.
//! * A matched wall-time row fails when the candidate is more than
//!   `tolerance` (default 25%) slower than the baseline. The snapshot
//!   codec rows (v2 parse / v3 parse / v3 view) additionally get 50ms
//!   of absolute slack: they are single-shot, millisecond-scale
//!   timings, and a real regression there is orders of magnitude.
//! * Evaluation counts and memory sizes are reported in the trend table
//!   but never fail the gate on their own: they change legitimately when
//!   the engine changes, and the wall clock is the quantity the gate
//!   protects.
//!
//! The gate prints a trend table (`baseline → candidate → ratio →
//! status` per metric) and exits nonzero on any failure. `--report FILE`
//! additionally writes the table plus verdict to a file CI can archive.

use imc_service::json::{self, Value};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Solver schema this gate understands.
pub const SOLVER_SCHEMA: &str = "imc-bench/solver/v1";
/// RIC schema this gate understands.
pub const RIC_SCHEMA: &str = "imc-bench/ric/v2";
/// Cluster service schema this gate understands (`BENCH_service.json`,
/// written by the `cluster-runner` binary in `imc-cluster`).
pub const SERVICE_SCHEMA: &str = "imc-bench/service/v1";

/// Gate configuration (see module docs).
#[derive(Debug, Clone)]
pub struct GateOptions {
    /// Directory holding the baseline `BENCH_*.json` (the repo root in
    /// CI).
    pub baseline_dir: PathBuf,
    /// Directory holding the candidate `BENCH_*.json` from a fresh run.
    pub candidate_dir: PathBuf,
    /// Maximum tolerated wall-time regression as a fraction (0.25 =
    /// fail when a candidate row is >25% slower than baseline).
    pub tolerance: f64,
    /// Optional report file for CI artifacts.
    pub report_path: Option<PathBuf>,
}

impl Default for GateOptions {
    fn default() -> Self {
        GateOptions {
            baseline_dir: PathBuf::from("."),
            candidate_dir: PathBuf::from("."),
            tolerance: 0.25,
            report_path: None,
        }
    }
}

/// The gate's verdict plus the rendered report.
#[derive(Debug)]
pub struct GateOutcome {
    /// `true` when no check failed.
    pub passed: bool,
    /// Human-readable trend table, notes and verdict.
    pub report: String,
}

/// One trend-table row.
struct TrendRow {
    metric: String,
    baseline: String,
    candidate: String,
    ratio: Option<f64>,
    status: &'static str,
}

/// Accumulates rows, notes and failures across both bench files.
#[derive(Default)]
struct Gate {
    rows: Vec<TrendRow>,
    notes: Vec<String>,
    failures: Vec<String>,
}

impl Gate {
    fn fail(&mut self, message: impl Into<String>) {
        self.failures.push(message.into());
    }

    fn note(&mut self, message: impl Into<String>) {
        self.notes.push(message.into());
    }

    /// Adds one compared wall-time row, failing the gate when the
    /// candidate regressed past `tolerance`.
    fn compare_seconds(&mut self, metric: &str, baseline: f64, candidate: f64, tolerance: f64) {
        self.compare_seconds_with_slack(metric, baseline, candidate, tolerance, 0.0);
    }

    /// Like [`compare_seconds`](Self::compare_seconds) but with an
    /// absolute slack added to the allowance: the row fails only when
    /// `candidate > baseline * (1 + tolerance) + slack`. Millisecond-scale
    /// single-shot timings (snapshot parse/view) need this — a 2µs→5µs
    /// scheduler hiccup is a 2.5x ratio but not a regression.
    fn compare_seconds_with_slack(
        &mut self,
        metric: &str,
        baseline: f64,
        candidate: f64,
        tolerance: f64,
        slack: f64,
    ) {
        let ratio = if baseline > 0.0 {
            candidate / baseline
        } else {
            f64::INFINITY
        };
        let regressed = candidate > baseline * (1.0 + tolerance) + slack;
        if regressed {
            self.fail(format!(
                "{metric}: {candidate:.6}s is {ratio:.2}x the baseline {baseline:.6}s \
                 (tolerance {:.0}%)",
                tolerance * 100.0
            ));
        }
        self.rows.push(TrendRow {
            metric: metric.to_string(),
            baseline: format!("{baseline:.6}s"),
            candidate: format!("{candidate:.6}s"),
            ratio: Some(ratio),
            status: if regressed { "FAIL" } else { "ok" },
        });
    }

    /// Adds an informational (never-failing) row.
    fn info_row(&mut self, metric: &str, baseline: String, candidate: String, ratio: Option<f64>) {
        self.rows.push(TrendRow {
            metric: metric.to_string(),
            baseline,
            candidate,
            ratio,
            status: "info",
        });
    }

    fn render(&self, passed: bool) -> String {
        let mut out = String::from("perf-gate trend table\n");
        let width = self
            .rows
            .iter()
            .map(|r| r.metric.len())
            .max()
            .unwrap_or(6)
            .max("metric".len());
        let _ = writeln!(
            out,
            "{:width$}  {:>14}  {:>14}  {:>7}  status",
            "metric", "baseline", "candidate", "ratio"
        );
        for row in &self.rows {
            let ratio = row
                .ratio
                .map_or_else(|| "-".to_string(), |r| format!("{r:.2}x"));
            let _ = writeln!(
                out,
                "{:width$}  {:>14}  {:>14}  {:>7}  {}",
                row.metric, row.baseline, row.candidate, ratio, row.status
            );
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        for failure in &self.failures {
            let _ = writeln!(out, "FAIL: {failure}");
        }
        let _ = writeln!(out, "verdict: {}", if passed { "PASS" } else { "FAIL" });
        out
    }
}

fn load(path: &Path) -> io::Result<Value> {
    let text = std::fs::read_to_string(path)?;
    json::parse(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

fn str_field(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(|f| f.as_str()).map(String::from)
}

fn f64_field(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn u64_field(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_u64)
}

/// Checks both files carry the expected schema tag; a mismatch means the
/// formats drifted and every other comparison would be meaningless.
fn check_schema(gate: &mut Gate, file: &str, expected: &str, base: &Value, cand: &Value) -> bool {
    let mut ok = true;
    for (side, v) in [("baseline", base), ("candidate", cand)] {
        let got = str_field(v, "schema").unwrap_or_default();
        if got != expected {
            gate.fail(format!(
                "{file}: {side} schema is `{got}`, gate understands `{expected}`"
            ));
            ok = false;
        }
    }
    ok
}

/// Gates the solver table (`BENCH_solver.json`).
fn gate_solver(gate: &mut Gate, base: &Value, cand: &Value, tolerance: f64) {
    if !check_schema(gate, "BENCH_solver.json", SOLVER_SCHEMA, base, cand) {
        return;
    }
    // Determinism is workload-independent: a fresh quick run proving
    // seeds differ across strategies fails the gate outright.
    match cand.get("seeds_identical").and_then(Value::as_bool) {
        Some(true) => {}
        Some(false) => gate.fail(
            "BENCH_solver.json: candidate reports seeds_identical=false — \
             strategies no longer agree on the seed set",
        ),
        None => gate.fail("BENCH_solver.json: candidate is missing `seeds_identical`"),
    }
    let workload = |v: &Value| {
        (
            str_field(v, "dataset").unwrap_or_default(),
            str_field(v, "objective").unwrap_or_default(),
            u64_field(v, "samples").unwrap_or(0),
            u64_field(v, "k").unwrap_or(0),
        )
    };
    let (bw, cw) = (workload(base), workload(cand));
    if bw != cw {
        gate.note(format!(
            "BENCH_solver.json: workloads differ (baseline {}/{} samples={} k={}, \
             candidate {}/{} samples={} k={}); wall-time rows skipped",
            bw.0, bw.1, bw.2, bw.3, cw.0, cw.1, cw.2, cw.3
        ));
        return;
    }
    let rows = |v: &Value| -> Vec<(String, u64, f64, u64)> {
        v.get("strategies")
            .and_then(Value::as_array)
            .map(|arr| {
                arr.iter()
                    .filter_map(|row| {
                        Some((
                            str_field(row, "strategy")?,
                            u64_field(row, "threads")?,
                            f64_field(row, "seconds")?,
                            u64_field(row, "evaluations")?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let base_rows = rows(base);
    let cand_rows = rows(cand);
    for (strategy, threads, base_secs, base_evals) in &base_rows {
        let Some((_, _, cand_secs, cand_evals)) = cand_rows
            .iter()
            .find(|(s, t, _, _)| s == strategy && t == threads)
        else {
            gate.fail(format!(
                "BENCH_solver.json: candidate lost the `{strategy}` t{threads} row"
            ));
            continue;
        };
        let metric = format!("solver {strategy} t{threads}");
        gate.compare_seconds(&metric, *base_secs, *cand_secs, tolerance);
        if cand_evals != base_evals {
            gate.info_row(
                &format!("{metric} evaluations"),
                base_evals.to_string(),
                cand_evals.to_string(),
                Some(*cand_evals as f64 / (*base_evals).max(1) as f64),
            );
        }
    }
}

/// Gates the RIC microbenchmarks (`BENCH_ric.json`).
fn gate_ric(gate: &mut Gate, base: &Value, cand: &Value, tolerance: f64) {
    if !check_schema(gate, "BENCH_ric.json", RIC_SCHEMA, base, cand) {
        return;
    }
    // Determinism is workload-independent: the store, a decoded v3
    // snapshot, and the zero-copy view must all drive the solver to the
    // same seed set, even on a quick run.
    match cand.get("seeds_identical").and_then(Value::as_bool) {
        Some(true) => {}
        Some(false) => gate.fail(
            "BENCH_ric.json: candidate reports seeds_identical=false — \
             snapshot paths no longer reproduce the store's seed set",
        ),
        None => gate.fail("BENCH_ric.json: candidate is missing `seeds_identical`"),
    }
    let eval_workload = |v: &Value| {
        let e = v.get("evaluation");
        (
            str_field(v, "dataset").unwrap_or_default(),
            u64_field(v, "samples").unwrap_or(0),
            e.and_then(|e| u64_field(e, "seed_sets")).unwrap_or(0),
            e.and_then(|e| u64_field(e, "seeds_per_set")).unwrap_or(0),
        )
    };
    let (bw, cw) = (eval_workload(base), eval_workload(cand));
    if bw != cw {
        gate.note(format!(
            "BENCH_ric.json: workloads differ (baseline {} samples={} sets={}x{}, \
             candidate {} samples={} sets={}x{}); wall-time rows skipped",
            bw.0, bw.1, bw.2, bw.3, cw.0, cw.1, cw.2, cw.3
        ));
        return;
    }
    let nested_f64 = |v: &Value, path: &[&str]| -> Option<f64> {
        let mut cur = v;
        for key in &path[..path.len() - 1] {
            cur = cur.get(key)?;
        }
        f64_field(cur, path[path.len() - 1])
    };
    for (metric, path) in [
        ("ric generation", &["generation", "seconds"] as &[&str]),
        ("ric eval legacy", &["evaluation", "legacy", "seconds"]),
        ("ric eval store", &["evaluation", "store", "seconds"]),
        ("ric eval kernel", &["evaluation", "kernel", "seconds"]),
    ] {
        match (nested_f64(base, path), nested_f64(cand, path)) {
            (Some(b), Some(c)) => gate.compare_seconds(metric, b, c, tolerance),
            _ => gate.fail(format!("BENCH_ric.json: `{}` missing", path.join("."))),
        }
    }
    // Snapshot codec wall times: single-shot and millisecond-scale, so
    // the ratio check gets 50ms of absolute slack on top of the usual
    // tolerance. A real regression (index rebuild sneaking back into the
    // v3 path, validation going quadratic) is orders of magnitude, not
    // milliseconds.
    for (metric, path) in [
        (
            "ric snapshot v2 parse",
            &["snapshot", "v2_parse_seconds"] as &[&str],
        ),
        ("ric snapshot v3 parse", &["snapshot", "v3_parse_seconds"]),
        ("ric snapshot v3 view", &["snapshot", "v3_view_seconds"]),
    ] {
        match (nested_f64(base, path), nested_f64(cand, path)) {
            (Some(b), Some(c)) => {
                gate.compare_seconds_with_slack(metric, b, c, tolerance, 0.050);
            }
            _ => gate.fail(format!("BENCH_ric.json: `{}` missing", path.join("."))),
        }
    }
    let arena = |v: &Value| {
        v.get("memory")
            .and_then(|m| u64_field(m, "arena_bytes"))
            .unwrap_or(0)
    };
    let (ba, ca) = (arena(base), arena(cand));
    if ba != ca {
        gate.info_row(
            "ric arena_bytes",
            ba.to_string(),
            ca.to_string(),
            Some(ca as f64 / ba.max(1) as f64),
        );
    }
}

/// Validates one side's determinism flags; any `false` (or a missing
/// flag) is a hard failure — distributed/single-node divergence is
/// never a tolerable regression.
fn service_flags(gate: &mut Gate, side: &str, v: &Value) {
    for flag in ["seeds_identical", "evaluations_identical", "eval_roundtrip"] {
        match v.get(flag).and_then(Value::as_bool) {
            Some(true) => {}
            Some(false) => gate.fail(format!(
                "BENCH_service.json: {side} reports {flag}=false — the cluster \
                 no longer matches the single-node solver"
            )),
            None => gate.fail(format!("BENCH_service.json: {side} is missing `{flag}`")),
        }
    }
}

/// Gates the cluster artifact (`BENCH_service.json`).
///
/// The committed baseline is always validated. The candidate is
/// optional: the `--quick` CI path regenerates only the solver/RIC
/// files, so its absence earns a note, not a failure. When present it
/// must carry the right schema and clean determinism flags, and its
/// solve wall time is compared on matching workloads.
fn gate_service(gate: &mut Gate, base: &Value, cand: Option<&Value>, tolerance: f64) {
    let schema_ok = |gate: &mut Gate, side: &str, v: &Value| -> bool {
        let got = str_field(v, "schema").unwrap_or_default();
        if got != SERVICE_SCHEMA {
            gate.fail(format!(
                "BENCH_service.json: {side} schema is `{got}`, gate understands `{SERVICE_SCHEMA}`"
            ));
        }
        got == SERVICE_SCHEMA
    };
    if !schema_ok(gate, "baseline", base) {
        return;
    }
    service_flags(gate, "baseline", base);
    let Some(cand) = cand else {
        gate.note(
            "BENCH_service.json: no candidate (quick runs skip the cluster); \
             baseline validated only",
        );
        return;
    };
    if !schema_ok(gate, "candidate", cand) {
        return;
    }
    service_flags(gate, "candidate", cand);
    let workload = |v: &Value| {
        (
            str_field(v, "dataset").unwrap_or_default(),
            u64_field(v, "samples").unwrap_or(0),
            u64_field(v, "k").unwrap_or(0),
            u64_field(v, "shards").unwrap_or(0),
        )
    };
    let (bw, cw) = (workload(base), workload(cand));
    if bw != cw {
        gate.note(format!(
            "BENCH_service.json: workloads differ (baseline {} samples={} k={} shards={}, \
             candidate {} samples={} k={} shards={}); wall-time rows skipped",
            bw.0, bw.1, bw.2, bw.3, cw.0, cw.1, cw.2, cw.3
        ));
        return;
    }
    let solve_secs = |v: &Value| v.get("solve").and_then(|s| f64_field(s, "seconds"));
    match (solve_secs(base), solve_secs(cand)) {
        (Some(b), Some(c)) => gate.compare_seconds("service cluster solve", b, c, tolerance),
        _ => gate.fail("BENCH_service.json: `solve.seconds` missing"),
    }
    // Load-phase numbers trend but never fail on their own: throughput
    // and tail latency on shared CI machines are too noisy to gate.
    let load_f64 = |v: &Value, key: &str| v.get("load").and_then(|l| f64_field(l, key));
    if let (Some(b), Some(c)) = (
        load_f64(base, "throughput_rps"),
        load_f64(cand, "throughput_rps"),
    ) {
        gate.info_row(
            "service load throughput_rps",
            format!("{b:.1}"),
            format!("{c:.1}"),
            Some(c / b.max(f64::MIN_POSITIVE)),
        );
    }
    let load_u64 = |v: &Value, key: &str| v.get("load").and_then(|l| u64_field(l, key));
    if let (Some(b), Some(c)) = (load_u64(base, "p99_us"), load_u64(cand, "p99_us")) {
        gate.info_row(
            "service load p99_us",
            b.to_string(),
            c.to_string(),
            Some(c as f64 / b.max(1) as f64),
        );
    }
}

/// Runs the gate: loads both bench files from each directory, compares,
/// renders the report (optionally to `report_path`).
///
/// # Errors
///
/// I/O or JSON-parse failure on any of the four files. A *failing gate*
/// is not an error — inspect [`GateOutcome::passed`].
pub fn run(options: &GateOptions) -> io::Result<GateOutcome> {
    let mut gate = Gate::default();
    for (file, checker) in [
        (
            "BENCH_solver.json",
            gate_solver as fn(&mut Gate, &Value, &Value, f64),
        ),
        ("BENCH_ric.json", gate_ric),
    ] {
        let base = load(&options.baseline_dir.join(file))?;
        let cand = load(&options.candidate_dir.join(file))?;
        checker(&mut gate, &base, &cand, options.tolerance);
    }
    let service_base = load(&options.baseline_dir.join("BENCH_service.json"))?;
    let service_cand_path = options.candidate_dir.join("BENCH_service.json");
    let service_cand = if service_cand_path.exists() {
        Some(load(&service_cand_path)?)
    } else {
        None
    };
    gate_service(
        &mut gate,
        &service_base,
        service_cand.as_ref(),
        options.tolerance,
    );
    let passed = gate.failures.is_empty();
    let report = gate.render(passed);
    if let Some(path) = &options.report_path {
        std::fs::write(path, &report)?;
    }
    Ok(GateOutcome { passed, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The repository root holding the committed baselines.
    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("imc-perfgate-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Copies the committed baselines into `dir`, applying `edit` to the
    /// solver JSON text first.
    fn stage_candidate(dir: &Path, edit_solver: impl Fn(String) -> String) {
        let root = repo_root();
        let solver = std::fs::read_to_string(root.join("BENCH_solver.json")).unwrap();
        std::fs::write(dir.join("BENCH_solver.json"), edit_solver(solver)).unwrap();
        std::fs::copy(root.join("BENCH_ric.json"), dir.join("BENCH_ric.json")).unwrap();
    }

    #[test]
    fn committed_baselines_pass_against_themselves() {
        let options = GateOptions {
            baseline_dir: repo_root(),
            candidate_dir: repo_root(),
            ..GateOptions::default()
        };
        let outcome = run(&options).unwrap();
        assert!(outcome.passed, "{}", outcome.report);
        assert!(outcome.report.contains("verdict: PASS"));
        assert!(outcome.report.contains("solver sequential t1"));
        assert!(outcome.report.contains("ric eval store"));
    }

    /// Re-emits the committed solver baseline with every strategy's wall
    /// time multiplied by `scale` — a synthetic slowdown.
    fn scaled_solver(scale: f64) -> String {
        solver_candidate(scale, true, 0)
    }

    /// Re-emits the committed solver baseline with a wall-time `scale`,
    /// an explicit `seeds_identical` flag, and `k` shifted by `k_shift`
    /// (a nonzero shift makes the workload mismatch the baseline).
    fn solver_candidate(scale: f64, seeds_identical: bool, k_shift: u64) -> String {
        let text = std::fs::read_to_string(repo_root().join("BENCH_solver.json")).unwrap();
        let v = json::parse(&text).unwrap();
        let rows: Vec<String> = v
            .get("strategies")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|row| {
                format!(
                    r#"{{ "strategy": "{}", "threads": {}, "seconds": {}, "evaluations": {}, "speedup_vs_sequential": 1.0 }}"#,
                    row.get("strategy").unwrap().as_str().unwrap(),
                    row.get("threads").unwrap().as_u64().unwrap(),
                    row.get("seconds").unwrap().as_f64().unwrap() * scale,
                    row.get("evaluations").unwrap().as_u64().unwrap(),
                )
            })
            .collect();
        format!(
            r#"{{ "schema": "{SOLVER_SCHEMA}", "dataset": "{}", "objective": "{}",
                 "samples": {}, "k": {}, "runs_per_strategy": 3, "seeds_identical": {seeds_identical},
                 "strategies": [{}] }}"#,
            v.get("dataset").unwrap().as_str().unwrap(),
            v.get("objective").unwrap().as_str().unwrap(),
            v.get("samples").unwrap().as_u64().unwrap(),
            v.get("k").unwrap().as_u64().unwrap() + k_shift,
            rows.join(",")
        )
    }

    #[test]
    fn doubled_wall_time_fails_the_gate() {
        let dir = temp_dir("2x");
        stage_candidate(&dir, |_| scaled_solver(2.0));
        let options = GateOptions {
            baseline_dir: repo_root(),
            candidate_dir: dir.clone(),
            report_path: Some(dir.join("report.txt")),
            ..GateOptions::default()
        };
        let outcome = run(&options).unwrap();
        assert!(
            !outcome.passed,
            "2x regression must fail:\n{}",
            outcome.report
        );
        assert!(outcome.report.contains("FAIL"));
        assert!(outcome.report.contains("2.00x"));
        // The report artifact landed where CI will pick it up.
        let written = std::fs::read_to_string(dir.join("report.txt")).unwrap();
        assert_eq!(written, outcome.report);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeds_identical_false_fails_even_across_workloads() {
        let dir = temp_dir("seeds");
        // Quick-style candidate: different workload AND broken seeds.
        stage_candidate(&dir, |_| solver_candidate(1.0, false, 5));
        let options = GateOptions {
            baseline_dir: repo_root(),
            candidate_dir: dir.clone(),
            ..GateOptions::default()
        };
        let outcome = run(&options).unwrap();
        assert!(!outcome.passed);
        assert!(outcome.report.contains("seeds_identical=false"));
        // Mismatched workload skipped the wall rows with a note.
        assert!(outcome.report.contains("wall-time rows skipped"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quick_candidate_against_full_baseline_passes_with_note() {
        let dir = temp_dir("quick");
        stage_candidate(&dir, |_| solver_candidate(3.0, true, 5));
        let options = GateOptions {
            baseline_dir: repo_root(),
            candidate_dir: dir.clone(),
            ..GateOptions::default()
        };
        let outcome = run(&options).unwrap();
        assert!(outcome.passed, "{}", outcome.report);
        assert!(outcome.report.contains("wall-time rows skipped"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absent_service_candidate_passes_with_note() {
        let dir = temp_dir("svc-absent");
        // Identical solver/RIC candidates, but no BENCH_service.json.
        stage_candidate(&dir, |s| s);
        let options = GateOptions {
            baseline_dir: repo_root(),
            candidate_dir: dir.clone(),
            ..GateOptions::default()
        };
        let outcome = run(&options).unwrap();
        assert!(outcome.passed, "{}", outcome.report);
        assert!(outcome.report.contains("quick runs skip the cluster"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn service_candidate_with_broken_seed_identity_fails() {
        let dir = temp_dir("svc-seeds");
        stage_candidate(&dir, |s| s);
        let service = std::fs::read_to_string(repo_root().join("BENCH_service.json")).unwrap();
        std::fs::write(
            dir.join("BENCH_service.json"),
            service.replace("\"seeds_identical\":true", "\"seeds_identical\":false"),
        )
        .unwrap();
        let options = GateOptions {
            baseline_dir: repo_root(),
            candidate_dir: dir.clone(),
            ..GateOptions::default()
        };
        let outcome = run(&options).unwrap();
        assert!(!outcome.passed);
        assert!(outcome
            .report
            .contains("no longer matches the single-node solver"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn service_candidate_with_wrong_schema_fails() {
        let dir = temp_dir("svc-schema");
        stage_candidate(&dir, |s| s);
        let service = std::fs::read_to_string(repo_root().join("BENCH_service.json")).unwrap();
        std::fs::write(
            dir.join("BENCH_service.json"),
            service.replace(SERVICE_SCHEMA, "imc-bench/service/v0"),
        )
        .unwrap();
        let options = GateOptions {
            baseline_dir: repo_root(),
            candidate_dir: dir.clone(),
            ..GateOptions::default()
        };
        let outcome = run(&options).unwrap();
        assert!(!outcome.passed);
        assert!(outcome
            .report
            .contains("gate understands `imc-bench/service/v1`"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn within_tolerance_slowdown_passes() {
        let dir = temp_dir("tol");
        // A uniform 20% slowdown stays inside the default 25% tolerance.
        stage_candidate(&dir, |_| scaled_solver(1.2));
        let options = GateOptions {
            baseline_dir: repo_root(),
            candidate_dir: dir.clone(),
            ..GateOptions::default()
        };
        let outcome = run(&options).unwrap();
        assert!(outcome.passed, "{}", outcome.report);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
