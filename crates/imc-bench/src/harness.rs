//! Shared experiment plumbing: instance preparation, solver dispatch,
//! grading, and wall-clock measurement.

use imc_community::{BenefitPolicy, CommunitySet, ThresholdPolicy};
use imc_core::baselines::{degree_seeds, hbc_seeds, im_seeds, ks_seeds, pagerank_seeds};
use imc_core::{imcaf, ImcInstance, ImcafConfig, MaxrAlgorithm};
use imc_datasets::DatasetId;
use imc_diffusion::benefit::monte_carlo_benefit;
use imc_diffusion::dagum::dagum_benefit;
use imc_diffusion::IndependentCascade;
use imc_graph::{Graph, NodeId, WeightModel};
use std::time::{Duration, Instant};

/// Paper-wide evaluation constants (§VI.A): `ε = δ = 0.2`.
pub const EPSILON: f64 = 0.2;
/// Largest instance BT/MB run on before being reported as `timeout`
/// (see `run_method`).
pub const MB_NODE_LIMIT: usize = 5_000;
/// See [`EPSILON`].
pub const DELTA: f64 = 0.2;

/// How communities are formed (Fig. 4's x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Formation {
    /// Louvain modularity communities.
    Louvain,
    /// Random assignment with the same community count Louvain found.
    Random,
}

impl Formation {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Formation::Louvain => "louvain",
            Formation::Random => "random",
        }
    }
}

/// Every selection strategy compared in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// IMCAF + a MAXR solver.
    Imc(MaxrAlgorithm),
    /// High Beneficial Connection heuristic.
    Hbc,
    /// Knapsack heuristic.
    Ks,
    /// Classic influence maximization.
    Im,
    /// Out-degree heuristic (extension).
    Degree,
    /// PageRank heuristic (extension).
    PageRank,
}

impl Method {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Imc(a) => a.name(),
            Method::Hbc => "HBC",
            Method::Ks => "KS",
            Method::Im => "IM",
            Method::Degree => "DEG",
            Method::PageRank => "PR",
        }
    }
}

/// Builds the influence graph for a dataset at the given scale, with the
/// paper's weighted-cascade weights.
pub fn dataset_graph(id: DatasetId, scale: f64, seed: u64) -> Graph {
    let (graph, _src) =
        imc_datasets::load_or_generate(id, std::path::Path::new("data"), scale, seed)
            .expect("dataset generation cannot fail and data/ files must parse");
    graph.reweighted(WeightModel::WeightedCascade)
}

/// Builds an [`ImcInstance`] from a graph per the paper's setup.
pub fn build_instance(
    graph: &Graph,
    formation: Formation,
    size_cap: usize,
    threshold: ThresholdPolicy,
    seed: u64,
) -> ImcInstance {
    let builder = CommunitySet::builder(graph);
    let builder = match formation {
        Formation::Louvain => builder.louvain(seed),
        Formation::Random => {
            // The paper fixes the community count for Random; we match
            // Louvain's count so the comparison is size-controlled.
            let louvain_count = CommunitySet::builder(graph)
                .louvain(seed)
                .build()
                .expect("louvain partition is always valid")
                .len() as u32;
            builder.random(louvain_count.max(1), seed)
        }
    };
    let communities = builder
        .split_larger_than(size_cap)
        .threshold(threshold)
        .benefit(BenefitPolicy::Population)
        .build()
        .expect("paper policies are valid");
    ImcInstance::new(graph.clone(), communities).expect("validated above")
}

/// One measured run: the seeds, the wall-clock solve time, and whether the
/// method hit the runtime limit (mirroring the paper discarding MB on
/// Pokec).
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Chosen seeds (empty when timed out).
    pub seeds: Vec<NodeId>,
    /// Solve wall time.
    pub elapsed: Duration,
    /// `true` when the method was skipped/aborted for exceeding the limit.
    pub timed_out: bool,
}

/// Runs one method on one instance with a runtime limit.
///
/// The limit is enforced *a priori* for MB/BT by refusing instances whose
/// pivot count × sample index size predicts an excessive run (the
/// algorithms are not interruptible mid-solve); other methods run to
/// completion and report overruns post-hoc.
pub fn run_method(
    instance: &ImcInstance,
    method: Method,
    k: usize,
    seed: u64,
    max_samples: usize,
    limit: Duration,
) -> MethodRun {
    // Predictive skip for the O(|V|)-subproblem solvers: BT/MB solve one
    // subproblem per node, and per-pivot work scales with the squared
    // sample sizes — past ~1k nodes a full IMCAF wrap blows any sane
    // limit on one core. This mirrors the paper discarding MB on its
    // largest networks for exceeding the runtime limit (Fig. 6b, Fig. 7a).
    if let Method::Imc(algo) = method {
        if matches!(
            algo,
            MaxrAlgorithm::Bt | MaxrAlgorithm::Mb | MaxrAlgorithm::Btd(_)
        ) && instance.node_count() > MB_NODE_LIMIT
        {
            return MethodRun {
                seeds: Vec::new(),
                elapsed: limit,
                timed_out: true,
            };
        }
    }
    let start = Instant::now();
    let seeds = match method {
        Method::Imc(algo) => {
            let cfg = ImcafConfig {
                k,
                epsilon: EPSILON,
                delta: DELTA,
                max_samples,
                strategy: imc_core::SolveStrategy::Lazy,
            };
            match imcaf(instance, algo, &cfg, seed) {
                Ok(res) => res.seeds,
                Err(e) => panic!("IMCAF({}) failed: {e}", algo.name()),
            }
        }
        Method::Hbc => hbc_seeds(instance.graph(), instance.communities(), k),
        Method::Ks => ks_seeds(instance.graph(), instance.communities(), k),
        Method::Im => im_seeds(instance.graph(), k, seed),
        Method::Degree => degree_seeds(instance.graph(), k),
        Method::PageRank => pagerank_seeds(instance.graph(), k),
    };
    let elapsed = start.elapsed();
    MethodRun {
        seeds,
        elapsed,
        timed_out: elapsed > limit,
    }
}

/// Grades a seed set the way the paper does: the Dagum estimator with the
/// same `ε`, `δ`, falling back to plain Monte-Carlo when the benefit is too
/// small for the stopping rule to certify within `budget` simulations.
pub fn grade(instance: &ImcInstance, seeds: &[NodeId], seed: u64, budget: u64) -> f64 {
    if seeds.is_empty() {
        return 0.0;
    }
    match dagum_benefit(
        instance.graph(),
        instance.communities(),
        &IndependentCascade,
        seeds,
        EPSILON,
        DELTA,
        budget,
        seed,
    ) {
        Ok(v) => v,
        Err(_) => monte_carlo_benefit(
            instance.graph(),
            instance.communities(),
            &IndependentCascade,
            seeds,
            (budget / 8).max(500),
            seed,
        ),
    }
}

/// Averages `f` over `runs` seeds (the paper averages ten runs).
pub fn average_over_runs<F: FnMut(u64) -> f64>(runs: u64, mut f: F) -> f64 {
    if runs == 0 {
        return 0.0;
    }
    (0..runs).map(&mut f).sum::<f64>() / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_instance() -> ImcInstance {
        let graph = dataset_graph(DatasetId::Facebook, 0.1, 1);
        build_instance(
            &graph,
            Formation::Louvain,
            8,
            ThresholdPolicy::Constant(2),
            1,
        )
    }

    #[test]
    fn build_instance_louvain_and_random_have_same_scale() {
        let graph = dataset_graph(DatasetId::Facebook, 0.1, 1);
        let a = build_instance(
            &graph,
            Formation::Louvain,
            8,
            ThresholdPolicy::Constant(2),
            1,
        );
        let b = build_instance(
            &graph,
            Formation::Random,
            8,
            ThresholdPolicy::Constant(2),
            1,
        );
        assert_eq!(a.node_count(), b.node_count());
        assert!(a.community_count() > 0 && b.community_count() > 0);
    }

    #[test]
    fn all_methods_run_on_tiny_instance() {
        let inst = tiny_instance();
        for m in [
            Method::Imc(MaxrAlgorithm::Maf),
            Method::Hbc,
            Method::Ks,
            Method::Im,
            Method::Degree,
            Method::PageRank,
        ] {
            let run = run_method(&inst, m, 3, 2, 2_000, Duration::from_secs(120));
            assert!(!run.timed_out, "{} timed out", m.name());
            assert_eq!(run.seeds.len(), 3, "{}", m.name());
        }
    }

    #[test]
    fn grade_is_nonnegative_and_bounded() {
        let inst = tiny_instance();
        let run = run_method(&inst, Method::Hbc, 3, 2, 1_000, Duration::from_secs(60));
        let g = grade(&inst, &run.seeds, 3, 20_000);
        assert!(g >= 0.0 && g <= inst.total_benefit() * 1.3);
        assert_eq!(grade(&inst, &[], 3, 20_000), 0.0);
    }

    #[test]
    fn average_over_runs_averages() {
        let avg = average_over_runs(4, |r| r as f64);
        assert_eq!(avg, 1.5);
        assert_eq!(average_over_runs(0, |_| 1.0), 0.0);
    }

    #[test]
    fn predictive_skip_for_mb_on_huge_instances() {
        // Fabricate node count > 20k cheaply.
        let graph = imc_datasets::generate(DatasetId::Pokec, 1.0, 1)
            .reweighted(WeightModel::WeightedCascade);
        let inst = build_instance(
            &graph,
            Formation::Random,
            8,
            ThresholdPolicy::Constant(2),
            1,
        );
        let run = run_method(
            &inst,
            Method::Imc(MaxrAlgorithm::Mb),
            3,
            1,
            100,
            Duration::from_secs(1),
        );
        assert!(run.timed_out);
        assert!(run.seeds.is_empty());
    }
}
