//! Solve-engine benchmark — sequential vs CELF-lazy vs lazy+parallel
//! greedy on a fixed RIC collection.
//!
//! Times the shared engine's `ν_R` greedy (Alg. 2's CELF loop — the
//! upper-bound arm of UBG, where Lemma 3 makes lazy evaluation sound)
//! under each [`SolveStrategy`] on the Wiki-Vote analog, asserting that
//! every strategy returns bitwise identical seeds. Besides the usual
//! table it writes `BENCH_solver.json` (schema in `docs/BENCHMARKS.md`),
//! the machine-readable record CI archives alongside `BENCH_ric.json`.
//!
//! The evaluation counts make the speedup legible: CELF wins by *doing
//! less* (stale-gain pruning), the parallel strategy wins by fanning the
//! surviving evaluations out to more cores — so `evaluations` drops
//! sharply from sequential to lazy and stays nearly constant across
//! thread counts (batched queue-popping re-checks a few extra entries).

use crate::experiments::ExpOptions;
use crate::harness::{build_instance, dataset_graph, Formation};
use crate::report::{fmt_secs, Table};
use imc_community::ThresholdPolicy;
use imc_core::maxr::engine::greedy_nu_with;
use imc_core::{RicStore, SolveStrategy};
use imc_datasets::DatasetId;
use imc_graph::NodeId;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// Schema identifier stamped into `BENCH_solver.json`; bump when fields
/// change meaning.
pub const BENCH_SCHEMA: &str = "imc-bench/solver/v1";

/// One strategy's timing row.
struct StrategyRun {
    strategy: &'static str,
    threads: usize,
    seconds: f64,
    evaluations: u64,
    speedup: f64,
}

/// Runs the benchmark, prints the table, and writes `BENCH_solver.json`
/// into `--out` (or the working directory).
pub fn run(options: &ExpOptions) -> std::io::Result<()> {
    let (samples, k, thread_counts): (usize, usize, &[usize]) = if options.quick {
        (4_000, 10, &[1, 2])
    } else {
        (40_000, 25, &[1, 2, 4, 8])
    };

    // Same instance recipe as the `ric` benchmark: the Wiki-Vote analog,
    // Louvain communities capped at 8, bounded thresholds h = 2.
    let dataset = DatasetId::WikiVote;
    let graph = dataset_graph(dataset, 0.3 * options.scale, options.seed);
    let instance = build_instance(
        &graph,
        Formation::Louvain,
        8,
        ThresholdPolicy::Constant(2),
        options.seed,
    );
    let sampler = instance.sampler();
    let mut store = RicStore::for_sampler(&sampler);
    store.extend_parallel(&sampler, samples, options.seed);

    let mut strategies: Vec<SolveStrategy> = vec![SolveStrategy::Sequential, SolveStrategy::Lazy];
    strategies.extend(
        thread_counts
            .iter()
            .map(|&threads| SolveStrategy::Parallel { threads }),
    );

    // Best-of-N wall clock per strategy (N = --runs) so one scheduler
    // hiccup cannot invert the comparison; seeds must agree on every run.
    let repeats = options.runs.max(1);
    let mut rows: Vec<StrategyRun> = Vec::with_capacity(strategies.len());
    let mut reference: Option<Vec<NodeId>> = None;
    for strategy in strategies {
        let mut seconds = f64::INFINITY;
        let mut evaluations = 0;
        for _ in 0..repeats {
            let start = Instant::now();
            let run = greedy_nu_with(&store, k, strategy);
            seconds = seconds.min(start.elapsed().as_secs_f64());
            evaluations = run.evaluations;
            match &reference {
                None => reference = Some(run.seeds),
                Some(expected) => assert_eq!(
                    expected,
                    &run.seeds,
                    "strategy {} ({} threads) diverged from the sequential seeds",
                    strategy.label(),
                    strategy.threads(),
                ),
            }
        }
        rows.push(StrategyRun {
            strategy: strategy.label(),
            threads: strategy.threads(),
            seconds,
            evaluations,
            speedup: 0.0,
        });
    }
    let sequential_seconds = rows[0].seconds;
    for row in &mut rows {
        row.speedup = sequential_seconds / row.seconds.max(1e-12);
    }

    let mut table = Table::new(
        "Solve engine - greedy strategies on identical seeds",
        &["strategy", "threads", "seconds", "evaluations", "speedup"],
    );
    for row in &rows {
        table.push_row(vec![
            row.strategy.to_string(),
            row.threads.to_string(),
            fmt_secs(std::time::Duration::from_secs_f64(row.seconds)),
            row.evaluations.to_string(),
            format!("{:.2}x", row.speedup),
        ]);
    }
    table.emit(options.out_dir.as_deref())?;

    let json = bench_json(imc_datasets::spec(dataset).name, samples, k, repeats, &rows);
    let path = options
        .out_dir
        .clone()
        .unwrap_or_else(|| Path::new(".").to_path_buf())
        .join("BENCH_solver.json");
    let mut file = std::fs::File::create(&path)?;
    file.write_all(json.as_bytes())?;
    eprintln!("[solver] wrote {}", path.display());
    Ok(())
}

fn bench_json(
    dataset: &str,
    samples: usize,
    k: usize,
    repeats: u64,
    rows: &[StrategyRun],
) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                concat!(
                    "    {{ \"strategy\": \"{strategy}\", \"threads\": {threads}, ",
                    "\"seconds\": {seconds:.6}, \"evaluations\": {evaluations}, ",
                    "\"speedup_vs_sequential\": {speedup:.3} }}",
                ),
                strategy = row.strategy,
                threads = row.threads,
                seconds = row.seconds,
                evaluations = row.evaluations,
                speedup = row.speedup,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{schema}\",\n",
            "  \"dataset\": \"{dataset}\",\n",
            "  \"objective\": \"nu_greedy\",\n",
            "  \"samples\": {samples},\n",
            "  \"k\": {k},\n",
            "  \"runs_per_strategy\": {repeats},\n",
            "  \"seeds_identical\": true,\n",
            "  \"strategies\": [\n{entries}\n  ]\n",
            "}}\n",
        ),
        schema = BENCH_SCHEMA,
        dataset = dataset,
        samples = samples,
        k = k,
        repeats = repeats,
        entries = entries.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale_and_writes_json() {
        let dir = std::env::temp_dir().join(format!("imc-bench-solver-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let options = ExpOptions {
            scale: 0.2,
            out_dir: Some(dir.clone()),
            ..ExpOptions::smoke()
        };
        run(&options).unwrap();
        let json = std::fs::read_to_string(dir.join("BENCH_solver.json")).unwrap();
        assert!(json.contains(BENCH_SCHEMA));
        assert!(json.contains("\"objective\": \"nu_greedy\""));
        assert!(json.contains("\"seeds_identical\": true"));
        assert!(json.contains("\"speedup_vs_sequential\""));
        assert!(json.contains("\"strategy\": \"parallel\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
