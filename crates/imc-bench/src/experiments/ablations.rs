//! Ablations beyond the paper's figures.
//!
//! * [`samples`] — solution quality vs the RIC collection size `|R|`:
//!   validates the Ψ/Λ machinery empirically (quality saturates well below
//!   the worst-case bound, which is why SSA-style early stopping pays).
//! * [`btd`] — the `BT^(d)` recursion on a threshold-3 instance, the
//!   paper's extension of Alg. 4 that it analyses but never measures.

use crate::experiments::ExpOptions;
use crate::harness::{build_instance, dataset_graph, grade, Formation};
use crate::report::{fmt_f, fmt_secs, Table};
use imc_community::ThresholdPolicy;
use imc_core::{BtSolver, MaxrAlgorithm, MaxrSolver, RicCollection, SolveRequest, UbgSolver};
use imc_datasets::DatasetId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Quality vs `|R|` for UBG at fixed `k`.
pub fn samples(options: &ExpOptions) -> std::io::Result<()> {
    let sizes: &[usize] = if options.quick {
        &[125, 1_000]
    } else {
        &[125, 500, 2_000, 8_000, 32_000]
    };
    let k = 10;
    let graph = dataset_graph(
        DatasetId::Facebook,
        if options.quick { 0.4 } else { 1.0 } * options.scale,
        options.seed,
    );
    let instance = build_instance(
        &graph,
        Formation::Louvain,
        8,
        ThresholdPolicy::Constant(2),
        options.seed,
    );
    let sampler = instance.sampler();

    let mut table = Table::new(
        "Ablation - UBG quality vs RIC collection size (k=10, h=2)",
        &["|R|", "benefit", "solve seconds"],
    );
    for &size in sizes {
        let mut collection = RicCollection::for_sampler(&sampler);
        let mut rng = StdRng::seed_from_u64(options.seed);
        collection.extend_with(&sampler, size, &mut rng);
        let start = Instant::now();
        let outcome = UbgSolver
            .solve(&collection, &SolveRequest::new(k))
            .expect("nonzero budget");
        let elapsed = start.elapsed();
        let benefit = grade(
            &instance,
            &outcome.seeds,
            options.seed + 3,
            options.grade_budget,
        );
        table.push_row(vec![size.to_string(), fmt_f(benefit), fmt_secs(elapsed)]);
    }
    table.emit(options.out_dir.as_deref())
}

/// `BT^(3)` vs the other solvers on a threshold-3 instance.
pub fn btd(options: &ExpOptions) -> std::io::Result<()> {
    let k = 6;
    let graph = dataset_graph(DatasetId::Facebook, 0.3 * options.scale, options.seed);
    let instance = build_instance(
        &graph,
        Formation::Louvain,
        8,
        ThresholdPolicy::Constant(3),
        options.seed,
    );
    let sampler = instance.sampler();
    let mut collection = RicCollection::for_sampler(&sampler);
    let mut rng = StdRng::seed_from_u64(options.seed);
    collection.extend_with(
        &sampler,
        if options.quick { 1_000 } else { 6_000 },
        &mut rng,
    );

    let mut table = Table::new(
        "Ablation - BT^3 vs other solvers (h=3, k=6)",
        &["method", "benefit", "solve seconds"],
    );
    // BT^3 with a candidate cap (full pivot scan at threshold 3 is the
    // k^{d-1} regime the paper warns about).
    let start = Instant::now();
    let bt_out = BtSolver {
        candidate_limit: Some(if options.quick { 10 } else { 50 }),
    }
    .solve(&collection, &SolveRequest::new(k).with_depth(3))
    .expect("thresholds bounded by 3");
    let bt_time = start.elapsed();
    let bt_benefit = grade(
        &instance,
        &bt_out.seeds,
        options.seed + 1,
        options.grade_budget,
    );
    table.push_row(vec![
        "BT^3 (capped)".into(),
        fmt_f(bt_benefit),
        fmt_secs(bt_time),
    ]);

    for algo in [
        MaxrAlgorithm::Ubg,
        MaxrAlgorithm::Maf,
        MaxrAlgorithm::Greedy,
    ] {
        let start = Instant::now();
        let sol = algo
            .solve(
                &instance,
                &collection,
                &SolveRequest::new(k).with_seed(options.seed),
            )
            .expect("solvers valid on h=3 instance");
        let t = start.elapsed();
        let benefit = grade(
            &instance,
            &sol.seeds,
            options.seed + 1,
            options.grade_budget,
        );
        table.push_row(vec![algo.name().to_string(), fmt_f(benefit), fmt_secs(t)]);
    }
    table.emit(options.out_dir.as_deref())
}

/// Non-submodularity probe: how often does adding a seed *increase*
/// another node's marginal gain (the behavior of the paper's Fig. 2 /
/// Lemma 2), as a function of the threshold policy? Regimes with higher
/// violation rates are exactly where plain greedy is risky and the UBG
/// sandwich ratio (Fig. 8) drops.
pub fn nonsubmodularity(options: &ExpOptions) -> std::io::Result<()> {
    let graph = dataset_graph(
        DatasetId::Facebook,
        if options.quick { 0.3 } else { 0.6 } * options.scale,
        options.seed,
    );
    let regimes: &[(&str, ThresholdPolicy)] = &[
        ("h=1", ThresholdPolicy::Constant(1)),
        ("h=2", ThresholdPolicy::Constant(2)),
        ("h=4", ThresholdPolicy::Constant(4)),
        ("50%", ThresholdPolicy::Fraction(0.5)),
        ("100%", ThresholdPolicy::Fraction(1.0)),
    ];
    let trials = if options.quick { 2_000 } else { 20_000 };
    let sample_count = if options.quick { 500 } else { 3_000 };

    let mut table = Table::new(
        "Ablation - submodularity violation rate vs threshold regime",
        &["regime", "violations", "trials", "rate"],
    );
    for &(name, threshold) in regimes {
        let instance = build_instance(&graph, Formation::Louvain, 8, threshold, options.seed);
        let sampler = instance.sampler();
        let mut collection = RicCollection::for_sampler(&sampler);
        let mut rng = StdRng::seed_from_u64(options.seed);
        collection.extend_with(&sampler, sample_count, &mut rng);
        let report = imc_core::diagnostics::probe_submodularity(&collection, 4, trials, &mut rng);
        table.push_row(vec![
            name.to_string(),
            report.increasing.to_string(),
            report.trials().to_string(),
            format!("{:.4}", report.violation_rate()),
        ]);
    }
    table.emit(options.out_dir.as_deref())
}

/// Empirical approximation ratios against the exact optimum on
/// brute-forceable instances — turns Theorems 3–5 into measurements.
pub fn ratios(options: &ExpOptions) -> std::io::Result<()> {
    use imc_core::maxr::exhaustive::exhaustive;
    let mut table = Table::new(
        "Ablation - empirical ratio vs exact MAXR optimum (tiny instances)",
        &["instance", "k", "method", "ratio", "paper bound"],
    );
    let trials = if options.quick { 3 } else { 10 };
    for trial in 0..trials {
        let seed = options.seed + trial;
        let mut rng = StdRng::seed_from_u64(seed);
        let pp = imc_graph::generators::planted_partition(24, 4, 0.4, 0.05, &mut rng);
        let graph = pp.graph.reweighted(imc_graph::WeightModel::WeightedCascade);
        let cs = imc_community::CommunitySet::builder(&graph)
            .explicit(pp.blocks)
            .threshold(ThresholdPolicy::Constant(2))
            .build()
            .expect("valid blocks");
        let instance = imc_core::ImcInstance::new(graph, cs).expect("valid instance");
        let sampler = instance.sampler();
        let mut collection = RicCollection::for_sampler(&sampler);
        collection.extend_with(&sampler, 400, &mut rng);
        let k = 4;
        let opt = exhaustive(&collection, k);
        if opt.influenced_samples == 0 {
            continue;
        }
        let r = instance.community_count();
        let h = instance.max_threshold();
        for algo in [
            MaxrAlgorithm::Ubg,
            MaxrAlgorithm::Maf,
            MaxrAlgorithm::Bt,
            MaxrAlgorithm::Mb,
            MaxrAlgorithm::Greedy,
        ] {
            let sol = algo
                .solve(
                    &instance,
                    &collection,
                    &SolveRequest::new(k).with_seed(seed),
                )
                .expect("bounded instance");
            let ratio = sol.influenced_samples as f64 / opt.influenced_samples as f64;
            table.push_row(vec![
                format!("trial{trial}"),
                k.to_string(),
                algo.name().to_string(),
                format!("{ratio:.3}"),
                format!("{:.3}", algo.approximation_ratio(r, h, k)),
            ]);
        }
    }
    table.emit(options.out_dir.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ablations_complete() {
        let options = ExpOptions::smoke();
        samples(&options).unwrap();
        btd(&options).unwrap();
    }

    #[test]
    fn quick_nonsub_and_ratios_complete() {
        let options = ExpOptions::smoke();
        nonsubmodularity(&options).unwrap();
        ratios(&options).unwrap();
    }
}
