//! Fig. 4 — solution quality under different community structures.
//!
//! Sweeps the community-formation method (Louvain vs Random) and the size
//! cap `s ∈ {4, 8, 16, 32}` at fixed `k = 10`:
//!
//! * 4(a), 4(b), 4(d): regular thresholds `h_i = ⌈0.5·|C_i|⌉` on the
//!   Facebook and DBLP analogs.
//! * 4(c): bounded thresholds `h_i = 2` (Facebook), where MB also runs.
//!
//! Expected shape (paper): our algorithms (UBG, MAF) dominate the
//! baselines under every formation; quality *decreases* as `s` grows in
//! the regular case (larger communities need more activations) but not in
//! the bounded case.

use crate::experiments::ExpOptions;
use crate::harness::{
    average_over_runs, build_instance, dataset_graph, grade, run_method, Formation, Method,
};
use crate::report::{fmt_f, Table};
use imc_community::ThresholdPolicy;
use imc_core::MaxrAlgorithm;
use imc_datasets::DatasetId;
use std::time::Duration;

const K: usize = 10;

/// Runs the experiment and prints/writes the table.
pub fn run(options: &ExpOptions) -> std::io::Result<()> {
    let caps: &[usize] = if options.quick {
        &[4, 8]
    } else {
        &[4, 8, 16, 32]
    };
    let methods = [
        Method::Imc(MaxrAlgorithm::Ubg),
        Method::Imc(MaxrAlgorithm::Maf),
        Method::Hbc,
        Method::Ks,
        Method::Im,
    ];
    let datasets: &[(DatasetId, f64)] = if options.quick {
        &[(DatasetId::Facebook, 0.4)]
    } else {
        &[(DatasetId::Facebook, 1.0), (DatasetId::Dblp, 0.1)]
    };

    // Panels a/b/d: regular thresholds, both formations.
    let mut table = Table::new(
        "Fig 4abd - benefit vs community structure (regular thresholds, k=10)",
        &["dataset", "formation", "s", "method", "benefit"],
    );
    for &(dataset, ds_scale) in datasets {
        let graph = dataset_graph(dataset, ds_scale * options.scale, options.seed);
        for formation in [Formation::Louvain, Formation::Random] {
            for &s in caps {
                let instance = build_instance(
                    &graph,
                    formation,
                    s,
                    ThresholdPolicy::Fraction(0.5),
                    options.seed,
                );
                for method in methods {
                    let benefit = average_over_runs(options.runs, |r| {
                        let run = run_method(
                            &instance,
                            method,
                            K,
                            options.seed + r,
                            options.max_samples,
                            Duration::from_secs(600),
                        );
                        grade(
                            &instance,
                            &run.seeds,
                            options.seed + 31 * r,
                            options.grade_budget,
                        )
                    });
                    table.push_row(vec![
                        imc_datasets::spec(dataset).name.to_string(),
                        formation.name().to_string(),
                        s.to_string(),
                        method.name().to_string(),
                        fmt_f(benefit),
                    ]);
                }
            }
        }
    }
    table.emit(options.out_dir.as_deref())?;

    // Panel c: bounded thresholds on Facebook, MB joins.
    let mut table_c = Table::new(
        "Fig 4c - benefit vs community structure (bounded h=2, k=10)",
        &["dataset", "formation", "s", "method", "benefit"],
    );
    let graph = dataset_graph(
        DatasetId::Facebook,
        if options.quick { 0.4 } else { 1.0 } * options.scale,
        options.seed,
    );
    let methods_c = [
        Method::Imc(MaxrAlgorithm::Ubg),
        Method::Imc(MaxrAlgorithm::Maf),
        Method::Imc(MaxrAlgorithm::Mb),
        Method::Hbc,
        Method::Ks,
        Method::Im,
    ];
    for &s in caps {
        let instance = build_instance(
            &graph,
            Formation::Louvain,
            s,
            ThresholdPolicy::Constant(2),
            options.seed,
        );
        for method in methods_c {
            let benefit = average_over_runs(options.runs, |r| {
                let run = run_method(
                    &instance,
                    method,
                    K,
                    options.seed + r,
                    options.max_samples,
                    Duration::from_secs(600),
                );
                if run.timed_out {
                    f64::NAN
                } else {
                    grade(
                        &instance,
                        &run.seeds,
                        options.seed + 31 * r,
                        options.grade_budget,
                    )
                }
            });
            let cell = if benefit.is_nan() {
                "timeout".to_string()
            } else {
                fmt_f(benefit)
            };
            table_c.push_row(vec![
                "facebook".to_string(),
                "louvain".to_string(),
                s.to_string(),
                method.name().to_string(),
                cell,
            ]);
        }
    }
    table_c.emit(options.out_dir.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        let options = ExpOptions::smoke();
        run(&options).unwrap();
    }
}
