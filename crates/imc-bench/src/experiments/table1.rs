//! Table I — dataset statistics.
//!
//! The paper's table lists type / nodes / edges for the five SNAP
//! datasets. We print those reference values next to the synthetic analog
//! actually used (or the real file if present in `data/`), so every later
//! figure can be read against the substrate it ran on.

use crate::experiments::ExpOptions;
use crate::report::Table;
use imc_graph::stats::GraphStats;
use imc_graph::WeightModel;

/// Runs the experiment and prints/writes the table.
pub fn run(options: &ExpOptions) -> std::io::Result<()> {
    let mut table = Table::new(
        "Table I - dataset statistics (paper vs analog)",
        &[
            "dataset",
            "type",
            "paper nodes",
            "paper edges",
            "analog nodes",
            "analog edges",
            "analog avg deg",
            "source",
        ],
    );
    for id in imc_datasets::all() {
        let spec = imc_datasets::spec(id);
        let (graph, source) = imc_datasets::load_or_generate(
            id,
            std::path::Path::new("data"),
            options.scale,
            options.seed,
        )
        .expect("dataset generation is infallible; drop-in files must parse");
        let graph = graph.reweighted(WeightModel::WeightedCascade);
        let stats = GraphStats::compute(&graph);
        table.push_row(vec![
            spec.name.to_string(),
            if spec.undirected {
                "undirected"
            } else {
                "directed"
            }
            .to_string(),
            spec.paper_nodes.to_string(),
            spec.paper_edges.to_string(),
            stats.nodes.to_string(),
            stats.edges.to_string(),
            format!("{:.2}", stats.avg_degree),
            format!("{source:?}"),
        ]);
    }
    table.emit(options.out_dir.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale() {
        let options = ExpOptions {
            scale: 0.05,
            ..ExpOptions::smoke()
        };
        run(&options).unwrap();
    }
}
