//! One module per regenerated table/figure. See `EXPERIMENTS.md` for the
//! paper-vs-measured record each module feeds.

pub mod ablations;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod ric;
pub mod solver;
pub mod table1;

use std::path::PathBuf;

/// Options shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Global dataset scale multiplier (1.0 = the laptop defaults in
    /// `imc-datasets`; the per-experiment dataset choices already scale
    /// the big graphs down).
    pub scale: f64,
    /// Shrink sweeps for a fast smoke run.
    pub quick: bool,
    /// Directory for CSV output (`None` = stdout only).
    pub out_dir: Option<PathBuf>,
    /// Base RNG seed.
    pub seed: u64,
    /// Independent repetitions averaged per cell (paper: 10).
    pub runs: u64,
    /// Cap on RIC samples per IMCAF solve.
    pub max_samples: usize,
    /// Forward-simulation budget for the Dagum grader.
    pub grade_budget: u64,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 1.0,
            quick: false,
            out_dir: None,
            seed: 0x01C0_FFEE,
            runs: 3,
            max_samples: 30_000,
            grade_budget: 200_000,
        }
    }
}

impl ExpOptions {
    /// A configuration small enough for CI smoke tests on one core.
    pub fn smoke() -> Self {
        ExpOptions {
            scale: 0.25,
            quick: true,
            runs: 1,
            max_samples: 2_000,
            grade_budget: 20_000,
            ..ExpOptions::default()
        }
    }
}
