//! Fig. 6 — expected benefit vs `k` in the bounded-threshold case
//! (`h_i = 2`, `s = 8`), where BT/MB are applicable.
//!
//! Expected shape (paper): same ordering as Fig. 5 with MB competitive on
//! quality; MB is discarded on the largest network for exceeding the
//! runtime limit (Fig. 6b note) — we reproduce that with an explicit
//! limit.

use crate::experiments::ExpOptions;
use crate::harness::{
    average_over_runs, build_instance, dataset_graph, grade, run_method, Formation, Method,
};
use crate::report::{fmt_f, Table};
use imc_community::ThresholdPolicy;
use imc_core::MaxrAlgorithm;
use imc_datasets::DatasetId;
use std::time::Duration;

/// Runs the experiment and prints/writes the table.
pub fn run(options: &ExpOptions) -> std::io::Result<()> {
    let ks: &[usize] = if options.quick {
        &[5, 20]
    } else {
        &[5, 10, 20, 30, 40, 50]
    };
    let datasets: &[(DatasetId, f64)] = if options.quick {
        &[(DatasetId::Facebook, 0.4)]
    } else {
        &[(DatasetId::Facebook, 1.0), (DatasetId::WikiVote, 0.3)]
    };
    let methods = [
        Method::Imc(MaxrAlgorithm::Ubg),
        Method::Imc(MaxrAlgorithm::Maf),
        Method::Imc(MaxrAlgorithm::Mb),
        Method::Hbc,
        Method::Ks,
        Method::Im,
    ];

    let mut table = Table::new(
        "Fig 6 - benefit vs k (bounded h=2, s=8)",
        &["dataset", "k", "method", "benefit"],
    );
    // MB's runtime limit, mirroring the paper's discard on Pokec.
    let mb_limit = Duration::from_secs(if options.quick { 60 } else { 600 });
    for &(dataset, ds_scale) in datasets {
        let graph = dataset_graph(dataset, ds_scale * options.scale, options.seed);
        let instance = build_instance(
            &graph,
            Formation::Louvain,
            8,
            ThresholdPolicy::Constant(2),
            options.seed,
        );
        for &k in ks {
            for method in methods {
                let limit = if matches!(method, Method::Imc(MaxrAlgorithm::Mb)) {
                    mb_limit
                } else {
                    Duration::from_secs(900)
                };
                let benefit = average_over_runs(options.runs, |r| {
                    let run = run_method(
                        &instance,
                        method,
                        k,
                        options.seed + r,
                        options.max_samples,
                        limit,
                    );
                    if run.timed_out {
                        f64::NAN
                    } else {
                        grade(
                            &instance,
                            &run.seeds,
                            options.seed + 31 * r,
                            options.grade_budget,
                        )
                    }
                });
                let cell = if benefit.is_nan() {
                    "timeout".to_string()
                } else {
                    fmt_f(benefit)
                };
                table.push_row(vec![
                    imc_datasets::spec(dataset).name.to_string(),
                    k.to_string(),
                    method.name().to_string(),
                    cell,
                ]);
            }
        }
    }
    table.emit(options.out_dir.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        let options = ExpOptions::smoke();
        run(&options).unwrap();
    }
}
