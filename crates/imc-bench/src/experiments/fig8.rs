//! Fig. 8 — UBG's data-dependent sandwich ratio `c(S_ν)/ν(S_ν)` vs `k`.
//!
//! `S_ν` is the greedy solution for the submodular upper bound; the ratio
//! multiplies into UBG's guarantee (Theorem 2). The paper computes both
//! quantities by Monte Carlo and observes: the ratio grows toward 1 with
//! `k`, and is much higher under bounded thresholds (`h = 2`) than the
//! regular 50% thresholds — in the limit `h = 1` the ratio is exactly 1
//! (Lemma 4).

use crate::experiments::ExpOptions;
use crate::harness::{build_instance, dataset_graph, Formation};
use crate::report::{fmt_f, Table};
use imc_community::ThresholdPolicy;
use imc_core::maxr::engine::greedy_nu_with;
use imc_core::{RicCollection, SolveStrategy};
use imc_datasets::DatasetId;
use imc_diffusion::benefit::{monte_carlo_benefit, monte_carlo_fractional_benefit};
use imc_diffusion::IndependentCascade;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment and prints/writes the table.
pub fn run(options: &ExpOptions) -> std::io::Result<()> {
    let ks: &[usize] = if options.quick {
        &[5, 20]
    } else {
        &[5, 10, 20, 50]
    };
    let datasets: &[(DatasetId, f64)] = if options.quick {
        &[(DatasetId::Facebook, 0.4)]
    } else {
        &[(DatasetId::Facebook, 1.0), (DatasetId::WikiVote, 0.3)]
    };
    let regimes: &[(&str, ThresholdPolicy)] = &[
        ("bounded h=2", ThresholdPolicy::Constant(2)),
        ("regular 50%", ThresholdPolicy::Fraction(0.5)),
    ];
    let sample_count = if options.quick { 4_000 } else { 12_000 };
    let mc_runs = if options.quick { 4_000 } else { 12_000 };

    let mut table = Table::new(
        "Fig 8 - UBG sandwich ratio c(S_nu)/nu(S_nu) vs k",
        &["dataset", "regime", "k", "c(S_nu)", "nu(S_nu)", "ratio"],
    );
    for &(dataset, ds_scale) in datasets {
        let graph = dataset_graph(dataset, ds_scale * options.scale, options.seed);
        for &(regime_name, threshold) in regimes {
            let instance = build_instance(&graph, Formation::Louvain, 8, threshold, options.seed);
            let sampler = instance.sampler();
            let mut collection = RicCollection::for_sampler(&sampler);
            let mut rng = StdRng::seed_from_u64(options.seed);
            collection.extend_with(&sampler, sample_count, &mut rng);
            for &k in ks {
                let s_nu = greedy_nu_with(&collection, k, SolveStrategy::Lazy).seeds;
                let c = monte_carlo_benefit(
                    instance.graph(),
                    instance.communities(),
                    &IndependentCascade,
                    &s_nu,
                    mc_runs,
                    options.seed + 7,
                );
                let nu = monte_carlo_fractional_benefit(
                    instance.graph(),
                    instance.communities(),
                    &IndependentCascade,
                    &s_nu,
                    mc_runs,
                    options.seed + 7,
                );
                let ratio = if nu > 0.0 { c / nu } else { 1.0 };
                table.push_row(vec![
                    imc_datasets::spec(dataset).name.to_string(),
                    regime_name.to_string(),
                    k.to_string(),
                    fmt_f(c),
                    fmt_f(nu),
                    format!("{ratio:.3}"),
                ]);
            }
        }
    }
    table.emit(options.out_dir.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        let options = ExpOptions::smoke();
        run(&options).unwrap();
    }
}
