//! Fig. 5 — expected benefit vs seed budget `k`, regular thresholds
//! (`h_i = ⌈0.5·|C_i|⌉`, `s = 8`).
//!
//! Expected shape (paper): UBG best throughout; MAF close behind; the gap
//! to IM *grows* with `k` (IM's activations scatter across communities
//! without pushing them past their thresholds); KS worst (topology-blind).

use crate::experiments::ExpOptions;
use crate::harness::{
    average_over_runs, build_instance, dataset_graph, grade, run_method, Formation, Method,
};
use crate::report::{fmt_f, Table};
use imc_community::ThresholdPolicy;
use imc_core::MaxrAlgorithm;
use imc_datasets::DatasetId;
use std::time::Duration;

/// Runs the experiment and prints/writes the table.
pub fn run(options: &ExpOptions) -> std::io::Result<()> {
    let ks: &[usize] = if options.quick {
        &[5, 20]
    } else {
        &[5, 10, 20, 30, 40, 50]
    };
    let datasets: &[(DatasetId, f64)] = if options.quick {
        &[(DatasetId::Facebook, 0.4)]
    } else {
        &[(DatasetId::Facebook, 1.0), (DatasetId::WikiVote, 0.3)]
    };
    let methods = [
        Method::Imc(MaxrAlgorithm::Ubg),
        Method::Imc(MaxrAlgorithm::Maf),
        Method::Hbc,
        Method::Ks,
        Method::Im,
    ];

    let mut table = Table::new(
        "Fig 5 - benefit vs k (regular thresholds, s=8)",
        &["dataset", "k", "method", "benefit"],
    );
    for &(dataset, ds_scale) in datasets {
        let graph = dataset_graph(dataset, ds_scale * options.scale, options.seed);
        let instance = build_instance(
            &graph,
            Formation::Louvain,
            8,
            ThresholdPolicy::Fraction(0.5),
            options.seed,
        );
        for &k in ks {
            for method in methods {
                let benefit = average_over_runs(options.runs, |r| {
                    let run = run_method(
                        &instance,
                        method,
                        k,
                        options.seed + r,
                        options.max_samples,
                        Duration::from_secs(900),
                    );
                    grade(
                        &instance,
                        &run.seeds,
                        options.seed + 31 * r,
                        options.grade_budget,
                    )
                });
                table.push_row(vec![
                    imc_datasets::spec(dataset).name.to_string(),
                    k.to_string(),
                    method.name().to_string(),
                    fmt_f(benefit),
                ]);
            }
        }
    }
    table.emit(options.out_dir.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        let options = ExpOptions::smoke();
        run(&options).unwrap();
    }
}
