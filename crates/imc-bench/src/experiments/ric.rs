//! RicStore microbenchmarks — sampling throughput, solver-evaluation
//! throughput (arena-backed [`RicStore`] vs the legacy owning
//! [`RicCollection`](imc_core::RicCollection)), and arena memory
//! footprint.
//!
//! Besides the usual table, this experiment writes `BENCH_ric.json`
//! (schema documented in `docs/BENCHMARKS.md`), the machine-readable
//! record CI archives so throughput regressions show up in review rather
//! than in production.
//!
//! Both backends hold bit-identical sample data (the legacy collection is
//! materialised from the store), and every timed evaluation is checked
//! for agreement — the speedup number is only meaningful if the two paths
//! return the same `ĉ_R(S)`.

use crate::experiments::ExpOptions;
use crate::harness::{build_instance, dataset_graph};
use crate::report::{fmt_f, Table};
use imc_community::ThresholdPolicy;
use imc_core::RicStore;
use imc_datasets::DatasetId;
use imc_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// Schema identifier stamped into `BENCH_ric.json`; bump when fields
/// change meaning.
pub const BENCH_SCHEMA: &str = "imc-bench/ric/v1";

/// One backend's evaluation timing.
struct EvalTiming {
    seconds: f64,
    evals_per_sec: f64,
}

/// Runs the microbenchmarks, prints the table, and writes
/// `BENCH_ric.json` into `--out` (or the working directory).
pub fn run(options: &ExpOptions) -> std::io::Result<()> {
    let (samples, eval_sets, seeds_per_set) = if options.quick {
        (4_000usize, 400usize, 8usize)
    } else {
        (40_000, 2_000, 10)
    };

    // The bundled medium instance: the Wiki-Vote analog with Louvain
    // communities, size cap 8, bounded thresholds h = 2 (fig. 7a's setup).
    let dataset = DatasetId::WikiVote;
    let graph = dataset_graph(dataset, 0.3 * options.scale, options.seed);
    let instance = build_instance(
        &graph,
        crate::harness::Formation::Louvain,
        8,
        ThresholdPolicy::Constant(2),
        options.seed,
    );
    let sampler = instance.sampler();

    // 1. Sampling throughput into the arena (seed-sharded, deterministic).
    let mut store = RicStore::for_sampler(&sampler);
    let gen_start = Instant::now();
    store.extend_parallel(&sampler, samples, options.seed);
    let gen_seconds = gen_start.elapsed().as_secs_f64();
    let samples_per_sec = samples as f64 / gen_seconds;

    // 2. Solver-evaluation throughput: `ĉ_R(S)` on the same seed sets
    // through both backends. The legacy path scans every sample with
    // per-seed binary searches; the store walks the inverted index.
    let legacy = store.to_collection();
    let node_count = store.node_count() as u32;
    let mut rng = StdRng::seed_from_u64(options.seed ^ 0x51C0_FFEE);
    let seed_sets: Vec<Vec<NodeId>> = (0..eval_sets)
        .map(|_| {
            (0..seeds_per_set)
                .map(|_| NodeId::new(rng.random_range(0..node_count)))
                .collect()
        })
        .collect();

    let legacy_counts: Vec<usize>;
    let legacy_timing = {
        let start = Instant::now();
        legacy_counts = seed_sets
            .iter()
            .map(|s| legacy.influenced_count(s))
            .collect();
        timing(start.elapsed().as_secs_f64(), eval_sets)
    };
    let store_counts: Vec<usize>;
    let store_timing = {
        let start = Instant::now();
        store_counts = seed_sets
            .iter()
            .map(|s| store.influenced_count(s))
            .collect();
        timing(start.elapsed().as_secs_f64(), eval_sets)
    };
    assert_eq!(
        legacy_counts, store_counts,
        "backends must agree on every influenced count"
    );
    let speedup = store_timing.evals_per_sec / legacy_timing.evals_per_sec;

    // 3. Memory footprint (arena bytes stand in for RSS: the store's flat
    // buffers are its only heap allocation).
    let arena_bytes = store.arena_bytes();
    let index_entries = store.index_entries();

    let mut table = Table::new("RicStore microbenchmarks", &["metric", "value"]);
    table.push_row(vec![
        "dataset".into(),
        imc_datasets::spec(dataset).name.into(),
    ]);
    table.push_row(vec!["samples".into(), samples.to_string()]);
    table.push_row(vec!["gen samples/sec".into(), fmt_f(samples_per_sec)]);
    table.push_row(vec![
        "legacy evals/sec".into(),
        fmt_f(legacy_timing.evals_per_sec),
    ]);
    table.push_row(vec![
        "store evals/sec".into(),
        fmt_f(store_timing.evals_per_sec),
    ]);
    table.push_row(vec!["speedup".into(), format!("{speedup:.2}x")]);
    table.push_row(vec!["arena bytes".into(), arena_bytes.to_string()]);
    table.push_row(vec!["index entries".into(), index_entries.to_string()]);
    table.emit(options.out_dir.as_deref())?;

    let json = bench_json(
        imc_datasets::spec(dataset).name,
        samples,
        gen_seconds,
        samples_per_sec,
        eval_sets,
        seeds_per_set,
        &legacy_timing,
        &store_timing,
        speedup,
        arena_bytes,
        index_entries,
    );
    let path = options
        .out_dir
        .clone()
        .unwrap_or_else(|| Path::new(".").to_path_buf())
        .join("BENCH_ric.json");
    let mut file = std::fs::File::create(&path)?;
    file.write_all(json.as_bytes())?;
    eprintln!("[ric] wrote {}", path.display());
    Ok(())
}

fn timing(seconds: f64, evals: usize) -> EvalTiming {
    EvalTiming {
        seconds,
        evals_per_sec: evals as f64 / seconds.max(1e-12),
    }
}

#[allow(clippy::too_many_arguments)]
fn bench_json(
    dataset: &str,
    samples: usize,
    gen_seconds: f64,
    samples_per_sec: f64,
    eval_sets: usize,
    seeds_per_set: usize,
    legacy: &EvalTiming,
    store: &EvalTiming,
    speedup: f64,
    arena_bytes: usize,
    index_entries: usize,
) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{schema}\",\n",
            "  \"dataset\": \"{dataset}\",\n",
            "  \"samples\": {samples},\n",
            "  \"generation\": {{\n",
            "    \"seconds\": {gen_seconds:.6},\n",
            "    \"samples_per_sec\": {samples_per_sec:.1}\n",
            "  }},\n",
            "  \"evaluation\": {{\n",
            "    \"seed_sets\": {eval_sets},\n",
            "    \"seeds_per_set\": {seeds_per_set},\n",
            "    \"legacy\": {{ \"seconds\": {ls:.6}, \"evals_per_sec\": {le:.1} }},\n",
            "    \"store\": {{ \"seconds\": {ss:.6}, \"evals_per_sec\": {se:.1} }},\n",
            "    \"speedup\": {speedup:.3}\n",
            "  }},\n",
            "  \"memory\": {{\n",
            "    \"arena_bytes\": {arena_bytes},\n",
            "    \"index_entries\": {index_entries}\n",
            "  }}\n",
            "}}\n",
        ),
        schema = BENCH_SCHEMA,
        dataset = dataset,
        samples = samples,
        gen_seconds = gen_seconds,
        samples_per_sec = samples_per_sec,
        eval_sets = eval_sets,
        seeds_per_set = seeds_per_set,
        ls = legacy.seconds,
        le = legacy.evals_per_sec,
        ss = store.seconds,
        se = store.evals_per_sec,
        speedup = speedup,
        arena_bytes = arena_bytes,
        index_entries = index_entries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale_and_writes_json() {
        let dir = std::env::temp_dir().join(format!("imc-bench-ric-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let options = ExpOptions {
            scale: 0.2,
            out_dir: Some(dir.clone()),
            ..ExpOptions::smoke()
        };
        run(&options).unwrap();
        let json = std::fs::read_to_string(dir.join("BENCH_ric.json")).unwrap();
        assert!(json.contains(BENCH_SCHEMA));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"arena_bytes\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
