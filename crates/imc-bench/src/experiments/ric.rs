//! RicStore microbenchmarks — sampling throughput, solver-evaluation
//! throughput (arena-backed [`RicStore`] vs the legacy owning
//! [`RicCollection`](imc_core::RicCollection) vs the reusable
//! [`CoverageEvaluator`] kernel path), snapshot codec wall times (v2
//! parse vs v3 parse vs the zero-copy v3 view), and arena memory
//! footprint.
//!
//! Besides the usual table, this experiment writes `BENCH_ric.json`
//! (schema documented in `docs/BENCHMARKS.md`), the machine-readable
//! record CI archives so throughput regressions show up in review rather
//! than in production.
//!
//! All backends hold bit-identical sample data (the legacy collection is
//! materialised from the store, the view is opened over the store's own
//! v3 encoding), and every timed evaluation is checked for agreement —
//! the speedup numbers are only meaningful if every path returns the
//! same `ĉ_R(S)`. The `seeds_identical` flag goes further: a full UBG
//! solve over the store, over a decoded v3 snapshot, and over the
//! zero-copy view must pick bitwise-identical seed sets, which is what
//! `perf-gate` hard-fails on.

use crate::experiments::ExpOptions;
use crate::harness::{build_instance, dataset_graph};
use crate::report::{fmt_f, Table};
use imc_community::ThresholdPolicy;
use imc_core::snapshot::{self, RicStoreView, SnapshotBytes};
use imc_core::{CoverageEvaluator, MaxrAlgorithm, RicStore, SolveRequest};
use imc_datasets::DatasetId;
use imc_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// Schema identifier stamped into `BENCH_ric.json`; bump when fields
/// change meaning. v2 added `evaluation.kernel`, the `snapshot` section,
/// and the top-level `seeds_identical` determinism flag.
pub const BENCH_SCHEMA: &str = "imc-bench/ric/v2";

/// One backend's evaluation timing.
struct EvalTiming {
    seconds: f64,
    evals_per_sec: f64,
}

/// Wall times for the snapshot codec paths, plus the encoded size.
struct SnapshotTiming {
    bytes: usize,
    v2_parse_seconds: f64,
    v3_parse_seconds: f64,
    v3_view_seconds: f64,
}

/// Runs the microbenchmarks, prints the table, and writes
/// `BENCH_ric.json` into `--out` (or the working directory).
pub fn run(options: &ExpOptions) -> std::io::Result<()> {
    let (samples, eval_sets, seeds_per_set) = if options.quick {
        (4_000usize, 400usize, 8usize)
    } else {
        (40_000, 2_000, 10)
    };

    // The bundled medium instance: the Wiki-Vote analog with Louvain
    // communities, size cap 8, bounded thresholds h = 2 (fig. 7a's setup).
    let dataset = DatasetId::WikiVote;
    let graph = dataset_graph(dataset, 0.3 * options.scale, options.seed);
    let instance = build_instance(
        &graph,
        crate::harness::Formation::Louvain,
        8,
        ThresholdPolicy::Constant(2),
        options.seed,
    );
    let sampler = instance.sampler();

    // 1. Sampling throughput into the arena (seed-sharded, deterministic).
    let mut store = RicStore::for_sampler(&sampler);
    let gen_start = Instant::now();
    store.extend_parallel(&sampler, samples, options.seed);
    let gen_seconds = gen_start.elapsed().as_secs_f64();
    let samples_per_sec = samples as f64 / gen_seconds;

    // 2. Solver-evaluation throughput: `ĉ_R(S)` on the same seed sets
    // through three paths. The legacy path scans every sample with
    // per-seed binary searches; the store walks the inverted index but
    // rebuilds its scratch state per call; the kernel evaluator buckets
    // the whole batch by sample and sweeps the cover arena in ascending
    // address order, so large arenas stream from memory instead of
    // paying a dependent random load per index entry.
    let legacy = store.to_collection();
    let node_count = store.node_count() as u32;
    let mut rng = StdRng::seed_from_u64(options.seed ^ 0x51C0_FFEE);
    let seed_sets: Vec<Vec<NodeId>> = (0..eval_sets)
        .map(|_| {
            (0..seeds_per_set)
                .map(|_| NodeId::new(rng.random_range(0..node_count)))
                .collect()
        })
        .collect();

    let legacy_counts: Vec<usize>;
    let legacy_timing = {
        let start = Instant::now();
        legacy_counts = seed_sets
            .iter()
            .map(|s| legacy.influenced_count(s))
            .collect();
        timing(start.elapsed().as_secs_f64(), eval_sets)
    };
    let store_counts: Vec<usize>;
    let store_timing = {
        let start = Instant::now();
        store_counts = seed_sets
            .iter()
            .map(|s| store.influenced_count(s))
            .collect();
        timing(start.elapsed().as_secs_f64(), eval_sets)
    };
    let kernel_counts: Vec<usize>;
    let kernel_timing = {
        let mut evaluator = CoverageEvaluator::new(&store);
        let start = Instant::now();
        kernel_counts = evaluator.influenced_counts(&seed_sets);
        timing(start.elapsed().as_secs_f64(), eval_sets)
    };
    assert_eq!(
        legacy_counts, store_counts,
        "backends must agree on every influenced count"
    );
    assert_eq!(
        store_counts, kernel_counts,
        "the batched kernel evaluator must agree with the scalar paths"
    );
    let speedup = store_timing.evals_per_sec / legacy_timing.evals_per_sec;
    let kernel_speedup = kernel_timing.evals_per_sec / legacy_timing.evals_per_sec;

    // 3. Snapshot codec wall times. The v2 parse rebuilds the inverted
    // index from scratch; the v3 parse adopts the persisted columns after
    // structural validation; the v3 view never copies the arena at all.
    let fingerprint = snapshot::instance_fingerprint(instance.graph(), instance.communities());
    let v3_bytes = snapshot::encode(&store, fingerprint, 1);
    let v2_bytes = snapshot::encode_v2(&store, fingerprint, 1);
    let snapshot_timing = {
        let start = Instant::now();
        let from_v2 = snapshot::decode(&v2_bytes).expect("v2 snapshot decodes");
        let v2_parse_seconds = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let from_v3 = snapshot::decode(&v3_bytes).expect("v3 snapshot decodes");
        let v3_parse_seconds = start.elapsed().as_secs_f64();
        assert_eq!(
            from_v2.collection, from_v3.collection,
            "both snapshot versions must decode to the same store"
        );

        let arena = SnapshotBytes::copy_from(&v3_bytes);
        let start = Instant::now();
        let view = RicStoreView::open(arena.as_bytes()).expect("v3 view opens");
        let v3_view_seconds = start.elapsed().as_secs_f64();

        // 4. End-to-end determinism: the solver must pick bitwise-identical
        // seeds whether it reads the in-memory store, a decoded snapshot,
        // or the zero-copy view.
        let k = 5usize.min(store.node_count());
        let req = SolveRequest::new(k).with_seed(options.seed);
        let from_store = MaxrAlgorithm::Ubg
            .solve(&instance, &store, &req)
            .expect("solve over store");
        let from_parsed = MaxrAlgorithm::Ubg
            .solve(&instance, &from_v3.collection, &req)
            .expect("solve over decoded snapshot");
        let from_view = MaxrAlgorithm::Ubg
            .solve(&instance, &view, &req)
            .expect("solve over zero-copy view");
        assert_eq!(
            from_store.seeds, from_parsed.seeds,
            "decoded snapshot must reproduce the store's seed set"
        );
        assert_eq!(
            from_store.seeds, from_view.seeds,
            "zero-copy view must reproduce the store's seed set"
        );

        SnapshotTiming {
            bytes: v3_bytes.len(),
            v2_parse_seconds,
            v3_parse_seconds,
            v3_view_seconds,
        }
    };
    // The asserts above abort the run on disagreement, so a written JSON
    // always carries `true`; the field exists so perf-gate can hard-fail
    // if a future change downgrades the assert into a warning.
    let seeds_identical = true;

    // 5. Memory footprint (arena bytes stand in for RSS: the store's flat
    // buffers are its only heap allocation).
    let arena_bytes = store.arena_bytes();
    let index_entries = store.index_entries();

    let mut table = Table::new("RicStore microbenchmarks", &["metric", "value"]);
    table.push_row(vec![
        "dataset".into(),
        imc_datasets::spec(dataset).name.into(),
    ]);
    table.push_row(vec!["samples".into(), samples.to_string()]);
    table.push_row(vec!["gen samples/sec".into(), fmt_f(samples_per_sec)]);
    table.push_row(vec![
        "legacy evals/sec".into(),
        fmt_f(legacy_timing.evals_per_sec),
    ]);
    table.push_row(vec![
        "store evals/sec".into(),
        fmt_f(store_timing.evals_per_sec),
    ]);
    table.push_row(vec![
        "kernel evals/sec".into(),
        fmt_f(kernel_timing.evals_per_sec),
    ]);
    table.push_row(vec!["speedup".into(), format!("{speedup:.2}x")]);
    table.push_row(vec![
        "kernel speedup".into(),
        format!("{kernel_speedup:.2}x"),
    ]);
    table.push_row(vec![
        "snapshot bytes".into(),
        snapshot_timing.bytes.to_string(),
    ]);
    table.push_row(vec![
        "v2 parse ms".into(),
        fmt_f(snapshot_timing.v2_parse_seconds * 1e3),
    ]);
    table.push_row(vec![
        "v3 parse ms".into(),
        fmt_f(snapshot_timing.v3_parse_seconds * 1e3),
    ]);
    table.push_row(vec![
        "v3 view ms".into(),
        fmt_f(snapshot_timing.v3_view_seconds * 1e3),
    ]);
    table.push_row(vec!["arena bytes".into(), arena_bytes.to_string()]);
    table.push_row(vec!["index entries".into(), index_entries.to_string()]);
    table.emit(options.out_dir.as_deref())?;

    let json = bench_json(
        imc_datasets::spec(dataset).name,
        samples,
        gen_seconds,
        samples_per_sec,
        eval_sets,
        seeds_per_set,
        &legacy_timing,
        &store_timing,
        &kernel_timing,
        speedup,
        kernel_speedup,
        &snapshot_timing,
        seeds_identical,
        arena_bytes,
        index_entries,
    );
    let path = options
        .out_dir
        .clone()
        .unwrap_or_else(|| Path::new(".").to_path_buf())
        .join("BENCH_ric.json");
    let mut file = std::fs::File::create(&path)?;
    file.write_all(json.as_bytes())?;
    eprintln!("[ric] wrote {}", path.display());
    Ok(())
}

fn timing(seconds: f64, evals: usize) -> EvalTiming {
    EvalTiming {
        seconds,
        evals_per_sec: evals as f64 / seconds.max(1e-12),
    }
}

#[allow(clippy::too_many_arguments)]
fn bench_json(
    dataset: &str,
    samples: usize,
    gen_seconds: f64,
    samples_per_sec: f64,
    eval_sets: usize,
    seeds_per_set: usize,
    legacy: &EvalTiming,
    store: &EvalTiming,
    kernel: &EvalTiming,
    speedup: f64,
    kernel_speedup: f64,
    snap: &SnapshotTiming,
    seeds_identical: bool,
    arena_bytes: usize,
    index_entries: usize,
) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{schema}\",\n",
            "  \"dataset\": \"{dataset}\",\n",
            "  \"samples\": {samples},\n",
            "  \"generation\": {{\n",
            "    \"seconds\": {gen_seconds:.6},\n",
            "    \"samples_per_sec\": {samples_per_sec:.1}\n",
            "  }},\n",
            "  \"evaluation\": {{\n",
            "    \"seed_sets\": {eval_sets},\n",
            "    \"seeds_per_set\": {seeds_per_set},\n",
            "    \"legacy\": {{ \"seconds\": {ls:.6}, \"evals_per_sec\": {le:.1} }},\n",
            "    \"store\": {{ \"seconds\": {ss:.6}, \"evals_per_sec\": {se:.1} }},\n",
            "    \"kernel\": {{ \"seconds\": {ks:.6}, \"evals_per_sec\": {ke:.1} }},\n",
            "    \"speedup\": {speedup:.3},\n",
            "    \"kernel_speedup\": {kernel_speedup:.3}\n",
            "  }},\n",
            "  \"snapshot\": {{\n",
            "    \"bytes\": {snap_bytes},\n",
            "    \"v2_parse_seconds\": {v2p:.6},\n",
            "    \"v3_parse_seconds\": {v3p:.6},\n",
            "    \"v3_view_seconds\": {v3v:.6}\n",
            "  }},\n",
            "  \"seeds_identical\": {seeds_identical},\n",
            "  \"memory\": {{\n",
            "    \"arena_bytes\": {arena_bytes},\n",
            "    \"index_entries\": {index_entries}\n",
            "  }}\n",
            "}}\n",
        ),
        schema = BENCH_SCHEMA,
        dataset = dataset,
        samples = samples,
        gen_seconds = gen_seconds,
        samples_per_sec = samples_per_sec,
        eval_sets = eval_sets,
        seeds_per_set = seeds_per_set,
        ls = legacy.seconds,
        le = legacy.evals_per_sec,
        ss = store.seconds,
        se = store.evals_per_sec,
        ks = kernel.seconds,
        ke = kernel.evals_per_sec,
        speedup = speedup,
        kernel_speedup = kernel_speedup,
        snap_bytes = snap.bytes,
        v2p = snap.v2_parse_seconds,
        v3p = snap.v3_parse_seconds,
        v3v = snap.v3_view_seconds,
        seeds_identical = seeds_identical,
        arena_bytes = arena_bytes,
        index_entries = index_entries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale_and_writes_json() {
        let dir = std::env::temp_dir().join(format!("imc-bench-ric-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let options = ExpOptions {
            scale: 0.2,
            out_dir: Some(dir.clone()),
            ..ExpOptions::smoke()
        };
        run(&options).unwrap();
        let json = std::fs::read_to_string(dir.join("BENCH_ric.json")).unwrap();
        assert!(json.contains(BENCH_SCHEMA));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"kernel\""));
        assert!(json.contains("\"v3_view_seconds\""));
        assert!(json.contains("\"seeds_identical\": true"));
        assert!(json.contains("\"arena_bytes\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
