//! Fig. 7 — CPU runtime of the proposed algorithms vs `k`.
//!
//! Expected shape (paper): MAF ≪ UBG, MAF nearly flat in `k` (one pass
//! plus a sort) while UBG grows with `k` (k greedy rounds); MB slower than
//! both by a wide margin (it solves `O(|V|)` subproblems), timing out on
//! the largest network.
//!
//! 7(a): bounded thresholds (UBG / MAF / MB); 7(b): regular thresholds
//! (UBG / MAF).

use crate::experiments::ExpOptions;
use crate::harness::{build_instance, dataset_graph, run_method, Formation, Method};
use crate::report::{fmt_secs, Table};
use imc_community::ThresholdPolicy;
use imc_core::MaxrAlgorithm;
use imc_datasets::DatasetId;
use std::time::Duration;

/// Runs the experiment and prints/writes the table.
pub fn run(options: &ExpOptions) -> std::io::Result<()> {
    let ks: &[usize] = if options.quick {
        &[5, 20]
    } else {
        &[5, 10, 20, 50]
    };
    let datasets: &[(DatasetId, f64)] = if options.quick {
        &[(DatasetId::WikiVote, 0.15)]
    } else {
        &[(DatasetId::WikiVote, 0.3), (DatasetId::Epinions, 0.2)]
    };
    let mb_limit = Duration::from_secs(if options.quick { 30 } else { 300 });

    // Panel (a): bounded thresholds — UBG, MAF, MB.
    let mut table_a = Table::new(
        "Fig 7a - runtime seconds vs k (bounded h=2)",
        &["dataset", "k", "method", "seconds"],
    );
    for &(dataset, ds_scale) in datasets {
        let graph = dataset_graph(dataset, ds_scale * options.scale, options.seed);
        let instance = build_instance(
            &graph,
            Formation::Louvain,
            8,
            ThresholdPolicy::Constant(2),
            options.seed,
        );
        for &k in ks {
            for method in [
                Method::Imc(MaxrAlgorithm::Ubg),
                Method::Imc(MaxrAlgorithm::Maf),
                Method::Imc(MaxrAlgorithm::Mb),
            ] {
                let limit = if matches!(method, Method::Imc(MaxrAlgorithm::Mb)) {
                    mb_limit
                } else {
                    Duration::from_secs(900)
                };
                let run = run_method(
                    &instance,
                    method,
                    k,
                    options.seed,
                    options.max_samples,
                    limit,
                );
                let cell = if run.timed_out && run.seeds.is_empty() {
                    "timeout".to_string()
                } else {
                    fmt_secs(run.elapsed)
                };
                table_a.push_row(vec![
                    imc_datasets::spec(dataset).name.to_string(),
                    k.to_string(),
                    method.name().to_string(),
                    cell,
                ]);
            }
        }
    }
    table_a.emit(options.out_dir.as_deref())?;

    // Panel (b): regular thresholds — UBG, MAF.
    let mut table_b = Table::new(
        "Fig 7b - runtime seconds vs k (regular thresholds)",
        &["dataset", "k", "method", "seconds"],
    );
    for &(dataset, ds_scale) in datasets {
        let graph = dataset_graph(dataset, ds_scale * options.scale, options.seed);
        let instance = build_instance(
            &graph,
            Formation::Louvain,
            8,
            ThresholdPolicy::Fraction(0.5),
            options.seed,
        );
        for &k in ks {
            for method in [
                Method::Imc(MaxrAlgorithm::Ubg),
                Method::Imc(MaxrAlgorithm::Maf),
            ] {
                let run = run_method(
                    &instance,
                    method,
                    k,
                    options.seed,
                    options.max_samples,
                    Duration::from_secs(900),
                );
                table_b.push_row(vec![
                    imc_datasets::spec(dataset).name.to_string(),
                    k.to_string(),
                    method.name().to_string(),
                    fmt_secs(run.elapsed),
                ]);
            }
        }
    }
    table_b.emit(options.out_dir.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        let options = ExpOptions::smoke();
        run(&options).unwrap();
    }
}
