//! `imc-bench` — regenerate the paper's tables and figures.
//!
//! ```text
//! imc-bench <experiment> [--scale F] [--quick] [--runs N] [--seed N] [--out DIR]
//!           [--trace FILE] [--metrics-out FILE]
//!
//! experiments:
//!   table1            dataset statistics (Table I)
//!   fig4              quality vs community structure and size cap s
//!   fig5              benefit vs k, regular thresholds
//!   fig6              benefit vs k, bounded thresholds (h = 2)
//!   fig7              runtime vs k
//!   fig8              UBG sandwich ratio vs k
//!   ablation-samples  quality vs |R|
//!   ablation-btd      BT^(3) on a threshold-3 instance
//!   ablation-nonsub   submodularity violation rate per threshold regime
//!   ablation-ratios   empirical ratios vs the exact MAXR optimum
//!   ric               RicStore microbenchmarks (writes BENCH_ric.json)
//!   solver            solve-engine strategies: sequential vs lazy vs parallel
//!                     (writes BENCH_solver.json)
//!   all               everything above
//!
//! perf-gate [--baseline-dir DIR] [--candidate-dir DIR] [--tolerance F]
//!           [--report FILE] [--quick]
//!   compare candidate BENCH_ric.json/BENCH_solver.json against the
//!   committed baselines; exit nonzero on a wall-time regression past the
//!   tolerance (default 0.25) or on seeds_identical=false. --quick first
//!   regenerates quick-mode bench files into the candidate dir (a temp
//!   dir when none is given).
//! ```

use imc_bench::experiments::{self, ExpOptions};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!(
            "usage: imc-bench <experiment> [--scale F] [--quick] [--runs N] [--seed N] [--out DIR] \
             [--trace FILE] [--metrics-out FILE]"
        );
        eprintln!("experiments: table1 fig4 fig5 fig6 fig7 fig8 ablation-samples ablation-btd ablation-nonsub ablation-ratios ric solver all");
        return ExitCode::FAILURE;
    };
    if command == "perf-gate" {
        return perf_gate_main(&args[1..]);
    }
    let mut options = ExpOptions::default();
    let mut metrics_out: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => options.quick = true,
            "--trace" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    return usage_error("--trace expects a file path");
                };
                if let Err(e) = imc_obs::trace::set_sink_path(std::path::Path::new(path)) {
                    eprintln!("error: cannot open trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = match args.get(i) {
                    Some(v) => Some(PathBuf::from(v)),
                    None => return usage_error("--metrics-out expects a file path"),
                };
            }
            "--scale" => {
                i += 1;
                options.scale = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage_error("--scale expects a number"),
                };
            }
            "--runs" => {
                i += 1;
                options.runs = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage_error("--runs expects an integer"),
                };
            }
            "--seed" => {
                i += 1;
                options.seed = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage_error("--seed expects an integer"),
                };
            }
            "--out" => {
                i += 1;
                options.out_dir = match args.get(i) {
                    Some(v) => Some(PathBuf::from(v)),
                    None => return usage_error("--out expects a directory"),
                };
            }
            "--max-samples" => {
                i += 1;
                options.max_samples = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage_error("--max-samples expects an integer"),
                };
            }
            "--grade-budget" => {
                i += 1;
                options.grade_budget = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage_error("--grade-budget expects an integer"),
                };
            }
            other => return usage_error(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    let started = std::time::Instant::now();
    let result = match command.as_str() {
        "table1" => experiments::table1::run(&options),
        "fig4" => experiments::fig4::run(&options),
        "fig5" => experiments::fig5::run(&options),
        "fig6" => experiments::fig6::run(&options),
        "fig7" => experiments::fig7::run(&options),
        "fig8" => experiments::fig8::run(&options),
        "ablation-samples" => experiments::ablations::samples(&options),
        "ablation-btd" => experiments::ablations::btd(&options),
        "ablation-nonsub" => experiments::ablations::nonsubmodularity(&options),
        "ablation-ratios" => experiments::ablations::ratios(&options),
        "ric" => experiments::ric::run(&options),
        "solver" => experiments::solver::run(&options),
        "all" => experiments::table1::run(&options)
            .and_then(|_| experiments::fig4::run(&options))
            .and_then(|_| experiments::fig5::run(&options))
            .and_then(|_| experiments::fig6::run(&options))
            .and_then(|_| experiments::fig7::run(&options))
            .and_then(|_| experiments::fig8::run(&options))
            .and_then(|_| experiments::ablations::samples(&options))
            .and_then(|_| experiments::ablations::btd(&options))
            .and_then(|_| experiments::ablations::nonsubmodularity(&options))
            .and_then(|_| experiments::ablations::ratios(&options))
            .and_then(|_| experiments::ric::run(&options))
            .and_then(|_| experiments::solver::run(&options)),
        other => return usage_error(&format!("unknown experiment {other}")),
    };
    // Dump the accumulated solver metrics (same registry the daemon
    // exposes over GET /metrics) even when the experiment failed partway:
    // a partial exposition is exactly what post-mortems want.
    if let Some(path) = metrics_out {
        let text = imc_obs::encode::to_prometheus(imc_obs::global());
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error: cannot write metrics to {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[{command}] wrote metrics to {}", path.display());
    }
    imc_obs::trace::clear_sink();
    match result {
        Ok(()) => {
            eprintln!(
                "[{command}] done in {:.1}s",
                started.elapsed().as_secs_f64()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[{command}] failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

/// `imc-bench perf-gate`: flag parsing + the gate run. With `--quick`,
/// regenerates quick-mode bench files into the candidate dir first so a
/// single command is a complete CI job.
fn perf_gate_main(args: &[String]) -> ExitCode {
    use imc_bench::perfgate::{self, GateOptions};
    let mut options = GateOptions::default();
    let mut quick = false;
    let mut candidate_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--baseline-dir" => {
                i += 1;
                options.baseline_dir = match args.get(i) {
                    Some(v) => PathBuf::from(v),
                    None => return usage_error("--baseline-dir expects a directory"),
                };
            }
            "--candidate-dir" => {
                i += 1;
                candidate_dir = match args.get(i) {
                    Some(v) => Some(PathBuf::from(v)),
                    None => return usage_error("--candidate-dir expects a directory"),
                };
            }
            "--tolerance" => {
                i += 1;
                options.tolerance = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage_error("--tolerance expects a number"),
                };
            }
            "--report" => {
                i += 1;
                options.report_path = match args.get(i) {
                    Some(v) => Some(PathBuf::from(v)),
                    None => return usage_error("--report expects a file path"),
                };
            }
            other => return usage_error(&format!("unknown perf-gate flag {other}")),
        }
        i += 1;
    }
    options.candidate_dir = match candidate_dir {
        Some(dir) => dir,
        None if quick => std::env::temp_dir().join(format!("imc-perfgate-{}", std::process::id())),
        None => return usage_error("perf-gate needs --candidate-dir (or --quick)"),
    };
    if quick {
        if let Err(e) = std::fs::create_dir_all(&options.candidate_dir) {
            eprintln!("error: cannot create candidate dir: {e}");
            return ExitCode::FAILURE;
        }
        let bench = ExpOptions {
            quick: true,
            out_dir: Some(options.candidate_dir.clone()),
            ..ExpOptions::default()
        };
        if let Err(e) =
            experiments::ric::run(&bench).and_then(|()| experiments::solver::run(&bench))
        {
            eprintln!("[perf-gate] quick bench run failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    match perfgate::run(&options) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            if outcome.passed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("[perf-gate] failed: {e}");
            ExitCode::FAILURE
        }
    }
}
