//! Experiment harness for the IMC reproduction.
//!
//! Each module under [`experiments`] regenerates one table or figure of
//! the paper (see `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record). The `imc-bench` binary exposes them as
//! subcommands:
//!
//! ```text
//! cargo run --release -p imc-bench -- table1
//! cargo run --release -p imc-bench -- fig5 --quick
//! cargo run --release -p imc-bench -- all --out results/
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod perfgate;
pub mod report;
