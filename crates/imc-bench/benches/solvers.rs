//! Criterion bench: MAXR solver cost on a fixed RIC collection —
//! the microscopic version of the paper's Fig. 7 runtime comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imc_community::{CommunitySet, ThresholdPolicy};
use imc_core::maxr::engine::{greedy_c_with, greedy_nu_with};
use imc_core::{
    BtSolver, MafSolver, MaxrSolver, RicCollection, RicSampler, SolveRequest, SolveStrategy,
    UbgSolver,
};
use imc_datasets::DatasetId;
use imc_graph::WeightModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fixture() -> (CommunitySet, RicCollection) {
    let graph = imc_datasets::generate(DatasetId::Facebook, 0.5, 1)
        .reweighted(WeightModel::WeightedCascade);
    let communities = CommunitySet::builder(&graph)
        .louvain(7)
        .split_larger_than(8)
        .threshold(ThresholdPolicy::Constant(2))
        .build()
        .unwrap();
    let sampler = RicSampler::new(&graph, &communities);
    let mut col = RicCollection::for_sampler(&sampler);
    let mut rng = StdRng::seed_from_u64(5);
    col.extend_with(&sampler, 3_000, &mut rng);
    (communities, col)
}

fn bench_solvers(c: &mut Criterion) {
    let (communities, col) = fixture();
    let mut group = c.benchmark_group("maxr_solvers");
    group.sample_size(10);
    for k in [5usize, 20] {
        group.bench_with_input(BenchmarkId::new("greedy_c_sequential", k), &k, |b, &k| {
            b.iter(|| black_box(greedy_c_with(&col, k, SolveStrategy::Sequential)));
        });
        group.bench_with_input(BenchmarkId::new("greedy_c_lazy", k), &k, |b, &k| {
            b.iter(|| black_box(greedy_c_with(&col, k, SolveStrategy::Lazy)));
        });
        group.bench_with_input(BenchmarkId::new("greedy_c_parallel4", k), &k, |b, &k| {
            b.iter(|| {
                black_box(greedy_c_with(
                    &col,
                    k,
                    SolveStrategy::Parallel { threads: 4 },
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("greedy_nu_celf", k), &k, |b, &k| {
            b.iter(|| black_box(greedy_nu_with(&col, k, SolveStrategy::Lazy)));
        });
        group.bench_with_input(BenchmarkId::new("ubg", k), &k, |b, &k| {
            b.iter(|| black_box(UbgSolver.solve(&col, &SolveRequest::new(k)).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("maf", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    MafSolver::new(&communities)
                        .solve(&col, &SolveRequest::new(k))
                        .unwrap(),
                )
            });
        });
    }
    group.finish();

    // BT is far slower (O(|V|) subproblems); bench it separately with a
    // pivot cap so the bench suite stays fast.
    let mut group = c.benchmark_group("bt");
    group.sample_size(10);
    group.bench_function("bt_capped_100_pivots_k5", |b| {
        b.iter(|| {
            black_box(
                BtSolver {
                    candidate_limit: Some(100),
                }
                .solve(&col, &SolveRequest::new(5))
                .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
