//! Criterion bench: MAXR solver cost on a fixed RIC collection —
//! the microscopic version of the paper's Fig. 7 runtime comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imc_community::{CommunitySet, ThresholdPolicy};
use imc_core::maxr::bt::{bt, BtConfig};
use imc_core::maxr::greedy::{greedy_c, greedy_nu};
use imc_core::maxr::maf::maf;
use imc_core::maxr::ubg::ubg;
use imc_core::{RicCollection, RicSampler};
use imc_datasets::DatasetId;
use imc_graph::WeightModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fixture() -> (CommunitySet, RicCollection) {
    let graph = imc_datasets::generate(DatasetId::Facebook, 0.5, 1)
        .reweighted(WeightModel::WeightedCascade);
    let communities = CommunitySet::builder(&graph)
        .louvain(7)
        .split_larger_than(8)
        .threshold(ThresholdPolicy::Constant(2))
        .build()
        .unwrap();
    let sampler = RicSampler::new(&graph, &communities);
    let mut col = RicCollection::for_sampler(&sampler);
    let mut rng = StdRng::seed_from_u64(5);
    col.extend_with(&sampler, 3_000, &mut rng);
    (communities, col)
}

fn bench_solvers(c: &mut Criterion) {
    let (communities, col) = fixture();
    let mut group = c.benchmark_group("maxr_solvers");
    group.sample_size(10);
    for k in [5usize, 20] {
        group.bench_with_input(BenchmarkId::new("greedy_c", k), &k, |b, &k| {
            b.iter(|| black_box(greedy_c(&col, k)));
        });
        group.bench_with_input(BenchmarkId::new("greedy_nu_celf", k), &k, |b, &k| {
            b.iter(|| black_box(greedy_nu(&col, k)));
        });
        group.bench_with_input(BenchmarkId::new("ubg", k), &k, |b, &k| {
            b.iter(|| black_box(ubg(&col, k)));
        });
        group.bench_with_input(BenchmarkId::new("maf", k), &k, |b, &k| {
            b.iter(|| black_box(maf(&communities, &col, k, 1)));
        });
    }
    group.finish();

    // BT is far slower (O(|V|) subproblems); bench it separately with a
    // pivot cap so the bench suite stays fast.
    let mut group = c.benchmark_group("bt");
    group.sample_size(10);
    group.bench_function("bt_capped_100_pivots_k5", |b| {
        b.iter(|| {
            black_box(bt(
                &col,
                5,
                &BtConfig {
                    depth: 2,
                    candidate_limit: Some(100),
                },
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
