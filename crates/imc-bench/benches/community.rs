//! Criterion bench: Louvain community detection across generator families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imc_community::louvain::louvain;
use imc_graph::generators::{barabasi_albert, planted_partition, watts_strogatz};
use imc_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(1);
    vec![
        (
            "planted_2k",
            planted_partition(2_000, 100, 0.2, 0.001, &mut rng).graph,
        ),
        ("ba_2k", barabasi_albert(2_000, 4, &mut rng)),
        ("ws_2k", watts_strogatz(2_000, 5, 0.1, &mut rng)),
    ]
}

fn bench_louvain(c: &mut Criterion) {
    let mut group = c.benchmark_group("louvain");
    group.sample_size(10);
    for (name, graph) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            b.iter(|| black_box(louvain(g, 42)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_louvain);
criterion_main!(benches);
