//! Criterion bench: forward diffusion and benefit estimation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imc_community::{CommunitySet, ThresholdPolicy};
use imc_datasets::DatasetId;
use imc_diffusion::benefit::realized_benefit;
use imc_diffusion::{DiffusionModel, IndependentCascade, LinearThreshold};
use imc_graph::{NodeId, WeightModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let graph = imc_datasets::generate(DatasetId::WikiVote, 0.3, 1)
        .reweighted(WeightModel::WeightedCascade);
    let seeds: Vec<NodeId> = (0..10).map(NodeId::new).collect();
    let mut group = c.benchmark_group("diffusion_simulate");
    group.sample_size(20);
    for (name, model) in [
        ("ic", &IndependentCascade as &dyn DiffusionModel),
        ("lt", &LinearThreshold as &dyn DiffusionModel),
    ] {
        group.bench_with_input(BenchmarkId::new(name, graph.node_count()), &(), |b, ()| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(model.simulate(&graph, &seeds, &mut rng).unwrap()));
        });
    }
    group.finish();
}

fn bench_benefit_evaluation(c: &mut Criterion) {
    let graph = imc_datasets::generate(DatasetId::WikiVote, 0.3, 1)
        .reweighted(WeightModel::WeightedCascade);
    let communities = CommunitySet::builder(&graph)
        .louvain(3)
        .split_larger_than(8)
        .threshold(ThresholdPolicy::Constant(2))
        .build()
        .unwrap();
    let seeds: Vec<NodeId> = (0..10).map(NodeId::new).collect();
    let mut group = c.benchmark_group("benefit");
    group.sample_size(20);
    group.bench_function("realized_benefit", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let active = IndependentCascade
            .simulate(&graph, &seeds, &mut rng)
            .unwrap();
        b.iter(|| black_box(realized_benefit(&communities, &active)));
    });
    group.finish();
}

criterion_group!(benches, bench_models, bench_benefit_evaluation);
criterion_main!(benches);
