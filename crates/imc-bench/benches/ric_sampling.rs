//! Criterion bench: RIC sample generation throughput (Alg. 1) across
//! community size caps — the inner loop of every IMC solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imc_community::{BenefitPolicy, CommunitySet, ThresholdPolicy};
use imc_core::{RicCollection, RicSampler};
use imc_datasets::DatasetId;
use imc_graph::WeightModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ric_generation(c: &mut Criterion) {
    let graph = imc_datasets::generate(DatasetId::Facebook, 1.0, 1)
        .reweighted(WeightModel::WeightedCascade);
    let mut group = c.benchmark_group("ric_sample");
    group.sample_size(20);
    for cap in [4usize, 8, 16, 32] {
        let communities = CommunitySet::builder(&graph)
            .louvain(7)
            .split_larger_than(cap)
            .threshold(ThresholdPolicy::Constant(2))
            .benefit(BenefitPolicy::Population)
            .build()
            .unwrap();
        let sampler = RicSampler::new(&graph, &communities);
        group.bench_with_input(BenchmarkId::new("facebook_s", cap), &cap, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(sampler.sample(&mut rng)));
        });
    }
    group.finish();
}

fn bench_collection_build(c: &mut Criterion) {
    let graph = imc_datasets::generate(DatasetId::Facebook, 0.5, 1)
        .reweighted(WeightModel::WeightedCascade);
    let communities = CommunitySet::builder(&graph)
        .louvain(7)
        .split_larger_than(8)
        .threshold(ThresholdPolicy::Constant(2))
        .build()
        .unwrap();
    let sampler = RicSampler::new(&graph, &communities);
    let mut group = c.benchmark_group("ric_collection");
    group.sample_size(10);
    group.bench_function("extend_1000", |b| {
        b.iter(|| {
            let mut col = RicCollection::for_sampler(&sampler);
            let mut rng = StdRng::seed_from_u64(9);
            col.extend_with(&sampler, 1000, &mut rng);
            black_box(col.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ric_generation, bench_collection_build);
criterion_main!(benches);
