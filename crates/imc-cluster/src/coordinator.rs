//! The scatter-gather coordinator: runs the five MAXR solvers over a
//! fleet of shard daemons and serves the result on the same
//! protocol-v2 wire format a single daemon speaks.
//!
//! Every solver recipe here mirrors its single-node twin *exactly* —
//! same engine loops ([`greedy_c_over`] / [`greedy_nu_over`]), same
//! tie-breaks, same padding rule, same evaluation accounting — with the
//! local [`CoverageState`](imc_core::CoverageState) swapped for a
//! [`ClusterSource`] and whole-set scoring swapped for chained
//! `shard_eval` fans. Seed sets and evaluation counts are therefore
//! bitwise/count identical to [`MaxrAlgorithm::solve`] on the union
//! collection (asserted by `tests/cluster_equivalence.rs` and the CI
//! cluster smoke job).
//!
//! Shard failures are survived, not fatal. Transient transport errors
//! are retried under the configured [`RetryPolicy`] (backoff jitter
//! derived from the request seed, so the schedule is reproducible).
//! When a shard stays down past the retry budget *and* fails a
//! confirmation `ping` probe, the coordinator marks it dead on the
//! shared [`HealthBoard`], reruns the request over the surviving shards
//! in partition order, and flags the answer `approximate: true` with
//! `effective_samples` / `lost_shards` fields. A recovered shard
//! rejoins at the next request, never mid-solve. Only when no shard
//! survives (or degraded mode is disabled) does the client see a
//! `shard_unavailable` error naming the dead shard.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use imc_core::maxr::engine::{greedy_c_over, greedy_nu_over};
use imc_core::{
    GainSource, GreedyRun, ImcError, ImcInstance, MaxrAlgorithm, SolveRequest, SolveStrategy,
};
use imc_graph::NodeId;
use imc_service::client::{ClientConfig, ClusterError, PeerClient, RetryPolicy};
use imc_service::json::{self, ObjectBuilder, Value};
use imc_service::protocol::{self, ErrorCode, Request, SolveMode, SolveTuning};
use imc_service::server::Shutdown;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::health::{self, HealthBoard, HealthMonitor, ShardState};
use crate::obs;
use crate::source::{field_f64, field_u64, pad_with_appearance, ClusterSource};

/// A failure of a cluster solve.
#[derive(Debug)]
pub enum CoordError {
    /// A shard RPC failed; the inner error names the shard address.
    Shard(ClusterError),
    /// The solver itself rejected the request (bad budget, thresholds
    /// over the BT bound, …) — same failures a single node reports.
    Solver(ImcError),
    /// The request asks for something the distributed path does not
    /// implement (parallel engine strategy, IMCAF, BT depth > 2).
    Unsupported(String),
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::Shard(e) => write!(f, "{e}"),
            CoordError::Solver(e) => write!(f, "{e}"),
            CoordError::Unsupported(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CoordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoordError::Shard(e) => Some(e),
            CoordError::Solver(e) => Some(e),
            CoordError::Unsupported(_) => None,
        }
    }
}

impl From<ClusterError> for CoordError {
    fn from(e: ClusterError) -> Self {
        CoordError::Shard(e)
    }
}

impl From<ImcError> for CoordError {
    fn from(e: ImcError) -> Self {
        CoordError::Solver(e)
    }
}

impl CoordError {
    /// The wire error code this failure maps to.
    pub fn error_code(&self) -> ErrorCode {
        match self {
            CoordError::Shard(_) => ErrorCode::ShardUnavailable,
            CoordError::Solver(e) => protocol::error_code_for(e),
            CoordError::Unsupported(_) => ErrorCode::InvalidParameter,
        }
    }
}

/// Result of a distributed solve, mirroring the fields of the
/// single-node [`SolveReport`](imc_core::SolveReport) plus the cluster
/// snapshot coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Chosen seeds in pick order — bitwise identical to the
    /// single-node solve over the union collection.
    pub seeds: Vec<NodeId>,
    /// Union-collection samples influenced by `seeds`.
    pub influenced_samples: u64,
    /// The estimator `ĉ_R(seeds)` over the union collection.
    pub estimate: f64,
    /// Marginal-gain evaluation count — identical to the single-node
    /// engine's count.
    pub evaluations: u64,
    /// Total samples across all shards.
    pub samples: u64,
    /// The shard collection generation the solve ran against.
    pub generation: u64,
}

/// Chained totals of one `shard_eval` fan across all shards.
struct ShardTotals {
    influenced: u64,
    nu_acc: f64,
    samples: u64,
    generation: u64,
    pivot_score: u64,
}

/// Scores a seed set across every shard: integer totals sum; the ν_R
/// accumulator chains shard-to-shard in partition order (the wire
/// `carry` field), reproducing the single-node fold bitwise.
fn shard_eval_totals(
    peers: &mut [PeerClient],
    seeds: &[NodeId],
    pivot: Option<u32>,
) -> Result<ShardTotals, ClusterError> {
    let seeds_field: Vec<u64> = seeds.iter().map(|s| u64::from(s.raw())).collect();
    let mut totals = ShardTotals {
        influenced: 0,
        nu_acc: 0.0,
        samples: 0,
        generation: 0,
        pivot_score: 0,
    };
    obs::scatter_total().inc();
    for (i, peer) in peers.iter_mut().enumerate() {
        let mut req = ObjectBuilder::new()
            .field("op", "shard_eval")
            .field("seeds", seeds_field.clone())
            .field("carry", totals.nu_acc);
        if let Some(u) = pivot {
            req = req.field("pivot", u);
        }
        let line = json::to_string(&req.build());
        let addr = peer.addr();
        let _rpc = imc_obs::Span::enter_with("rpc_client", format!("shard_eval {addr}"));
        let start = Instant::now();
        let result = peer.request_stateless(&line);
        let secs = start.elapsed().as_secs_f64();
        obs::shard_rpc_seconds().observe(secs);
        obs::rpc_duration_seconds("shard_eval", &addr.to_string()).observe(secs);
        let resp = match result {
            Ok(v) => v,
            Err(e) => {
                obs::shard_errors_total().inc();
                return Err(e);
            }
        };
        totals.influenced += field_u64(&resp, "influenced", peer)?;
        totals.nu_acc = field_f64(&resp, "nu_acc", peer)?;
        totals.samples += field_u64(&resp, "samples", peer)?;
        if pivot.is_some() {
            totals.pivot_score += field_u64(&resp, "pivot_score", peer)?;
        }
        let generation = field_u64(&resp, "generation", peer)?;
        if i == 0 {
            totals.generation = generation;
        } else if generation != totals.generation {
            return Err(ClusterError::Protocol {
                addr: peer.addr(),
                detail: format!(
                    "generation {generation} disagrees with shard 0's {}",
                    totals.generation
                ),
            });
        }
    }
    Ok(totals)
}

/// `ĉ_R(S)` from summed shard counts — same expression (and evaluation
/// order) as `RicStore::estimate`.
fn estimate_from(instance: &ImcInstance, influenced: u64, samples: u64) -> f64 {
    if samples == 0 {
        return 0.0;
    }
    instance.total_benefit() * influenced as f64 / samples as f64
}

/// `ν_R(S)` from the chained shard accumulator — same expression as
/// `RicStore::nu_estimate`.
fn nu_estimate_from(instance: &ImcInstance, nu_acc: f64, samples: u64) -> f64 {
    if samples == 0 {
        return 0.0;
    }
    instance.total_benefit() * nu_acc / samples as f64
}

/// Which engine objective a distributed greedy run evaluates.
enum Objective {
    C,
    Nu,
}

/// One full engine greedy over a fresh cluster session; fails if any
/// shard dropped mid-run (the engine itself has no error channel).
fn greedy_over_cluster(
    peers: &mut [PeerClient],
    k: usize,
    strategy: SolveStrategy,
    objective: Objective,
) -> Result<GreedyRun, CoordError> {
    let mut src = ClusterSource::open(peers, None)?;
    let (run, telemetry) = match objective {
        Objective::C => greedy_c_over(&mut src, k, strategy),
        Objective::Nu => greedy_nu_over(&mut src, k, strategy),
    };
    let failure = src.take_error();
    src.close();
    drop(src);
    if let Some(e) = failure {
        return Err(CoordError::Shard(e));
    }
    telemetry.publish();
    Ok(run)
}

/// Seals a report: scores the final seed set across shards and derives
/// the estimator exactly as the single-node `finish` step does.
fn finish(
    instance: &ImcInstance,
    peers: &mut [PeerClient],
    seeds: Vec<NodeId>,
    evaluations: u64,
) -> Result<ClusterReport, CoordError> {
    let totals = shard_eval_totals(peers, &seeds, None)?;
    Ok(ClusterReport {
        estimate: estimate_from(instance, totals.influenced, totals.samples),
        influenced_samples: totals.influenced,
        samples: totals.samples,
        generation: totals.generation,
        seeds,
        evaluations,
    })
}

/// MAF's two candidate sets (Alg. 3), computed from cluster-summed
/// community frequencies and appearance counts with the identical RNG
/// stream, walk order and padding as the single-node `maf_with`.
fn maf_candidates(
    instance: &ImcInstance,
    peers: &mut [PeerClient],
    k: usize,
    seed: u64,
) -> Result<(Vec<NodeId>, Vec<NodeId>), CoordError> {
    let mut src = ClusterSource::open(peers, None)?;
    let k = k.min(src.node_count());
    let mut rng = StdRng::seed_from_u64(seed);

    let freq = src.community_frequencies().to_vec();
    let mut order: Vec<usize> = (0..freq.len()).collect();
    order.sort_by(|&a, &b| freq[b].cmp(&freq[a]).then(a.cmp(&b)));
    let communities = instance.communities();
    let mut s1: Vec<NodeId> = Vec::with_capacity(k);
    for ci in order {
        let community = communities.get(imc_community::CommunityId::new(ci as u32));
        let h = community.threshold as usize;
        if h > community.population() || s1.len() + h > k {
            continue;
        }
        let mut members = community.members.clone();
        members.shuffle(&mut rng);
        s1.extend(members.into_iter().take(h));
        if s1.len() == k {
            break;
        }
    }
    src.pad_seeds(&mut s1, k);

    let counts = src.appearance().to_vec();
    let mut nodes: Vec<u32> = (0..src.node_count() as u32).collect();
    nodes.sort_by(|&a, &b| counts[b as usize].cmp(&counts[a as usize]).then(a.cmp(&b)));
    let s2: Vec<NodeId> = nodes.into_iter().take(k).map(NodeId::new).collect();
    src.close();
    Ok((s1, s2))
}

/// MAF arbitration: the candidate influencing more union samples (ties
/// to `S1`, as on a single node). Returns the winner and MAF's fixed
/// evaluation count of 2.
fn solve_maf(
    instance: &ImcInstance,
    peers: &mut [PeerClient],
    k: usize,
    seed: u64,
) -> Result<(Vec<NodeId>, u64), CoordError> {
    let (s1, s2) = maf_candidates(instance, peers, k, seed)?;
    let t1 = shard_eval_totals(peers, &s1, None)?;
    let t2 = shard_eval_totals(peers, &s2, None)?;
    let chose_s1 = t1.influenced >= t2.influenced;
    Ok((if chose_s1 { s1 } else { s2 }, 2))
}

/// Distributed BT (Alg. 4, depth 2): per-pivot inner greedy over the
/// pivot-reduced cluster session, pivot scores summed across shards,
/// winner reduced in candidate order with ties to the smaller pivot id.
fn solve_bt(peers: &mut [PeerClient], k: usize) -> Result<(Vec<NodeId>, u64), CoordError> {
    // Snapshot the union appearance counts, then close — each pivot
    // gets its own reduced session and the winner is padded from the
    // snapshot, so no full-store session stays open across the loop.
    let appearance = {
        let mut src = ClusterSource::open(peers, None)?;
        let snapshot = src.appearance().to_vec();
        src.close();
        snapshot
    };
    let k = k.min(appearance.len()).max(1);

    let mut by_count: Vec<(u64, u32)> = appearance
        .iter()
        .enumerate()
        .filter_map(|(v, &c)| (c > 0).then_some((c, v as u32)))
        .collect();
    by_count.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let candidates: Vec<u32> = by_count.into_iter().map(|(_, v)| v).collect();

    let mut evaluations = candidates.len() as u64;
    let mut best: Option<(u64, u32, Vec<NodeId>)> = None;
    for &u in &candidates {
        let (kset, inner_evals) = if k == 1 {
            (vec![NodeId::new(u)], 0)
        } else {
            let mut src = ClusterSource::open(peers, Some(u))?;
            let (run, _) = greedy_c_over(&mut src, k - 1, SolveStrategy::Lazy);
            let failure = src.take_error();
            src.close();
            drop(src);
            if let Some(e) = failure {
                return Err(CoordError::Shard(e));
            }
            let mut kset = vec![NodeId::new(u)];
            for h in run.seeds {
                if h != NodeId::new(u) && kset.len() < k {
                    kset.push(h);
                }
            }
            (kset, run.evaluations)
        };
        evaluations += inner_evals;
        let totals = shard_eval_totals(peers, &kset, Some(u))?;
        let score = totals.pivot_score;
        let better = match &best {
            None => true,
            Some((bs, bu, _)) => score > *bs || (score == *bs && u < *bu),
        };
        if better {
            best = Some((score, u, kset));
        }
    }

    let mut seeds = best.map(|(_, _, kset)| kset).unwrap_or_default();
    pad_with_appearance(&mut seeds, k, &appearance);
    Ok((seeds, evaluations))
}

/// Rejects BT/MB on instances whose thresholds exceed the bound — the
/// same check (and error) as the single-node dispatch.
fn require_bounded(instance: &ImcInstance, bound: u32) -> Result<(), CoordError> {
    let max_threshold = instance.max_threshold();
    if max_threshold > bound {
        return Err(CoordError::Solver(ImcError::ThresholdTooLarge {
            bound,
            max_threshold,
        }));
    }
    Ok(())
}

/// Solves MAXR across the shard fleet behind `peers`.
///
/// The answer — seeds, estimator and evaluation count — is identical to
/// [`MaxrAlgorithm::solve`] with the same request over the union of the
/// shard collections. Restrictions of the distributed path:
///
/// * `strategy` must be `Sequential` or `Lazy` (the parallel engine
///   splits per-shard timing, which the scatter layer already does);
/// * BT runs at depth 2 only (`req.depth` and `Btd(d)` beyond 2 are
///   rejected as [`CoordError::Unsupported`]).
///
/// # Errors
///
/// [`CoordError::Shard`] when a shard dies mid-solve (the error names
/// it), [`CoordError::Solver`] for the same validation failures a local
/// solve reports, [`CoordError::Unsupported`] for the restrictions
/// above.
pub fn cluster_solve(
    instance: &ImcInstance,
    peers: &mut [PeerClient],
    algo: MaxrAlgorithm,
    req: &SolveRequest,
) -> Result<ClusterReport, CoordError> {
    instance.validate_budget(req.k)?;
    if let SolveStrategy::Parallel { .. } = req.strategy {
        return Err(CoordError::Unsupported(
            "parallel engine strategy is not supported by the cluster coordinator \
             (shard fan-out already parallelizes; use mode sequential or lazy)"
                .to_string(),
        ));
    }
    match algo {
        MaxrAlgorithm::Greedy => {
            let run = greedy_over_cluster(peers, req.k, req.strategy, Objective::C)?;
            finish(instance, peers, run.seeds, run.evaluations)
        }
        MaxrAlgorithm::Ubg => {
            let nu_run = greedy_over_cluster(peers, req.k, req.strategy, Objective::Nu)?;
            let c_run = greedy_over_cluster(peers, req.k, req.strategy, Objective::C)?;
            let evaluations = nu_run.evaluations + c_run.evaluations;
            let t_nu = shard_eval_totals(peers, &nu_run.seeds, None)?;
            let t_c = shard_eval_totals(peers, &c_run.seeds, None)?;
            let c_of_nu = estimate_from(instance, t_nu.influenced, t_nu.samples);
            let c_of_c = estimate_from(instance, t_c.influenced, t_c.samples);
            let chose_nu = c_of_nu >= c_of_c;
            let (seeds, totals, estimate) = if chose_nu {
                (nu_run.seeds, t_nu, c_of_nu)
            } else {
                (c_run.seeds, t_c, c_of_c)
            };
            Ok(ClusterReport {
                seeds,
                influenced_samples: totals.influenced,
                estimate,
                evaluations,
                samples: totals.samples,
                generation: totals.generation,
            })
        }
        MaxrAlgorithm::Maf => {
            let (seeds, evaluations) = solve_maf(instance, peers, req.k, req.seed)?;
            finish(instance, peers, seeds, evaluations)
        }
        MaxrAlgorithm::Bt | MaxrAlgorithm::Btd(_) => {
            let depth = match algo {
                MaxrAlgorithm::Btd(d) => {
                    if d < 2 {
                        return Err(CoordError::Solver(ImcError::InvalidParameter {
                            name: "bt depth",
                        }));
                    }
                    d
                }
                _ => req.depth,
            };
            if depth != 2 {
                return Err(CoordError::Unsupported(format!(
                    "BT depth {depth} is not supported by the cluster coordinator (only depth 2)"
                )));
            }
            require_bounded(instance, depth)?;
            let (seeds, evaluations) = solve_bt(peers, req.k)?;
            finish(instance, peers, seeds, evaluations)
        }
        MaxrAlgorithm::Mb => {
            require_bounded(instance, 2)?;
            let (maf_seeds, maf_evals) = solve_maf(instance, peers, req.k, req.seed)?;
            let (bt_seeds, bt_evals) = solve_bt(peers, req.k)?;
            let t_maf = shard_eval_totals(peers, &maf_seeds, None)?;
            let t_bt = shard_eval_totals(peers, &bt_seeds, None)?;
            let chose_bt = t_bt.influenced > t_maf.influenced;
            let evaluations = maf_evals + bt_evals + 2;
            let (seeds, totals) = if chose_bt {
                (bt_seeds, t_bt)
            } else {
                (maf_seeds, t_maf)
            };
            Ok(ClusterReport {
                estimate: estimate_from(instance, totals.influenced, totals.samples),
                influenced_samples: totals.influenced,
                samples: totals.samples,
                generation: totals.generation,
                seeds,
                evaluations,
            })
        }
    }
}

/// Coordinator frontend configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Bind address for the coordinator's own listener; port 0 picks an
    /// ephemeral port.
    pub addr: String,
    /// Shard daemon addresses, **in partition order** — the ν_R carry
    /// chain and sample numbering follow this order.
    pub shards: Vec<SocketAddr>,
    /// Timeouts for shard connections.
    pub client: ClientConfig,
    /// Retry schedule for stateless shard requests and for the
    /// probe-before-declaring-dead ladder after a session failure.
    pub retry: RetryPolicy,
    /// Cap on one health-probe (`ping`) round-trip.
    pub probe_timeout: Duration,
    /// Period of the background health prober; `None` disables it
    /// (shards are still probed on demand when requests fail).
    pub probe_interval: Option<Duration>,
    /// When `true` (the default), a solve survives a dead shard by
    /// rerunning over the survivors and flagging the answer
    /// `approximate`. When `false`, a dead shard fails the request with
    /// `shard_unavailable`, as before.
    pub degrade: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            client: ClientConfig::default(),
            retry: RetryPolicy::default(),
            probe_timeout: Duration::from_millis(500),
            probe_interval: None,
            degrade: true,
        }
    }
}

/// Consecutive probe/RPC failures that move a shard Suspect → Dead on
/// the background prober's account. On-demand (mid-solve) declarations
/// go through [`HealthBoard::mark_dead`] directly once the retry budget
/// and a confirmation probe are both exhausted.
const DEAD_THRESHOLD: u32 = 2;

/// A successful request outcome plus its degradation coordinates.
struct Outcome<T> {
    value: T,
    /// Shards declared dead during this request, in topology order.
    lost: Vec<SocketAddr>,
    /// Shards that participated in the successful run.
    participating: usize,
}

/// Runs `op` over the currently-usable shard subset, retrying and
/// degrading per the config. The orchestration invariant: `op` always
/// sees a fresh, contiguous (in partition order) peer slice, and a
/// failed run is rerun **from scratch** — never patched mid-flight — so
/// the surviving-set answer equals a fresh solve configured with
/// exactly those shards.
fn run_resilient<T>(
    config: &CoordinatorConfig,
    board: &HealthBoard,
    seed: u64,
    mut op: impl FnMut(&mut [PeerClient]) -> Result<T, CoordError>,
) -> Result<Outcome<T>, CoordError> {
    // Rejoin phase: fold Recovered shards back in, and give Dead shards
    // one probe's chance to rejoin — always between requests, never
    // mid-solve.
    let mut alive: Vec<SocketAddr> = Vec::with_capacity(board.shards().len());
    let mut lost: Vec<SocketAddr> = Vec::new();
    for &addr in board.shards() {
        match board.state(addr) {
            ShardState::Recovered => {
                board.record_rejoin(addr);
                alive.push(addr);
            }
            ShardState::Dead => {
                if health::probe(addr, config.probe_timeout) {
                    board.record_ok(addr);
                    board.record_rejoin(addr);
                    alive.push(addr);
                } else {
                    lost.push(addr);
                }
            }
            ShardState::Healthy | ShardState::Suspect => alive.push(addr),
        }
    }

    // A flapping shard (probe answers, requests fail) gets at most the
    // retry budget's worth of full reruns before it is declared dead
    // anyway; each other failure permanently shrinks `alive`, so the
    // loop terminates.
    let mut revives_left = config.retry.attempts;
    loop {
        if alive.is_empty() {
            return Err(CoordError::Shard(ClusterError::Connect {
                addr: lost
                    .last()
                    .copied()
                    .unwrap_or_else(|| "0.0.0.0:0".parse().expect("static addr")),
                source: std::io::Error::new(
                    std::io::ErrorKind::NotConnected,
                    "no shard in the topology is reachable",
                ),
            }));
        }
        let mut peers: Vec<PeerClient> = alive
            .iter()
            .map(|&addr| {
                let mut peer = PeerClient::new(addr, config.client, config.retry);
                peer.set_retry_seed(seed);
                peer
            })
            .collect();
        match op(&mut peers) {
            Ok(value) => {
                for &addr in &alive {
                    board.record_ok(addr);
                }
                if !lost.is_empty() {
                    obs::degraded_solves_total().inc();
                }
                return Ok(Outcome {
                    value,
                    lost,
                    participating: alive.len(),
                });
            }
            Err(CoordError::Shard(e)) if e.is_transport() => {
                let addr = e.addr();
                obs::shard_errors_total().inc();
                board.record_failure(addr);
                // The stateless retry budget inside PeerClient is spent;
                // walk the same backoff ladder once more, probing for a
                // recovery (this is what saves session-scoped eval_*
                // failures, which PeerClient never replays).
                let mut recovered = health::probe(addr, config.probe_timeout);
                let mut attempt = 0u32;
                imc_obs::trace::emit(
                    imc_obs::trace::TraceEvent::new("retry_probe")
                        .field("shard", addr.to_string())
                        .field("attempt", u64::from(attempt))
                        .field("recovered", recovered),
                );
                while !recovered {
                    attempt += 1;
                    match config.retry.delay_before(attempt, seed) {
                        Some(delay) => thread::sleep(delay),
                        None => break,
                    }
                    recovered = health::probe(addr, config.probe_timeout);
                    imc_obs::trace::emit(
                        imc_obs::trace::TraceEvent::new("retry_probe")
                            .field("shard", addr.to_string())
                            .field("attempt", u64::from(attempt))
                            .field("recovered", recovered),
                    );
                }
                if recovered && revives_left > 0 {
                    revives_left -= 1;
                    obs::retries_total().inc();
                    board.record_ok(addr);
                    imc_obs::trace::emit(
                        imc_obs::trace::TraceEvent::new("shard_revived")
                            .field("shard", addr.to_string())
                            .field("attempts", u64::from(attempt)),
                    );
                    continue; // rerun over the same shard set
                }
                board.mark_dead(addr);
                imc_obs::trace::emit(
                    imc_obs::trace::TraceEvent::new("shard_dead")
                        .field("shard", addr.to_string())
                        .field("attempts", u64::from(attempt))
                        .field("degrade", config.degrade),
                );
                if !config.degrade {
                    return Err(CoordError::Shard(e));
                }
                alive.retain(|&a| a != addr);
                imc_obs::trace::emit(
                    imc_obs::trace::TraceEvent::new("degraded_rescatter")
                        .field("lost", addr.to_string())
                        .field("survivors", alive.len() as u64),
                );
                let position = board
                    .shards()
                    .iter()
                    .position(|&a| a == addr)
                    .unwrap_or(usize::MAX);
                let insert_at = lost
                    .iter()
                    .filter(|&&l| {
                        board
                            .shards()
                            .iter()
                            .position(|&a| a == l)
                            .unwrap_or(usize::MAX)
                            < position
                    })
                    .count();
                lost.insert(insert_at, addr);
            }
            Err(other) => return Err(other),
        }
    }
}

/// The coordinator TCP frontend — protocol-v2 `solve` / `estimate` /
/// `health` / `shutdown` over newline-delimited JSON, answered by
/// scatter-gathering the shard fleet.
pub struct Coordinator;

/// Handle to a running coordinator; dropping it does **not** stop the
/// server — call [`CoordinatorHandle::stop_and_join`].
pub struct CoordinatorHandle {
    addr: SocketAddr,
    shutdown: Arc<Shutdown>,
    acceptor: Option<JoinHandle<()>>,
    monitor: Option<HealthMonitor>,
    board: Arc<HealthBoard>,
}

impl CoordinatorHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared shard health scoreboard (for tests and diagnostics).
    pub fn health_board(&self) -> &Arc<HealthBoard> {
        &self.board
    }

    /// Requests shutdown and pokes the listener awake.
    pub fn stop(&self) {
        self.shutdown.request();
        let _ = TcpStream::connect(self.addr);
    }

    /// Stops the coordinator and joins the acceptor and health-probe
    /// threads.
    pub fn stop_and_join(mut self) {
        self.stop();
        if let Some(monitor) = self.monitor.take() {
            monitor.stop_and_join();
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Coordinator {
    /// Binds the listener and spawns the accept loop. Each connection is
    /// served by its own thread; all connections share one
    /// [`HealthBoard`], fed by request outcomes and (when
    /// `probe_interval` is set) a background [`HealthMonitor`].
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn start(
        instance: Arc<ImcInstance>,
        config: CoordinatorConfig,
    ) -> std::io::Result<CoordinatorHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        obs::shards_gauge().set(config.shards.len() as f64);
        let board = Arc::new(HealthBoard::new(&config.shards, DEAD_THRESHOLD));
        let monitor = config.probe_interval.map(|interval| {
            HealthMonitor::start(Arc::clone(&board), interval, config.probe_timeout)
        });
        let shutdown = Arc::new(Shutdown::new());
        let acceptor_shutdown = Arc::clone(&shutdown);
        let acceptor_board = Arc::clone(&board);
        let acceptor = thread::spawn(move || {
            for stream in listener.incoming() {
                if acceptor_shutdown.is_requested() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let instance = Arc::clone(&instance);
                let config = config.clone();
                let board = Arc::clone(&acceptor_board);
                thread::spawn(move || serve_connection(stream, &instance, &config, &board));
            }
        });
        Ok(CoordinatorHandle {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            monitor,
            board,
        })
    }
}

/// Serves one client connection until EOF or a `shutdown` request.
fn serve_connection(
    stream: TcpStream,
    instance: &ImcInstance,
    config: &CoordinatorConfig,
    board: &HealthBoard,
) {
    // Flush the response tail immediately; Nagle + delayed ACK would
    // add ~40ms per request on loopback otherwise.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let start = Instant::now();
        let (response, stop) = handle_request(&line, instance, config, board);
        obs::request_duration_seconds().observe(start.elapsed().as_secs_f64());
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if stop {
            break;
        }
    }
}

/// Microseconds since `start`, saturating.
fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Resolves the engine strategy for the distributed path: sequential and
/// lazy map through; anything parallel is rejected (the shard fan-out is
/// the parallelism here).
fn cluster_strategy(tuning: &SolveTuning) -> Result<SolveStrategy, String> {
    if tuning.threads.is_some_and(|t| t > 1) {
        return Err("`threads` > 1 is not supported by the cluster coordinator".to_string());
    }
    match tuning.mode {
        Some(SolveMode::Sequential) => Ok(SolveStrategy::Sequential),
        None | Some(SolveMode::Lazy) => Ok(SolveStrategy::Lazy),
        Some(SolveMode::Parallel) => {
            Err("mode `parallel` is not supported by the cluster coordinator".to_string())
        }
    }
}

/// Renders the health board as a JSON array of `{addr, state}` objects
/// in topology order.
fn shard_states_field(board: &HealthBoard) -> Vec<Value> {
    board
        .snapshot()
        .into_iter()
        .map(|(addr, state)| {
            ObjectBuilder::new()
                .field("addr", addr.to_string())
                .field("state", state.name())
                .build()
        })
        .collect()
}

/// Dispatches one request line; returns the response and whether the
/// coordinator should shut down afterwards.
fn handle_request(
    line: &str,
    instance: &ImcInstance,
    config: &CoordinatorConfig,
    board: &HealthBoard,
) -> (String, bool) {
    let start = Instant::now();
    // Adopt the caller's span context (a cluster client tracing its own
    // request) or mint a fresh trace — every shard RPC issued below
    // rides this id, so one solve stitches into one tree even across
    // coordinator and shard processes.
    let remote = if line.contains("\"trace_id\"") {
        protocol::parse_span_context(line)
    } else {
        protocol::SpanContext::default()
    };
    let trace_id = remote
        .trace_id
        .clone()
        .unwrap_or_else(imc_obs::trace::fresh_id);
    let _ctx = imc_obs::trace::TraceCtx::enter_remote(&trace_id, remote.parent_span_id.as_deref());
    let (response, stop) = dispatch_request(line, instance, config, board, start);
    // Echo the trace id so callers (and the smoke job) can find this
    // request's tree without parsing the coordinator's trace file.
    (
        protocol::inject_span_context(&response, &trace_id, None),
        stop,
    )
}

/// The op dispatch behind [`handle_request`], running inside the
/// request's trace context.
fn dispatch_request(
    line: &str,
    instance: &ImcInstance,
    config: &CoordinatorConfig,
    board: &HealthBoard,
    start: Instant,
) -> (String, bool) {
    let request = match protocol::parse_request(line) {
        Ok(request) => request,
        Err(message) => {
            return (
                protocol::error_response(ErrorCode::BadRequest, &message),
                false,
            )
        }
    };
    match request {
        Request::Solve { imcaf: Some(_), .. } => (
            protocol::error_response(
                ErrorCode::InvalidParameter,
                "the imcaf framework is not supported by the cluster coordinator \
                 (shards serve fixed snapshots)",
            ),
            false,
        ),
        Request::Solve {
            k,
            algo,
            seed,
            imcaf: None,
            tuning,
        } => {
            let strategy = match cluster_strategy(&tuning) {
                Ok(strategy) => strategy,
                Err(message) => {
                    return (
                        protocol::error_response(ErrorCode::InvalidParameter, &message),
                        false,
                    )
                }
            };
            let req = SolveRequest::new(k)
                .with_seed(seed)
                .with_depth(tuning.depth.unwrap_or(2))
                .with_strategy(strategy);
            let _solve_span = imc_obs::Span::enter_with("cluster_solve", algo.name());
            let outcome = run_resilient(config, board, seed, |peers| {
                cluster_solve(instance, peers, algo, &req)
            });
            match outcome {
                Ok(Outcome {
                    value: report,
                    lost,
                    participating,
                }) => {
                    let seeds: Vec<u32> = report.seeds.iter().map(|v| v.raw()).collect();
                    let lost_shards: Vec<String> = lost.iter().map(SocketAddr::to_string).collect();
                    let body = ObjectBuilder::new()
                        .field("seeds", seeds)
                        .field("estimate", report.estimate)
                        .field("influenced_samples", report.influenced_samples)
                        .field("evaluations", report.evaluations)
                        .field("mode", strategy.label())
                        .field("threads", strategy.threads())
                        .field("samples", report.samples)
                        .field("generation", report.generation)
                        .field("shards", participating)
                        .field("approximate", !lost.is_empty())
                        .field("effective_samples", report.samples)
                        .field("lost_shards", lost_shards)
                        .field("elapsed_us", elapsed_us(start));
                    (protocol::ok_response("solve", body), false)
                }
                Err(e) => (
                    protocol::error_response(e.error_code(), &e.to_string()),
                    false,
                ),
            }
        }
        Request::Estimate { seeds } => {
            let node_count = instance.node_count();
            if let Some(bad) = seeds.iter().find(|v| v.index() >= node_count) {
                return (
                    protocol::error_response(
                        ErrorCode::OutOfRange,
                        &format!(
                            "seed {} out of range (graph has {node_count} nodes)",
                            bad.raw()
                        ),
                    ),
                    false,
                );
            }
            let _estimate_span = imc_obs::Span::enter_with("cluster_estimate", "");
            let outcome = run_resilient(config, board, 0, |peers| {
                shard_eval_totals(peers, &seeds, None).map_err(CoordError::from)
            });
            match outcome {
                Ok(Outcome {
                    value: totals,
                    lost,
                    participating,
                }) => {
                    let lost_shards: Vec<String> = lost.iter().map(SocketAddr::to_string).collect();
                    let body = ObjectBuilder::new()
                        .field(
                            "estimate",
                            estimate_from(instance, totals.influenced, totals.samples),
                        )
                        .field(
                            "nu_estimate",
                            nu_estimate_from(instance, totals.nu_acc, totals.samples),
                        )
                        .field("influenced_samples", totals.influenced)
                        .field("samples", totals.samples)
                        .field("generation", totals.generation)
                        .field("shards", participating)
                        .field("approximate", !lost.is_empty())
                        .field("effective_samples", totals.samples)
                        .field("lost_shards", lost_shards)
                        .field("elapsed_us", elapsed_us(start));
                    (protocol::ok_response("estimate", body), false)
                }
                Err(e) => (
                    protocol::error_response(e.error_code(), &e.to_string()),
                    false,
                ),
            }
        }
        Request::Health => {
            // Health never fails wholesale: every shard is probed (its
            // real health op, so sample counts come back), outcomes feed
            // the board, and the response reports per-shard states.
            let mut samples = 0u64;
            let mut answering = 0usize;
            for &addr in board.shards() {
                let mut peer = PeerClient::new(addr, config.client, RetryPolicy::none());
                match peer
                    .request_stateless(r#"{"op":"health"}"#)
                    .and_then(|resp| field_u64(&resp, "samples", &peer))
                {
                    Ok(s) => {
                        samples += s;
                        answering += 1;
                        board.record_ok(addr);
                    }
                    Err(e) => {
                        obs::shard_errors_total().inc();
                        if e.is_transport() {
                            board.record_failure(addr);
                        }
                    }
                }
            }
            let status = if answering == board.shards().len() {
                "ok"
            } else {
                "degraded"
            };
            let body = ObjectBuilder::new()
                .field("status", status)
                .field("samples", samples)
                .field("shards", answering)
                .field("shard_states", shard_states_field(board))
                .field("elapsed_us", elapsed_us(start));
            (protocol::ok_response("health", body), false)
        }
        Request::Ping => {
            let body = ObjectBuilder::new()
                .field("status", "ok")
                .field("elapsed_us", elapsed_us(start));
            (protocol::ok_response("ping", body), false)
        }
        Request::Shutdown => (
            protocol::ok_response("shutdown", ObjectBuilder::new()),
            true,
        ),
        _ => (
            protocol::error_response(
                ErrorCode::InvalidParameter,
                "op not supported by the cluster coordinator \
                 (expected solve | estimate | health | ping | shutdown)",
            ),
            false,
        ),
    }
}
