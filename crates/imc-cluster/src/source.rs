//! [`ClusterSource`] — a [`GainSource`] whose marginal gains come from
//! remote shard daemons instead of a local [`CoverageState`].
//!
//! One instance wraps one `eval_begin` … `eval_end` session on every
//! shard. The reduction rules are the whole trick:
//!
//! * **integers sum** — ĉ_R gains, potentials and appearance counts are
//!   per-sample counts over disjoint partitions, so element-wise sums
//!   across shards equal the single-node values exactly;
//! * **floats chain** — ν_R gains are `f64` left folds in sample order,
//!   which is non-associative, so shard `i`'s fold *continues* shard
//!   `i−1`'s accumulator (the wire `carry` field) instead of being
//!   summed. Because the partitions concatenate in shard order to the
//!   single-node sample order, the chained fold is bitwise identical.
//!
//! [`GainSource`] is infallible by design (the engine has no error
//! channel), so shard failures are *stashed*: the first
//! [`ClusterError`] is kept, later batches return neutral zeros, and the
//! caller must check [`ClusterSource::take_error`] after the greedy run
//! before trusting its output.
//!
//! [`CoverageState`]: imc_core::CoverageState

use std::thread;
use std::time::Instant;

use imc_core::maxr::{GainSource, MapStats};
use imc_service::client::{ClusterError, PeerClient};
use imc_service::json::{self, ObjectBuilder, Value};

use crate::obs;

/// Extracts a required `u64` field from a shard response.
pub(crate) fn field_u64(value: &Value, key: &str, peer: &PeerClient) -> Result<u64, ClusterError> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| ClusterError::Protocol {
            addr: peer.addr(),
            detail: format!("response missing integer field `{key}`"),
        })
}

/// Extracts a required `f64` field from a shard response.
pub(crate) fn field_f64(value: &Value, key: &str, peer: &PeerClient) -> Result<f64, ClusterError> {
    value
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| ClusterError::Protocol {
            addr: peer.addr(),
            detail: format!("response missing number field `{key}`"),
        })
}

/// Extracts a required array of `u64` from a shard response.
fn field_u64_array(value: &Value, key: &str, peer: &PeerClient) -> Result<Vec<u64>, ClusterError> {
    let err = || ClusterError::Protocol {
        addr: peer.addr(),
        detail: format!("response missing integer array field `{key}`"),
    };
    value
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(err)?
        .iter()
        .map(|v| v.as_u64().ok_or_else(err))
        .collect()
}

/// Extracts a required array of `f64` from a shard response.
fn field_f64_array(value: &Value, key: &str, peer: &PeerClient) -> Result<Vec<f64>, ClusterError> {
    let err = || ClusterError::Protocol {
        addr: peer.addr(),
        detail: format!("response missing number array field `{key}`"),
    };
    value
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(err)?
        .iter()
        .map(|v| v.as_f64().ok_or_else(err))
        .collect()
}

/// Times one session-scoped shard RPC, feeds the latency histograms
/// (both the legacy aggregate and the `{op,shard}` breakout) and opens
/// an `rpc_client` span whose `detail` carries "`op` `addr`" — the
/// trace stitcher parses the address out of that detail to map each
/// shard-side trace file onto its shard.
fn timed_session_rpc(
    peer: &mut PeerClient,
    line: &str,
    op: &'static str,
) -> Result<(Value, f64), ClusterError> {
    let addr = peer.addr();
    let _rpc = imc_obs::Span::enter_with("rpc_client", format!("{op} {addr}"));
    let start = Instant::now();
    let result = peer.request_session(line);
    let secs = start.elapsed().as_secs_f64();
    obs::shard_rpc_seconds().observe(secs);
    obs::rpc_duration_seconds(op, &addr.to_string()).observe(secs);
    if result.is_err() {
        obs::shard_errors_total().inc();
    }
    result.map(|v| (v, secs))
}

/// Emits one flat `round_attribution` trace event for a finished
/// scatter round: where the round's wall time went (parallel fan-out
/// vs. reduce), and which shard was the straggler. No-op when tracing
/// is off (the event is dropped at the sink).
#[allow(clippy::too_many_arguments)]
fn emit_round_attribution(
    objective: &str,
    batch: usize,
    addrs: &[String],
    shard_seconds: &[f64],
    scatter_s: f64,
    reduce_s: f64,
) {
    let mut straggler = "";
    let mut straggler_s = 0.0f64;
    let mut fastest_s = f64::INFINITY;
    for (addr, &secs) in addrs.iter().zip(shard_seconds) {
        if secs > straggler_s {
            straggler_s = secs;
            straggler = addr;
        }
        fastest_s = fastest_s.min(secs);
    }
    if !fastest_s.is_finite() {
        fastest_s = 0.0;
    }
    imc_obs::trace::emit(
        imc_obs::trace::TraceEvent::new("round_attribution")
            .field("objective", objective)
            .field("batch", batch as u64)
            .field("shards", shard_seconds.len() as u64)
            .field("scatter_s", scatter_s)
            .field("reduce_s", reduce_s)
            .field("straggler", straggler)
            .field("straggler_s", straggler_s)
            .field("fastest_s", fastest_s),
    );
}

/// One shard's answer to a ĉ batch: per-node gains, per-node
/// influenced counts, and the shard's RPC wall time in seconds.
type ShardCBatch = (Vec<u64>, Vec<u64>, f64);

/// A scatter-gather [`GainSource`] over one open eval session per shard.
///
/// Construct with [`ClusterSource::open`], run a greedy loop over it
/// ([`greedy_c_over`](imc_core::maxr::engine::greedy_c_over) /
/// [`greedy_nu_over`](imc_core::maxr::engine::greedy_nu_over)), then *always*
/// call [`take_error`](Self::take_error) — a `Some` means some batch
/// after the failure returned neutral zeros and the run is invalid.
/// Dropping the source closes the remote sessions best-effort.
#[derive(Debug)]
pub struct ClusterSource<'a> {
    peers: &'a mut [PeerClient],
    sessions: Vec<u64>,
    /// Element-wise sum of per-shard appearance counts = appearance over
    /// the union collection.
    appearance: Vec<u64>,
    /// Element-wise sum of per-shard community source frequencies.
    communities: Vec<u64>,
    samples: u64,
    generation: u64,
    error: Option<ClusterError>,
    closed: bool,
}

impl<'a> ClusterSource<'a> {
    /// Opens one eval session on every shard (pivot-reduced when `pivot`
    /// is set) and gathers the summed appearance / community-frequency
    /// vectors. Sessions already opened are closed best-effort when a
    /// later shard fails.
    pub fn open(peers: &'a mut [PeerClient], pivot: Option<u32>) -> Result<Self, ClusterError> {
        let mut line = ObjectBuilder::new().field("op", "eval_begin");
        if let Some(u) = pivot {
            line = line.field("pivot", u);
        }
        let line = json::to_string(&line.build());

        let mut sessions: Vec<u64> = Vec::with_capacity(peers.len());
        let mut appearance: Vec<u64> = Vec::new();
        let mut communities: Vec<u64> = Vec::new();
        let mut samples = 0u64;
        let mut generation = 0u64;
        let mut failure: Option<ClusterError> = None;
        for (i, peer) in peers.iter_mut().enumerate() {
            let resp = match timed_session_rpc(peer, &line, "eval_begin").and_then(|(resp, _)| {
                let session = field_u64(&resp, "session", peer)?;
                let shard_gen = field_u64(&resp, "generation", peer)?;
                let app = field_u64_array(&resp, "appearance", peer)?;
                let com = field_u64_array(&resp, "communities", peer)?;
                samples += field_u64(&resp, "samples", peer)?;
                Ok((session, shard_gen, app, com))
            }) {
                Ok(parts) => parts,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            let (session, shard_gen, app, com) = resp;
            sessions.push(session);
            if i == 0 {
                generation = shard_gen;
                appearance = app;
                communities = com;
                continue;
            }
            if shard_gen != generation
                || app.len() != appearance.len()
                || com.len() != communities.len()
            {
                failure = Some(ClusterError::Protocol {
                    addr: peer.addr(),
                    detail: format!(
                        "shard disagrees with shard 0: generation {shard_gen} vs {generation}, \
                         {} vs {} nodes, {} vs {} communities",
                        app.len(),
                        appearance.len(),
                        com.len(),
                        communities.len()
                    ),
                });
                break;
            }
            for (total, part) in appearance.iter_mut().zip(&app) {
                *total += part;
            }
            for (total, part) in communities.iter_mut().zip(&com) {
                *total += part;
            }
        }
        if let Some(e) = failure {
            // Roll back the sessions we did open; errors here are moot.
            for (peer, session) in peers.iter_mut().zip(&sessions) {
                let end = ObjectBuilder::new()
                    .field("op", "eval_end")
                    .field("session", *session);
                let _ = peer.request_session(&json::to_string(&end.build()));
            }
            return Err(e);
        }
        Ok(ClusterSource {
            peers,
            sessions,
            appearance,
            communities,
            samples,
            generation,
            error: None,
            closed: false,
        })
    }

    /// Total samples across all shards.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The collection generation every shard session is pinned to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Appearance counts over the union collection (summed shards).
    pub fn appearance(&self) -> &[u64] {
        &self.appearance
    }

    /// Community source frequencies over the union collection.
    pub fn community_frequencies(&self) -> &[u64] {
        &self.communities
    }

    /// Stashes the first shard failure; later calls keep the original.
    fn fail(&mut self, e: ClusterError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Takes the stashed shard failure, if any. A `Some` invalidates
    /// everything computed through this source since the failure.
    pub fn take_error(&mut self) -> Option<ClusterError> {
        self.error.take()
    }

    /// Closes the remote sessions (idempotent, best-effort: a shard that
    /// died keeps its stashed error; close failures are not new errors
    /// because the daemon reaps sessions with the connection anyway).
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        for (peer, session) in self.peers.iter_mut().zip(&self.sessions) {
            let line = ObjectBuilder::new()
                .field("op", "eval_end")
                .field("session", *session);
            let _ = peer.request_session(&json::to_string(&line.build()));
        }
    }
}

impl Drop for ClusterSource<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

impl GainSource for ClusterSource<'_> {
    fn node_count(&self) -> usize {
        self.appearance.len()
    }

    fn appearance_count(&self, v: u32) -> usize {
        self.appearance[v as usize] as usize
    }

    fn eval_c_batch(&mut self, nodes: &[u32]) -> (Vec<(usize, usize)>, MapStats) {
        let neutral = (
            vec![(0usize, 0usize); nodes.len()],
            MapStats {
                shard_seconds: Vec::new(),
                busy_fractions: Vec::new(),
            },
        );
        if self.error.is_some() || nodes.is_empty() {
            return neutral;
        }
        obs::scatter_total().inc();
        let _round = imc_obs::Span::enter_with("scatter_round", "c");
        let nodes_field: Vec<u64> = nodes.iter().map(|&v| u64::from(v)).collect();
        let addrs: Vec<String> = self.peers.iter().map(|p| p.addr().to_string()).collect();
        // Spawned scope threads do NOT inherit the thread-local trace
        // context — capture it here and re-install it inside each
        // worker, or the per-shard rpc_client spans (and the span
        // context injected into the wire lines) would silently vanish.
        let trace_id = imc_obs::trace::current_trace_id();
        let parent_span = imc_obs::trace::current_span_id();
        let scatter_start = Instant::now();
        // One thread per shard: ĉ gains are per-shard integers with no
        // cross-shard data flow, so the fan-out is embarrassingly
        // parallel and gather order does not matter.
        let results: Vec<Result<ShardCBatch, ClusterError>> = thread::scope(|scope| {
            let handles: Vec<_> = self
                .peers
                .iter_mut()
                .zip(&self.sessions)
                .map(|(peer, &session)| {
                    let line = json::to_string(
                        &ObjectBuilder::new()
                            .field("op", "eval_batch")
                            .field("session", session)
                            .field("kind", "c")
                            .field("nodes", nodes_field.clone())
                            .build(),
                    );
                    let trace_id = trace_id.clone();
                    let parent_span = parent_span.clone();
                    scope.spawn(move || {
                        let _ctx = trace_id.as_deref().map(|tid| {
                            imc_obs::trace::TraceCtx::enter_remote(tid, parent_span.as_deref())
                        });
                        let (resp, secs) = timed_session_rpc(peer, &line, "eval_batch")?;
                        let gains = field_u64_array(&resp, "gains", peer)?;
                        let potentials = field_u64_array(&resp, "potentials", peer)?;
                        Ok((gains, potentials, secs))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard rpc thread panicked"))
                .collect()
        });
        let scatter_s = scatter_start.elapsed().as_secs_f64();

        let reduce_start = Instant::now();
        let mut gains = vec![0u64; nodes.len()];
        let mut potentials = vec![0u64; nodes.len()];
        let mut shard_seconds = Vec::with_capacity(self.peers.len());
        for result in results {
            match result {
                Ok((g, p, secs)) if g.len() == nodes.len() && p.len() == nodes.len() => {
                    for (total, part) in gains.iter_mut().zip(&g) {
                        *total += part;
                    }
                    for (total, part) in potentials.iter_mut().zip(&p) {
                        *total += part;
                    }
                    shard_seconds.push(secs);
                }
                Ok(_) => {
                    self.fail(ClusterError::Protocol {
                        addr: self.peers[0].addr(),
                        detail: format!(
                            "eval_batch returned a wrong-length gain vector (expected {})",
                            nodes.len()
                        ),
                    });
                    return neutral;
                }
                Err(e) => {
                    self.fail(e);
                    return neutral;
                }
            }
        }
        let reduce_s = reduce_start.elapsed().as_secs_f64();
        emit_round_attribution(
            "c",
            nodes.len(),
            &addrs,
            &shard_seconds,
            scatter_s,
            reduce_s,
        );
        (
            gains
                .into_iter()
                .zip(potentials)
                .map(|(g, p)| (g as usize, p as usize))
                .collect(),
            MapStats {
                shard_seconds,
                busy_fractions: Vec::new(),
            },
        )
    }

    fn eval_nu_batch(&mut self, nodes: &[u32]) -> (Vec<f64>, MapStats) {
        let neutral = (
            vec![0.0; nodes.len()],
            MapStats {
                shard_seconds: Vec::new(),
                busy_fractions: Vec::new(),
            },
        );
        if self.error.is_some() || nodes.is_empty() {
            return neutral;
        }
        obs::scatter_total().inc();
        let _round = imc_obs::Span::enter_with("scatter_round", "nu");
        let nodes_field: Vec<u64> = nodes.iter().map(|&v| u64::from(v)).collect();
        let addrs: Vec<String> = self.peers.iter().map(|p| p.addr().to_string()).collect();
        let round_start = Instant::now();
        // Sequential by necessity: shard i's fold starts from shard
        // i−1's accumulators (the non-associative ν_R carry chain).
        // Fields are destructured so the stashed error can be written
        // while the peer iterator is live.
        let ClusterSource {
            peers,
            sessions,
            error,
            ..
        } = self;
        let mut carry: Option<Vec<f64>> = None;
        let mut shard_seconds = Vec::with_capacity(peers.len());
        for (peer, &session) in peers.iter_mut().zip(sessions.iter()) {
            let mut req = ObjectBuilder::new()
                .field("op", "eval_batch")
                .field("session", session)
                .field("kind", "nu")
                .field("nodes", nodes_field.clone());
            if let Some(c) = &carry {
                req = req.field("carry", c.clone());
            }
            let line = json::to_string(&req.build());
            let accs = match timed_session_rpc(peer, &line, "eval_batch")
                .and_then(|(resp, secs)| Ok((field_f64_array(&resp, "accs", peer)?, secs)))
            {
                Ok((accs, secs)) if accs.len() == nodes.len() => {
                    shard_seconds.push(secs);
                    accs
                }
                Ok((accs, _)) => {
                    let failure = ClusterError::Protocol {
                        addr: peer.addr(),
                        detail: format!(
                            "eval_batch returned {} accumulators for {} nodes",
                            accs.len(),
                            nodes.len()
                        ),
                    };
                    error.get_or_insert(failure);
                    return neutral;
                }
                Err(e) => {
                    error.get_or_insert(e);
                    return neutral;
                }
            };
            carry = Some(accs);
        }
        // The ν carry chain *is* both scatter and reduce: shards run
        // sequentially, so the whole chain is scatter-wait and there is
        // no separate reduce step to attribute.
        emit_round_attribution(
            "nu",
            nodes.len(),
            &addrs,
            &shard_seconds,
            round_start.elapsed().as_secs_f64(),
            0.0,
        );
        (
            carry.unwrap_or_else(|| vec![0.0; nodes.len()]),
            MapStats {
                shard_seconds,
                busy_fractions: Vec::new(),
            },
        )
    }

    fn add_seed(&mut self, v: u32) {
        if self.error.is_some() {
            return;
        }
        let ClusterSource {
            peers,
            sessions,
            error,
            ..
        } = self;
        for (peer, &session) in peers.iter_mut().zip(sessions.iter()) {
            let line = json::to_string(
                &ObjectBuilder::new()
                    .field("op", "eval_seed")
                    .field("session", session)
                    .field("node", v)
                    .build(),
            );
            if let Err(e) = timed_session_rpc(peer, &line, "eval_seed") {
                error.get_or_insert(e);
                return;
            }
        }
    }
}

/// Pads `seeds` to `min(k, n)` with unused nodes by appearance count
/// (descending, ties to the smallest id) — the standalone twin of
/// `imc_core`'s internal `pad_to_k` for when only the appearance
/// snapshot is still at hand (the BT pivot loop closes its full-store
/// sessions before padding the winner).
pub fn pad_with_appearance(seeds: &mut Vec<imc_graph::NodeId>, k: usize, appearance: &[u64]) {
    let k = k.min(appearance.len());
    if seeds.len() >= k {
        seeds.truncate(k);
        return;
    }
    let mut used = vec![false; appearance.len()];
    for s in seeds.iter() {
        used[s.index()] = true;
    }
    let mut rest: Vec<(u64, u32)> = (0..appearance.len() as u32)
        .filter(|&v| !used[v as usize])
        .map(|v| (appearance[v as usize], v))
        .collect();
    rest.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for (_, v) in rest {
        if seeds.len() == k {
            break;
        }
        seeds.push(imc_graph::NodeId::new(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_graph::NodeId;

    #[test]
    fn pad_with_appearance_matches_pad_to_k_rule() {
        // appearance: node 2 highest, then 0 and 3 tied (smaller id
        // first), node 1 already used.
        let appearance = vec![5, 1, 9, 5];
        let mut seeds = vec![NodeId::new(1)];
        pad_with_appearance(&mut seeds, 3, &appearance);
        assert_eq!(seeds, vec![NodeId::new(1), NodeId::new(2), NodeId::new(0)]);

        // Over-long input truncates; k beyond n clamps.
        let mut long = vec![NodeId::new(3), NodeId::new(0), NodeId::new(1)];
        pad_with_appearance(&mut long, 2, &appearance);
        assert_eq!(long, vec![NodeId::new(3), NodeId::new(0)]);
        let mut all = Vec::new();
        pad_with_appearance(&mut all, 10, &appearance);
        assert_eq!(all.len(), 4);
    }
}
