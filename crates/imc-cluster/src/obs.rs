//! Cluster-level metrics, registered in the process-global
//! [`imc_obs`] registry under the `imc_cluster_*` prefix.
//!
//! Handles are cached in `OnceLock` statics so hot paths pay a single
//! atomic load; see `docs/METRICS.md` for the rendered catalogue.

use std::sync::{Arc, OnceLock};

use imc_obs::{Counter, Gauge, Histogram, DEFAULT_DURATION_BUCKETS};

/// Total scatter rounds issued by coordinators (one per batched
/// `eval_c`/`eval_nu` fan-out across all shards).
pub fn scatter_total() -> &'static Arc<Counter> {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().counter(
            "imc_cluster_scatter_total",
            "Scatter-gather rounds fanned out to shards by the cluster coordinator",
        )
    })
}

/// Total per-shard RPC failures observed by a coordinator.
pub fn shard_errors_total() -> &'static Arc<Counter> {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().counter(
            "imc_cluster_shard_errors_total",
            "Shard RPC failures (transport or remote error) seen by the coordinator",
        )
    })
}

/// Latency of a single shard RPC as observed by the coordinator.
pub fn shard_rpc_seconds() -> &'static Arc<Histogram> {
    static M: OnceLock<Arc<Histogram>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().histogram(
            "imc_cluster_shard_rpc_seconds",
            "Round-trip latency of one shard RPC issued by the coordinator",
            DEFAULT_DURATION_BUCKETS,
        )
    })
}

/// End-to-end latency of requests served by the coordinator frontend.
pub fn request_duration_seconds() -> &'static Arc<Histogram> {
    static M: OnceLock<Arc<Histogram>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().histogram(
            "imc_cluster_request_duration_seconds",
            "End-to-end latency of requests answered by the cluster coordinator",
            DEFAULT_DURATION_BUCKETS,
        )
    })
}

/// Number of shards the coordinator is configured with.
pub fn shards_gauge() -> &'static Arc<Gauge> {
    static M: OnceLock<Arc<Gauge>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().gauge(
            "imc_cluster_shards",
            "Shard count in the coordinator's current topology",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_register_once_and_accumulate() {
        let before = scatter_total().get();
        scatter_total().inc();
        scatter_total().inc();
        assert_eq!(scatter_total().get(), before + 2);
        shard_rpc_seconds().observe(0.004);
        assert!(shard_rpc_seconds().count() >= 1);
        shards_gauge().set(2.0);
    }
}
