//! Cluster-level metrics, registered in the process-global
//! [`imc_obs`] registry under the `imc_cluster_*` prefix.
//!
//! Handles are cached in `OnceLock` statics so hot paths pay a single
//! atomic load; see `docs/METRICS.md` for the rendered catalogue.

use std::sync::{Arc, OnceLock};

use imc_obs::{Counter, Gauge, Histogram, DEFAULT_DURATION_BUCKETS};

/// Total scatter rounds issued by coordinators (one per batched
/// `eval_c`/`eval_nu` fan-out across all shards).
pub fn scatter_total() -> &'static Arc<Counter> {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().counter(
            "imc_cluster_scatter_total",
            "Scatter-gather rounds fanned out to shards by the cluster coordinator",
        )
    })
}

/// Total per-shard RPC failures observed by a coordinator.
pub fn shard_errors_total() -> &'static Arc<Counter> {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().counter(
            "imc_cluster_shard_errors_total",
            "Shard RPC failures (transport or remote error) seen by the coordinator",
        )
    })
}

/// Latency of a single shard RPC as observed by the coordinator.
pub fn shard_rpc_seconds() -> &'static Arc<Histogram> {
    static M: OnceLock<Arc<Histogram>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().histogram(
            "imc_cluster_shard_rpc_seconds",
            "Round-trip latency of one shard RPC issued by the coordinator",
            DEFAULT_DURATION_BUCKETS,
        )
    })
}

/// Latency of one shard RPC, broken out by operation and shard address.
/// The unlabeled [`shard_rpc_seconds`] aggregate stays for dashboards
/// that predate the breakout; this family is what straggler hunting
/// reads (`op` ∈ eval_begin | eval_batch | eval_seed | eval_end |
/// shard_eval).
pub fn rpc_duration_seconds(op: &str, shard: &str) -> Arc<Histogram> {
    imc_obs::global().histogram_with(
        "imc_cluster_rpc_duration_seconds",
        "Round-trip latency of one shard RPC, by operation and shard address",
        DEFAULT_DURATION_BUCKETS,
        &[("op", op), ("shard", shard)],
    )
}

/// End-to-end latency of requests served by the coordinator frontend.
pub fn request_duration_seconds() -> &'static Arc<Histogram> {
    static M: OnceLock<Arc<Histogram>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().histogram(
            "imc_cluster_request_duration_seconds",
            "End-to-end latency of requests answered by the cluster coordinator",
            DEFAULT_DURATION_BUCKETS,
        )
    })
}

/// Number of shards the coordinator is configured with.
pub fn shards_gauge() -> &'static Arc<Gauge> {
    static M: OnceLock<Arc<Gauge>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().gauge(
            "imc_cluster_shards",
            "Shard count in the coordinator's current topology",
        )
    })
}

/// Per-shard health state gauge, labeled by the shard's address.
/// Values encode [`crate::health::ShardState`]: 0 = dead, 1 = suspect,
/// 2 = recovered, 3 = healthy.
pub fn shard_state_gauge(addr: &str) -> Arc<Gauge> {
    imc_obs::global().gauge_with(
        "imc_cluster_shard_state",
        "Health state of one shard as seen by the coordinator (0=dead 1=suspect 2=recovered 3=healthy)",
        &[("shard", addr)],
    )
}

/// Total stateless shard RPC retries performed after transport errors.
pub fn retries_total() -> &'static Arc<Counter> {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().counter(
            "imc_cluster_retries_total",
            "Shard RPCs retried after a transport error (reconnect-and-replay)",
        )
    })
}

/// Total solves that completed in degraded mode (one or more shards
/// excluded, answer flagged `approximate`).
pub fn degraded_solves_total() -> &'static Arc<Counter> {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().counter(
            "imc_cluster_degraded_solves_total",
            "Cluster solves completed over a strict subset of shards (approximate answers)",
        )
    })
}

/// Total health probes (`ping` round-trips) issued by the coordinator.
pub fn probes_total() -> &'static Arc<Counter> {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().counter(
            "imc_cluster_probes_total",
            "Health probes (ping round-trips) issued to shards by the coordinator",
        )
    })
}

/// Total health probes that failed (no ok ping response in time).
pub fn probe_failures_total() -> &'static Arc<Counter> {
    static M: OnceLock<Arc<Counter>> = OnceLock::new();
    M.get_or_init(|| {
        imc_obs::global().counter(
            "imc_cluster_probe_failures_total",
            "Health probes that timed out or returned an error",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_register_once_and_accumulate() {
        let before = scatter_total().get();
        scatter_total().inc();
        scatter_total().inc();
        assert_eq!(scatter_total().get(), before + 2);
        shard_rpc_seconds().observe(0.004);
        assert!(shard_rpc_seconds().count() >= 1);
        shards_gauge().set(2.0);
    }

    #[test]
    fn rpc_duration_is_keyed_by_op_and_shard() {
        let a = rpc_duration_seconds("eval_batch", "127.0.0.1:7201");
        let b = rpc_duration_seconds("shard_eval", "127.0.0.1:7201");
        let before = a.count();
        a.observe(0.002);
        assert_eq!(
            rpc_duration_seconds("eval_batch", "127.0.0.1:7201").count(),
            before + 1
        );
        // Different op label → distinct child histogram.
        assert!(b.count() == rpc_duration_seconds("shard_eval", "127.0.0.1:7201").count());
    }

    #[test]
    fn shard_state_gauge_is_keyed_by_address() {
        let a = shard_state_gauge("127.0.0.1:7101");
        let b = shard_state_gauge("127.0.0.1:7102");
        a.set(3.0);
        b.set(0.0);
        // Same label → same underlying handle; different label → distinct.
        assert_eq!(shard_state_gauge("127.0.0.1:7101").get(), 3.0);
        assert_eq!(shard_state_gauge("127.0.0.1:7102").get(), 0.0);
    }
}
