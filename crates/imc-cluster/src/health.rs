//! Coordinator-side shard health: a per-shard state machine fed by
//! RPC outcomes and cheap `ping` probes.
//!
//! Each shard moves through four states:
//!
//! ```text
//!            fail                 fail × threshold
//!  Healthy ────────▶ Suspect ─────────────────────▶ Dead
//!     ▲                 │                             │
//!     │ ok              │ ok                          │ probe ok
//!     │                 ▼                             ▼
//!     └───────────── Healthy                      Recovered
//!     ▲                                               │
//!     └───────────────────────────────────────────────┘
//!                        next successful use (rejoin)
//! ```
//!
//! Transitions are driven by two inputs only: `record_ok` (an RPC or
//! probe round-trip succeeded) and `record_failure` (a transport error
//! or probe timeout). `Dead` is sticky against ordinary failures — only
//! a successful probe moves a dead shard to `Recovered`, and the
//! coordinator folds a `Recovered` shard back in at the *next* solve
//! (never mid-solve, which would break determinism of the in-flight
//! answer). Every transition is published to the labeled
//! `imc_cluster_shard_state` gauge.
//!
//! The probe itself is the `{"op":"ping"}` fast path added to
//! imc-service: no collection pin, no session state, just proof the
//! worker loop answers. [`HealthMonitor`] runs probes periodically in a
//! background thread; the coordinator also probes on demand before
//! declaring a shard dead mid-solve.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use imc_service::client::Client;

use crate::obs;

/// Health state of one shard as seen by the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Probes/RPCs are failing and the failure streak crossed the
    /// threshold; the shard is excluded from solves until a probe
    /// succeeds.
    Dead,
    /// At least one recent failure; still included, but the next
    /// failure streak can kill it.
    Suspect,
    /// A dead shard answered a probe; it rejoins at the next solve.
    Recovered,
    /// Answering normally.
    Healthy,
}

impl ShardState {
    /// Numeric encoding used by the `imc_cluster_shard_state` gauge.
    pub fn as_gauge(self) -> f64 {
        match self {
            ShardState::Dead => 0.0,
            ShardState::Suspect => 1.0,
            ShardState::Recovered => 2.0,
            ShardState::Healthy => 3.0,
        }
    }

    /// Lower-case name used in protocol responses and logs.
    pub fn name(self) -> &'static str {
        match self {
            ShardState::Dead => "dead",
            ShardState::Suspect => "suspect",
            ShardState::Recovered => "recovered",
            ShardState::Healthy => "healthy",
        }
    }

    /// Whether the coordinator should include this shard in a solve.
    pub fn is_usable(self) -> bool {
        !matches!(self, ShardState::Dead)
    }
}

#[derive(Debug)]
struct ShardHealth {
    state: ShardState,
    /// Consecutive failures since the last success.
    streak: u32,
}

/// Shared scoreboard of per-shard health, keyed by shard address.
///
/// One board is shared by every coordinator connection and the
/// background [`HealthMonitor`]; all methods take `&self` and lock a
/// single mutex, so updates from a probe thread and a solve thread
/// never race.
#[derive(Debug)]
pub struct HealthBoard {
    shards: Vec<SocketAddr>,
    states: Mutex<Vec<ShardHealth>>,
    /// Consecutive failures that turn Suspect into Dead.
    threshold: u32,
}

impl HealthBoard {
    /// A board tracking `shards`, all initially [`ShardState::Healthy`],
    /// declaring a shard dead after `threshold` consecutive failures
    /// (minimum 1).
    pub fn new(shards: &[SocketAddr], threshold: u32) -> Self {
        let states = shards
            .iter()
            .map(|addr| {
                obs::shard_state_gauge(&addr.to_string()).set(ShardState::Healthy.as_gauge());
                ShardHealth {
                    state: ShardState::Healthy,
                    streak: 0,
                }
            })
            .collect();
        HealthBoard {
            shards: shards.to_vec(),
            states: Mutex::new(states),
            threshold: threshold.max(1),
        }
    }

    /// The shard addresses this board tracks, in topology order.
    pub fn shards(&self) -> &[SocketAddr] {
        &self.shards
    }

    fn index_of(&self, addr: SocketAddr) -> Option<usize> {
        self.shards.iter().position(|&a| a == addr)
    }

    /// The current state of `addr` (Healthy for untracked addresses).
    pub fn state(&self, addr: SocketAddr) -> ShardState {
        match self.index_of(addr) {
            Some(i) => self.states.lock().expect("health lock")[i].state,
            None => ShardState::Healthy,
        }
    }

    /// Snapshot of all (addr, state) pairs in topology order.
    pub fn snapshot(&self) -> Vec<(SocketAddr, ShardState)> {
        let states = self.states.lock().expect("health lock");
        self.shards
            .iter()
            .zip(states.iter())
            .map(|(&addr, h)| (addr, h.state))
            .collect()
    }

    fn set_state(&self, i: usize, states: &mut [ShardHealth], next: ShardState) {
        if states[i].state != next {
            states[i].state = next;
            obs::shard_state_gauge(&self.shards[i].to_string()).set(next.as_gauge());
        }
    }

    /// Records a successful round-trip (RPC or probe) to `addr`.
    ///
    /// Suspect → Healthy; Dead → Recovered (probe reached a shard that
    /// was written off); Recovered stays Recovered until
    /// [`record_rejoin`](Self::record_rejoin) folds it back in.
    pub fn record_ok(&self, addr: SocketAddr) {
        let Some(i) = self.index_of(addr) else { return };
        let mut states = self.states.lock().expect("health lock");
        states[i].streak = 0;
        let next = match states[i].state {
            ShardState::Healthy | ShardState::Suspect => ShardState::Healthy,
            ShardState::Dead | ShardState::Recovered => ShardState::Recovered,
        };
        self.set_state(i, &mut states, next);
    }

    /// Records a transport failure or probe timeout against `addr`.
    /// Healthy → Suspect immediately; Suspect → Dead once the
    /// consecutive-failure streak reaches the threshold.
    pub fn record_failure(&self, addr: SocketAddr) {
        let Some(i) = self.index_of(addr) else { return };
        let mut states = self.states.lock().expect("health lock");
        states[i].streak = states[i].streak.saturating_add(1);
        let next = match states[i].state {
            ShardState::Healthy | ShardState::Suspect | ShardState::Recovered => {
                if states[i].streak >= self.threshold {
                    ShardState::Dead
                } else {
                    ShardState::Suspect
                }
            }
            ShardState::Dead => ShardState::Dead,
        };
        self.set_state(i, &mut states, next);
    }

    /// Declares `addr` dead unconditionally (the coordinator exhausted
    /// its retry budget mid-solve and a confirmation probe failed).
    pub fn mark_dead(&self, addr: SocketAddr) {
        let Some(i) = self.index_of(addr) else { return };
        let mut states = self.states.lock().expect("health lock");
        states[i].streak = self.threshold;
        self.set_state(i, &mut states, ShardState::Dead);
    }

    /// Folds a recovered shard back into service (Recovered → Healthy).
    /// Called at the start of a solve, never mid-solve.
    pub fn record_rejoin(&self, addr: SocketAddr) {
        let Some(i) = self.index_of(addr) else { return };
        let mut states = self.states.lock().expect("health lock");
        if states[i].state == ShardState::Recovered {
            states[i].streak = 0;
            self.set_state(i, &mut states, ShardState::Healthy);
        }
    }
}

/// One `ping` round-trip to `addr` with every socket phase capped at
/// `timeout`. Returns `true` only for a parsed `"ok":true` response.
/// Feeds the probe counters but does **not** touch a board — callers
/// decide how a probe outcome maps to a transition.
pub fn probe(addr: SocketAddr, timeout: Duration) -> bool {
    obs::probes_total().inc();
    let ok = Client::connect(addr, timeout)
        .and_then(|mut c| c.request(r#"{"op":"ping"}"#))
        .map(|v| {
            v.get("ok")
                .and_then(imc_service::json::Value::as_bool)
                .unwrap_or(false)
        })
        .unwrap_or(false);
    if !ok {
        obs::probe_failures_total().inc();
    }
    ok
}

/// A background thread probing every tracked shard on a fixed period,
/// feeding results into the shared [`HealthBoard`].
#[derive(Debug)]
pub struct HealthMonitor {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HealthMonitor {
    /// Starts probing each shard on `board` every `interval`, with each
    /// probe capped at `timeout`.
    pub fn start(board: Arc<HealthBoard>, interval: Duration, timeout: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("imc-health-probe".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::SeqCst) {
                    for &addr in board.shards() {
                        if stop_flag.load(Ordering::SeqCst) {
                            return;
                        }
                        if probe(addr, timeout) {
                            board.record_ok(addr);
                        } else {
                            board.record_failure(addr);
                        }
                    }
                    // Sleep in small slices so stop() returns promptly.
                    let mut remaining = interval;
                    let slice = Duration::from_millis(25);
                    while remaining > Duration::ZERO && !stop_flag.load(Ordering::SeqCst) {
                        let step = remaining.min(slice);
                        std::thread::sleep(step);
                        remaining = remaining.saturating_sub(step);
                    }
                }
            })
            .expect("spawn health monitor");
        HealthMonitor {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the probe loop to stop and joins the thread.
    pub fn stop_and_join(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("127.0.0.1:{}", 7100 + i).parse().unwrap())
            .collect()
    }

    #[test]
    fn healthy_shard_becomes_suspect_then_dead() {
        let shards = addrs(2);
        let board = HealthBoard::new(&shards, 2);
        assert_eq!(board.state(shards[0]), ShardState::Healthy);
        board.record_failure(shards[0]);
        assert_eq!(board.state(shards[0]), ShardState::Suspect);
        assert!(board.state(shards[0]).is_usable());
        board.record_failure(shards[0]);
        assert_eq!(board.state(shards[0]), ShardState::Dead);
        assert!(!board.state(shards[0]).is_usable());
        // The other shard is untouched.
        assert_eq!(board.state(shards[1]), ShardState::Healthy);
    }

    #[test]
    fn suspect_recovers_to_healthy_on_success() {
        let shards = addrs(1);
        let board = HealthBoard::new(&shards, 3);
        board.record_failure(shards[0]);
        board.record_failure(shards[0]);
        assert_eq!(board.state(shards[0]), ShardState::Suspect);
        board.record_ok(shards[0]);
        assert_eq!(board.state(shards[0]), ShardState::Healthy);
        // The streak reset: two more failures stay Suspect.
        board.record_failure(shards[0]);
        board.record_failure(shards[0]);
        assert_eq!(board.state(shards[0]), ShardState::Suspect);
        board.record_failure(shards[0]);
        assert_eq!(board.state(shards[0]), ShardState::Dead);
    }

    #[test]
    fn dead_shard_recovers_then_rejoins() {
        let shards = addrs(1);
        let board = HealthBoard::new(&shards, 1);
        board.mark_dead(shards[0]);
        assert_eq!(board.state(shards[0]), ShardState::Dead);
        // Failures against a dead shard keep it dead.
        board.record_failure(shards[0]);
        assert_eq!(board.state(shards[0]), ShardState::Dead);
        // A successful probe moves it to Recovered, not straight back in.
        board.record_ok(shards[0]);
        assert_eq!(board.state(shards[0]), ShardState::Recovered);
        assert!(board.state(shards[0]).is_usable());
        // Rejoin at the next solve makes it Healthy again.
        board.record_rejoin(shards[0]);
        assert_eq!(board.state(shards[0]), ShardState::Healthy);
    }

    #[test]
    fn snapshot_reports_topology_order_and_gauges_track_state() {
        let shards = addrs(3);
        let board = HealthBoard::new(&shards, 1);
        board.record_failure(shards[1]);
        let snap = board.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0], (shards[0], ShardState::Healthy));
        assert_eq!(snap[1].1, ShardState::Dead);
        assert_eq!(
            obs::shard_state_gauge(&shards[1].to_string()).get(),
            ShardState::Dead.as_gauge()
        );
    }

    #[test]
    fn probe_fails_fast_against_a_closed_port() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(!probe(addr, Duration::from_millis(100)));
    }

    #[test]
    fn untracked_addresses_are_ignored() {
        let shards = addrs(1);
        let board = HealthBoard::new(&shards, 1);
        let stranger: SocketAddr = "127.0.0.1:65000".parse().unwrap();
        board.record_failure(stranger);
        board.record_ok(stranger);
        board.mark_dead(stranger);
        assert_eq!(board.state(stranger), ShardState::Healthy);
        assert_eq!(board.snapshot().len(), 1);
    }
}
