//! # imc-cluster — sharded distributed MAXR solving
//!
//! Splits a RIC sample collection across `N` shard daemons and solves
//! MAXR with a scatter-gather coordinator whose answers are **bitwise
//! identical** to a single-node solve over the union collection:
//!
//! * each shard is a plain `imc-service` daemon serving a deterministic
//!   seed-range partition of the sampling plan (partition `i` of the
//!   [`sampling_shard_plan`](imc_core::sampling_shard_plan) rooted at
//!   `base_seed` — partitions concatenate, in shard order, to exactly
//!   the plan a single node would draw);
//! * the [`coordinator`] runs the *same* greedy engine loops as a local
//!   solve ([`imc_core::maxr::engine`]) but plugs in a
//!   [`ClusterSource`]: `ĉ_R` marginal gains are
//!   integers and sum across shards; `ν_R` marginal gains are `f64`
//!   left folds in sample order and are **carry-chained** shard to
//!   shard (partition order) instead of summed, so the non-associative
//!   float fold reproduces the single-node value bit for bit;
//! * the [`runner`] spawns the whole topology in one process from a
//!   TOML file, checks cluster-vs-local seed identity, drives open-loop
//!   load, and writes a `BENCH_service.json` the `imc-bench perf-gate`
//!   understands.
//!
//! The wire protocol is `imc-service`'s newline-delimited JSON with the
//! shard-role ops (`eval_begin` / `eval_batch` / `eval_seed` /
//! `eval_end` / `shard_eval`) added in this crate's companion change —
//! see [`imc_service::protocol`]. See `DESIGN.md` §8 for the
//! architecture discussion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod clock;
pub mod coordinator;
pub mod health;
pub mod obs;
pub mod runner;
pub mod source;
pub mod topology;

pub use chaos::{ChaosFault, ChaosProxy, ChaosSpec};
pub use clock::ClockOffset;
pub use coordinator::{
    cluster_solve, ClusterReport, CoordError, Coordinator, CoordinatorConfig, CoordinatorHandle,
};
pub use health::{HealthBoard, HealthMonitor, ShardState};
pub use runner::{run, RunnerOptions, RunnerReport, SERVICE_SCHEMA};
pub use source::ClusterSource;
pub use topology::Topology;
