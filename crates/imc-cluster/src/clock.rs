//! NTP-style per-shard clock-offset estimation.
//!
//! Shard daemons timestamp their trace events with their own wall
//! clocks, so stitching a cross-process solve timeline needs each
//! shard's offset relative to the coordinator. A `ping` round-trip
//! carries the four NTP timestamps — client send (`t0`), server
//! receive (`t1` = the wire's `srv_recv_us`), server send (`t2` =
//! `srv_send_us`), client receive (`t3`) — and the classic midpoint
//! estimate `((t1−t0)+(t2−t3))/2` bounds the error by half the
//! round-trip time. Probing a few times and keeping the minimum-RTT
//! sample (NTP's clock filter) tightens that bound to the network's
//! best case.

use std::net::SocketAddr;
use std::time::Duration;

use imc_service::client::Client;
use imc_service::json::Value;

/// One shard's estimated clock offset relative to this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockOffset {
    /// The probed shard.
    pub addr: SocketAddr,
    /// Estimated `shard_clock − local_clock`, in microseconds: add the
    /// negation to a shard timestamp to express it on the local clock.
    pub offset_us: i64,
    /// Round-trip time of the winning (minimum-RTT) probe, in
    /// microseconds — the offset's error bound is half of this.
    pub rtt_us: u64,
    /// Probes that completed with usable server timestamps.
    pub probes: u32,
}

/// Estimates `addr`'s clock offset from `probes` ping round-trips,
/// keeping the minimum-RTT sample. Returns `None` when the shard is
/// unreachable or no probe came back with server timestamps (a v1
/// daemon whose `ping` predates `srv_recv_us`/`srv_send_us`).
pub fn estimate_offset(addr: SocketAddr, probes: u32, timeout: Duration) -> Option<ClockOffset> {
    let mut client = Client::connect(addr, timeout).ok()?;
    let mut best: Option<(u64, i64)> = None;
    let mut completed = 0u32;
    for _ in 0..probes.max(1) {
        let t0 = imc_obs::trace::now_us();
        let Ok(resp) = client.request(r#"{"op":"ping"}"#) else {
            continue;
        };
        let t3 = imc_obs::trace::now_us();
        let (Some(t1), Some(t2)) = (
            resp.get("srv_recv_us").and_then(Value::as_u64),
            resp.get("srv_send_us").and_then(Value::as_u64),
        ) else {
            continue;
        };
        completed += 1;
        // Wall clocks can step; saturate rather than wrap on the rare
        // backwards tick mid-probe.
        let rtt = t3.saturating_sub(t0).saturating_sub(t2.saturating_sub(t1));
        let offset = ((t1 as i64 - t0 as i64) + (t2 as i64 - t3 as i64)) / 2;
        if best.is_none_or(|(r, _)| rtt < r) {
            best = Some((rtt, offset));
        }
    }
    let (rtt_us, offset_us) = best?;
    Some(ClockOffset {
        addr,
        offset_us,
        rtt_us,
        probes: completed,
    })
}

/// Probes every shard and emits one `clock_offset` trace event per
/// reachable shard (the stitcher reads these to translate shard
/// timestamps onto the coordinator's clock). Unreachable shards are
/// skipped — alignment is best-effort diagnostics, never a solve
/// dependency.
pub fn align(addrs: &[SocketAddr], probes: u32, timeout: Duration) -> Vec<ClockOffset> {
    addrs
        .iter()
        .filter_map(|&addr| {
            let est = estimate_offset(addr, probes, timeout)?;
            imc_obs::trace::emit(
                imc_obs::trace::TraceEvent::new("clock_offset")
                    .field("shard", addr.to_string())
                    .field("offset_us", est.offset_us)
                    .field("rtt_us", est.rtt_us)
                    .field("probes", u64::from(est.probes)),
            );
            Some(est)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    /// A fake daemon whose clock runs `shift_us` ahead of ours.
    fn fake_shard(shift_us: i64) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut stream = stream;
            let mut line = String::new();
            while let Ok(n) = reader.read_line(&mut line) {
                if n == 0 {
                    break;
                }
                let now = imc_obs::trace::now_us() as i64 + shift_us;
                let resp = format!(
                    "{{\"ok\":true,\"op\":\"ping\",\"srv_recv_us\":{now},\"srv_send_us\":{now}}}\n"
                );
                if stream.write_all(resp.as_bytes()).is_err() {
                    break;
                }
                line.clear();
            }
        });
        (addr, handle)
    }

    #[test]
    fn offset_recovers_a_known_clock_shift() {
        const SHIFT: i64 = 5_000_000; // five seconds — way above loopback RTT noise
        let (addr, server) = fake_shard(SHIFT);
        let est = estimate_offset(addr, 4, Duration::from_secs(5)).expect("estimate");
        assert_eq!(est.addr, addr);
        assert_eq!(est.probes, 4);
        assert!(
            (est.offset_us - SHIFT).abs() <= 250_000,
            "offset {} should be within 250ms of the injected {SHIFT}",
            est.offset_us
        );
        // The minimum-RTT probe on loopback is tight.
        assert!(est.rtt_us < 1_000_000, "rtt {}", est.rtt_us);
        server.join().unwrap();
    }

    #[test]
    fn missing_server_timestamps_yield_none() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut stream = stream;
            let mut line = String::new();
            while let Ok(n) = reader.read_line(&mut line) {
                if n == 0 {
                    break;
                }
                // A v1 ping response: no srv_recv_us/srv_send_us.
                if stream
                    .write_all(b"{\"ok\":true,\"op\":\"ping\",\"elapsed_us\":3}\n")
                    .is_err()
                {
                    break;
                }
                line.clear();
            }
        });
        assert!(estimate_offset(addr, 2, Duration::from_secs(5)).is_none());
        server.join().unwrap();
    }
}
