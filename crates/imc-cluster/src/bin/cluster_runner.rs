//! `cluster-runner` — spawn a sharded imc cluster from a topology file,
//! verify distributed/single-node seed identity, drive open-loop load,
//! and write a `BENCH_service.json` artifact.
//!
//! ```text
//! cluster-runner --topology data/topology.toml --out BENCH_service.json
//! ```
//!
//! With `--chaos kind:shard@after[:millis]` the named shard is put
//! behind a fault-injecting proxy and the run verifies the
//! coordinator's recovery contract instead of driving load: a
//! transient fault (`drop` / `hang` / `slow`) must leave the answer
//! bitwise identical to single-node; a permanent fault (`kill`) must
//! complete degraded (`approximate: true`, the lost shard named) with
//! seeds matching a fresh solve over the surviving shard set.

use std::path::PathBuf;
use std::process::ExitCode;

use imc_cluster::{run, ChaosSpec, RunnerOptions, Topology};

const USAGE: &str = "usage: cluster-runner --topology <topology.toml> \
     [--out <BENCH_service.json>] [--chaos <kind:shard@after[:millis]>] \
     [--trace <trace.jsonl>] [--quiet]";

fn main() -> ExitCode {
    let mut topology_path: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut chaos: Option<ChaosSpec> = None;
    let mut trace: Option<PathBuf> = None;
    let mut verbose = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--topology" => topology_path = args.next().map(PathBuf::from),
            "--out" => out = args.next().map(PathBuf::from),
            "--chaos" => {
                let Some(spec) = args.next() else {
                    eprintln!("cluster-runner: --chaos needs a spec\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                chaos = match ChaosSpec::parse(&spec) {
                    Ok(spec) => Some(spec),
                    Err(e) => {
                        eprintln!("cluster-runner: {e}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--trace" => trace = args.next().map(PathBuf::from),
            "--quiet" => verbose = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cluster-runner: unknown argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(topology_path) = topology_path else {
        eprintln!("cluster-runner: missing --topology\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let topology = match Topology::load(&topology_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cluster-runner: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut options = RunnerOptions::new(topology, out);
    options.verbose = verbose;
    options.chaos = chaos;
    options.trace = trace;
    match run(&options) {
        Ok(report) => {
            println!("{}", report.to_json());
            if report.seeds_identical && report.evaluations_identical && report.eval_roundtrip {
                ExitCode::SUCCESS
            } else {
                eprintln!("cluster-runner: identity checks FAILED");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("cluster-runner: {e}");
            ExitCode::FAILURE
        }
    }
}
