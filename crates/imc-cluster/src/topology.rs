//! Cluster topology files.
//!
//! A topology is a tiny, hand-rolled TOML subset — `[section]` headers
//! and `key = value` pairs where values are integers, floats, booleans
//! or double-quoted strings. Comments start with `#`. That is all the
//! cluster runner needs, and it keeps the crate std-only (the container
//! image has no TOML crate and the repo policy forbids adding one).
//!
//! ```toml
//! [cluster]
//! shards = 2
//! samples = 40000
//!
//! [instance]
//! dataset = "wiki-vote"
//! scale = 0.3
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;

/// A parse or validation failure for a topology file.
#[derive(Debug)]
pub struct TopologyError {
    detail: String,
}

impl TopologyError {
    fn new(detail: impl Into<String>) -> Self {
        Self {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topology: {}", self.detail)
    }
}

impl std::error::Error for TopologyError {}

/// One parsed scalar value.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Int(i64),
    Float(f64),
    Bool(bool),
    Str(String),
}

/// Flat `section.key -> value` view of a parsed file.
#[derive(Debug, Default)]
struct Table {
    entries: BTreeMap<String, Scalar>,
}

impl Table {
    fn parse(text: &str) -> Result<Self, TopologyError> {
        let mut entries = BTreeMap::new();
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                // A '#' inside a quoted string would break here; the
                // runner never writes such values, so reject them.
                Some(idx) if raw[..idx].matches('"').count() % 2 == 0 => &raw[..idx],
                Some(_) => {
                    return Err(TopologyError::new(format!(
                        "line {}: '#' inside a quoted value is unsupported",
                        lineno + 1
                    )))
                }
                None => raw,
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    return Err(TopologyError::new(format!(
                        "line {}: invalid section name {name:?}",
                        lineno + 1
                    )));
                }
                section = name.to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(TopologyError::new(format!(
                    "line {}: expected `key = value`, got {line:?}",
                    lineno + 1
                )));
            };
            let key = key.trim();
            if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(TopologyError::new(format!(
                    "line {}: invalid key {key:?}",
                    lineno + 1
                )));
            }
            let scalar = Self::parse_scalar(value.trim()).ok_or_else(|| {
                TopologyError::new(format!(
                    "line {}: cannot parse value {:?}",
                    lineno + 1,
                    value.trim()
                ))
            })?;
            let full = if section.is_empty() {
                key.to_string()
            } else {
                format!("{section}.{key}")
            };
            if entries.insert(full.clone(), scalar).is_some() {
                return Err(TopologyError::new(format!("duplicate key {full:?}")));
            }
        }
        Ok(Self { entries })
    }

    fn parse_scalar(text: &str) -> Option<Scalar> {
        if let Some(body) = text.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
            if body.contains('"') || body.contains('\\') {
                return None;
            }
            return Some(Scalar::Str(body.to_string()));
        }
        match text {
            "true" => return Some(Scalar::Bool(true)),
            "false" => return Some(Scalar::Bool(false)),
            _ => {}
        }
        if let Ok(i) = text.parse::<i64>() {
            return Some(Scalar::Int(i));
        }
        if text.contains(['.', 'e', 'E']) {
            if let Ok(f) = text.parse::<f64>() {
                return Some(Scalar::Float(f));
            }
        }
        None
    }

    fn u64(&self, key: &str, default: u64) -> Result<u64, TopologyError> {
        match self.entries.get(key) {
            None => Ok(default),
            Some(Scalar::Int(i)) if *i >= 0 => Ok(*i as u64),
            Some(other) => Err(TopologyError::new(format!(
                "{key} must be a non-negative integer, got {other:?}"
            ))),
        }
    }

    fn f64(&self, key: &str, default: f64) -> Result<f64, TopologyError> {
        match self.entries.get(key) {
            None => Ok(default),
            Some(Scalar::Float(f)) => Ok(*f),
            Some(Scalar::Int(i)) => Ok(*i as f64),
            Some(other) => Err(TopologyError::new(format!(
                "{key} must be a number, got {other:?}"
            ))),
        }
    }

    fn string(&self, key: &str, default: &str) -> Result<String, TopologyError> {
        match self.entries.get(key) {
            None => Ok(default.to_string()),
            Some(Scalar::Str(s)) => Ok(s.clone()),
            Some(other) => Err(TopologyError::new(format!(
                "{key} must be a string, got {other:?}"
            ))),
        }
    }

    fn bool(&self, key: &str, default: bool) -> Result<bool, TopologyError> {
        match self.entries.get(key) {
            None => Ok(default),
            Some(Scalar::Bool(b)) => Ok(*b),
            Some(other) => Err(TopologyError::new(format!(
                "{key} must be true or false, got {other:?}"
            ))),
        }
    }
}

/// A parsed and validated cluster topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Number of shard daemons (each owns one sampling-plan partition).
    pub shards: usize,
    /// Sampling worker threads per shard.
    pub workers: usize,
    /// Base RNG seed for the sampling plan shared by every shard.
    pub base_seed: u64,
    /// Total RIC samples across the whole cluster.
    pub samples: usize,
    /// Seed-set budget used by the runner's solve check.
    pub k: u32,
    /// Dataset identifier (as accepted by `imc-datasets`).
    pub dataset: String,
    /// Dataset scale factor for synthetic analogs.
    pub scale: f64,
    /// Louvain community size cap (`split_larger_than`).
    pub size_cap: usize,
    /// Constant community threshold.
    pub threshold: u32,
    /// Instance-construction seed (Louvain + dataset generation).
    pub instance_seed: u64,
    /// Directory for per-shard snapshot caching (empty disables it).
    /// When set, each shard daemon persists its sampling-plan
    /// partition as a format-v3 snapshot and cold-starts from it on
    /// the next run instead of re-drawing the samples.
    pub snapshot_dir: String,
    /// Open-loop load: concurrent client connections.
    pub load_connections: usize,
    /// Open-loop load: total requests across all connections.
    pub load_requests: usize,
    /// Open-loop load: seed-set size per `estimate` request.
    pub load_seeds_per_request: usize,
    /// Retry attempts per stateless shard RPC (minimum 1 = no retry).
    pub retry_attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub retry_base_ms: u64,
    /// Cap on any single backoff delay, in milliseconds.
    pub retry_cap_ms: u64,
    /// Jitter fraction in `[0, 1]` applied to each backoff delay.
    pub retry_jitter: f64,
    /// Cap on one health-probe (`ping`) round-trip, in milliseconds.
    pub probe_timeout_ms: u64,
    /// Background health-probe period in milliseconds; 0 disables the
    /// periodic prober (shards are still probed on demand).
    pub probe_interval_ms: u64,
    /// Whether the coordinator degrades (answers `approximate` over the
    /// surviving shards) instead of failing when a shard dies.
    pub degrade: bool,
}

impl Topology {
    /// Parse a topology from TOML text.
    pub fn parse(text: &str) -> Result<Self, TopologyError> {
        let table = Table::parse(text)?;
        let topo = Self {
            shards: table.u64("cluster.shards", 2)? as usize,
            workers: table.u64("cluster.workers", 2)? as usize,
            base_seed: table.u64("cluster.base_seed", 1234)?,
            samples: table.u64("cluster.samples", 40_000)? as usize,
            k: table.u64("cluster.k", 25)? as u32,
            dataset: table.string("instance.dataset", "wiki-vote")?,
            scale: table.f64("instance.scale", 0.3)?,
            size_cap: table.u64("instance.size_cap", 8)? as usize,
            threshold: table.u64("instance.threshold", 2)? as u32,
            instance_seed: table.u64("instance.seed", 1)?,
            snapshot_dir: table.string("cluster.snapshot_dir", "")?,
            load_connections: table.u64("load.connections", 4)? as usize,
            load_requests: table.u64("load.requests", 200)? as usize,
            load_seeds_per_request: table.u64("load.seeds_per_request", 8)? as usize,
            retry_attempts: table.u64("fault.retry_attempts", 3)? as u32,
            retry_base_ms: table.u64("fault.retry_base_ms", 50)?,
            retry_cap_ms: table.u64("fault.retry_cap_ms", 2_000)?,
            retry_jitter: table.f64("fault.retry_jitter", 0.2)?,
            probe_timeout_ms: table.u64("fault.probe_timeout_ms", 500)?,
            probe_interval_ms: table.u64("fault.probe_interval_ms", 0)?,
            degrade: table.bool("fault.degrade", true)?,
        };
        topo.validate()?;
        Ok(topo)
    }

    /// Load and parse a topology file from disk.
    pub fn load(path: &Path) -> Result<Self, TopologyError> {
        let text = fs::read_to_string(path)
            .map_err(|e| TopologyError::new(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    fn validate(&self) -> Result<(), TopologyError> {
        if self.shards == 0 {
            return Err(TopologyError::new("cluster.shards must be at least 1"));
        }
        if self.workers == 0 {
            return Err(TopologyError::new("cluster.workers must be at least 1"));
        }
        if self.samples == 0 {
            return Err(TopologyError::new("cluster.samples must be at least 1"));
        }
        if self.k == 0 {
            return Err(TopologyError::new("cluster.k must be at least 1"));
        }
        if !(self.scale > 0.0 && self.scale.is_finite()) {
            return Err(TopologyError::new(
                "instance.scale must be a positive number",
            ));
        }
        if self.threshold == 0 {
            return Err(TopologyError::new("instance.threshold must be at least 1"));
        }
        if self.load_connections == 0 || self.load_seeds_per_request == 0 {
            return Err(TopologyError::new(
                "load.connections and load.seeds_per_request must be at least 1",
            ));
        }
        if self.retry_attempts == 0 {
            return Err(TopologyError::new(
                "fault.retry_attempts must be at least 1 (1 = no retry)",
            ));
        }
        if !(0.0..=1.0).contains(&self.retry_jitter) {
            return Err(TopologyError::new("fault.retry_jitter must be in [0, 1]"));
        }
        if self.probe_timeout_ms == 0 {
            return Err(TopologyError::new(
                "fault.probe_timeout_ms must be at least 1",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_topology() {
        let text = r#"
            # two-shard smoke topology
            [cluster]
            shards = 2
            workers = 3
            base_seed = 99
            samples = 1024
            k = 7
            snapshot_dir = "cache/shards"

            [instance]
            dataset = "wiki-vote"  # synthetic analog
            scale = 0.25
            size_cap = 8
            threshold = 2
            seed = 5

            [load]
            connections = 2
            requests = 10
            seeds_per_request = 4

            [fault]
            retry_attempts = 4
            retry_base_ms = 10
            retry_cap_ms = 100
            retry_jitter = 0.1
            probe_timeout_ms = 250
            probe_interval_ms = 1000
            degrade = false
        "#;
        let topo = Topology::parse(text).unwrap();
        assert_eq!(topo.shards, 2);
        assert_eq!(topo.workers, 3);
        assert_eq!(topo.base_seed, 99);
        assert_eq!(topo.samples, 1024);
        assert_eq!(topo.k, 7);
        assert_eq!(topo.dataset, "wiki-vote");
        assert!((topo.scale - 0.25).abs() < 1e-12);
        assert_eq!(topo.size_cap, 8);
        assert_eq!(topo.threshold, 2);
        assert_eq!(topo.instance_seed, 5);
        assert_eq!(topo.snapshot_dir, "cache/shards");
        assert_eq!(topo.load_connections, 2);
        assert_eq!(topo.load_requests, 10);
        assert_eq!(topo.load_seeds_per_request, 4);
        assert_eq!(topo.retry_attempts, 4);
        assert_eq!(topo.retry_base_ms, 10);
        assert_eq!(topo.retry_cap_ms, 100);
        assert!((topo.retry_jitter - 0.1).abs() < 1e-12);
        assert_eq!(topo.probe_timeout_ms, 250);
        assert_eq!(topo.probe_interval_ms, 1000);
        assert!(!topo.degrade);
    }

    #[test]
    fn defaults_fill_missing_sections() {
        let topo = Topology::parse("[cluster]\nshards = 4\n").unwrap();
        assert_eq!(topo.shards, 4);
        assert_eq!(topo.samples, 40_000);
        assert_eq!(topo.dataset, "wiki-vote");
        assert_eq!(topo.snapshot_dir, "");
        assert_eq!(topo.retry_attempts, 3);
        assert_eq!(topo.retry_base_ms, 50);
        assert_eq!(topo.retry_cap_ms, 2_000);
        assert_eq!(topo.probe_timeout_ms, 500);
        assert_eq!(topo.probe_interval_ms, 0, "periodic prober off by default");
        assert!(topo.degrade, "degraded answers on by default");
    }

    #[test]
    fn rejects_zero_shards_and_garbage() {
        assert!(Topology::parse("[cluster]\nshards = 0\n").is_err());
        assert!(Topology::parse("not toml at all").is_err());
        assert!(Topology::parse("[cluster]\nshards = \"two\"\n").is_err());
        assert!(Topology::parse("[cluster]\nshards = 1\nshards = 2\n").is_err());
        assert!(Topology::parse("[fault]\nretry_attempts = 0\n").is_err());
        assert!(Topology::parse("[fault]\nretry_jitter = 1.5\n").is_err());
        assert!(Topology::parse("[fault]\ndegrade = 1\n").is_err());
    }
}
