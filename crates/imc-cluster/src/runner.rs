//! The cluster load-test runner: spawns a whole topology (N shard
//! daemons + one coordinator) inside one process, proves the cluster
//! solve identical to a single-node reference, drives open-loop load,
//! and emits a `BENCH_service.json` the `imc-bench perf-gate`
//! understands (`imc-bench/service/v1`).
//!
//! Everything is deterministic: the instance comes from the synthetic
//! dataset analogs, every shard draws partition `i` of the
//! `sampling_shard_plan` rooted at the topology's `base_seed`, and the
//! single-node reference draws the same plan un-partitioned — so
//! `seeds_identical` is a real end-to-end distributed-vs-local check,
//! not a tautology.

use std::fmt;
use std::fs;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use imc_community::{BenefitPolicy, CommunitySet, ThresholdPolicy};
use imc_core::snapshot;
use imc_core::{ImcInstance, MaxrAlgorithm, RicSampler, RicStore, SolveRequest};
use imc_datasets::DatasetId;
use imc_graph::WeightModel;
use imc_service::client::{Client, RetryPolicy};
use imc_service::json::{self, ObjectBuilder, Value};
use imc_service::{ServeConfig, Server, ServerHandle, ServiceState};

use crate::chaos::{ChaosFault, ChaosProxy, ChaosSpec};
use crate::coordinator::{Coordinator, CoordinatorConfig, CoordinatorHandle};
use crate::obs;
use crate::topology::Topology;

/// Schema tag of the emitted benchmark artifact.
pub const SERVICE_SCHEMA: &str = "imc-bench/service/v1";

/// A runner failure, with a human-readable message.
#[derive(Debug)]
pub struct RunnerError {
    detail: String,
}

impl RunnerError {
    fn new(detail: impl Into<String>) -> Self {
        Self {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster runner: {}", self.detail)
    }
}

impl std::error::Error for RunnerError {}

impl From<crate::topology::TopologyError> for RunnerError {
    fn from(e: crate::topology::TopologyError) -> Self {
        RunnerError::new(e.to_string())
    }
}

impl From<std::io::Error> for RunnerError {
    fn from(e: std::io::Error) -> Self {
        RunnerError::new(e.to_string())
    }
}

/// What to run and where to put the artifact.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// The parsed topology.
    pub topology: Topology,
    /// Where to write `BENCH_service.json` (`None` skips the write).
    pub out: Option<PathBuf>,
    /// Dataset directory for `imc-datasets` drop-in files (the bench
    /// harness convention is `data/`).
    pub data_dir: PathBuf,
    /// Print progress lines to stderr.
    pub verbose: bool,
    /// Fault to inject (`--chaos`): puts one shard behind a
    /// [`ChaosProxy`] and verifies the coordinator's recovery story
    /// instead of driving load.
    pub chaos: Option<ChaosSpec>,
    /// JSONL trace sink (`--trace`): every request's trace events are
    /// appended here for the run's duration.
    pub trace: Option<PathBuf>,
}

impl RunnerOptions {
    /// Options for a topology with the artifact written to `out`.
    pub fn new(topology: Topology, out: Option<PathBuf>) -> Self {
        RunnerOptions {
            topology,
            out,
            data_dir: PathBuf::from("data"),
            verbose: true,
            chaos: None,
            trace: None,
        }
    }
}

/// Everything the run measured; serialized by [`RunnerReport::to_json`].
#[derive(Debug, Clone)]
pub struct RunnerReport {
    /// Dataset name from the topology.
    pub dataset: String,
    /// Total samples across all shards.
    pub samples: usize,
    /// Solve budget.
    pub k: u32,
    /// Shard count.
    pub shards: usize,
    /// Cluster GREEDY seeds bitwise equal to the single-node reference.
    pub seeds_identical: bool,
    /// Cluster evaluation count equal to the single-node engine's.
    pub evaluations_identical: bool,
    /// The raw shard eval ops round-tripped on shard 0.
    pub eval_roundtrip: bool,
    /// Wall seconds of the distributed solve RPC.
    pub solve_seconds: f64,
    /// Evaluations reported by the distributed solve.
    pub solve_evaluations: u64,
    /// Open-loop requests completed.
    pub load_requests: usize,
    /// Concurrent load connections.
    pub load_connections: usize,
    /// Completed requests per wall second during the load phase.
    pub throughput_rps: f64,
    /// p50 request latency (µs) from the
    /// `imc_cluster_request_duration_seconds` histogram.
    pub p50_us: u64,
    /// p99 request latency (µs) from the same histogram.
    pub p99_us: u64,
    /// Chaos-mode outcome (`None` for normal runs).
    pub chaos: Option<ChaosReport>,
}

/// What a chaos run observed, serialized under the artifact's `chaos`
/// key.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The injected spec, in `--chaos` syntax.
    pub spec: String,
    /// Whether the solve came back flagged `approximate`.
    pub approximate: bool,
    /// `lost_shards` from the solve response.
    pub lost_shards: Vec<String>,
    /// `effective_samples` from the solve response.
    pub effective_samples: u64,
    /// For a permanent fault: whether the degraded seeds matched a
    /// fresh solve over the surviving shard set. For a transient
    /// fault this mirrors `seeds_identical` (vs single-node).
    pub degraded_match: bool,
}

impl RunnerReport {
    /// Serializes the report as the `imc-bench/service/v1` artifact.
    pub fn to_json(&self) -> String {
        let value = ObjectBuilder::new()
            .field("schema", SERVICE_SCHEMA)
            .field("dataset", self.dataset.as_str())
            .field("samples", self.samples)
            .field("k", u64::from(self.k))
            .field("shards", self.shards)
            .field("seeds_identical", self.seeds_identical)
            .field("evaluations_identical", self.evaluations_identical)
            .field("eval_roundtrip", self.eval_roundtrip)
            .field(
                "solve",
                ObjectBuilder::new()
                    .field("seconds", self.solve_seconds)
                    .field("evaluations", self.solve_evaluations)
                    .build(),
            )
            .field(
                "load",
                ObjectBuilder::new()
                    .field("requests", self.load_requests)
                    .field("connections", self.load_connections)
                    .field("throughput_rps", self.throughput_rps)
                    .field("p50_us", self.p50_us)
                    .field("p99_us", self.p99_us)
                    .build(),
            );
        let value = match &self.chaos {
            Some(chaos) => value.field(
                "chaos",
                ObjectBuilder::new()
                    .field("spec", chaos.spec.as_str())
                    .field("approximate", chaos.approximate)
                    .field("lost_shards", chaos.lost_shards.clone())
                    .field("effective_samples", chaos.effective_samples)
                    .field("degraded_match", chaos.degraded_match)
                    .build(),
            ),
            None => value,
        };
        json::to_string(&value.build())
    }
}

/// Maps a topology dataset name to its [`DatasetId`].
fn parse_dataset(name: &str) -> Result<DatasetId, RunnerError> {
    imc_datasets::all()
        .into_iter()
        .find(|&id| imc_datasets::spec(id).name == name)
        .ok_or_else(|| {
            let names: Vec<&str> = imc_datasets::all()
                .into_iter()
                .map(|id| imc_datasets::spec(id).name)
                .collect();
            RunnerError::new(format!(
                "unknown dataset `{name}` (expected one of {})",
                names.join(" | ")
            ))
        })
}

/// Builds the solve instance exactly as the bench harness does: dataset
/// analog, weighted-cascade weights, Louvain communities split at the
/// size cap, constant thresholds, population benefits.
fn build_instance(topo: &Topology, data_dir: &Path) -> Result<ImcInstance, RunnerError> {
    let id = parse_dataset(&topo.dataset)?;
    let (graph, _source) =
        imc_datasets::load_or_generate(id, data_dir, topo.scale, topo.instance_seed)
            .map_err(|e| RunnerError::new(format!("dataset load failed: {e}")))?;
    let graph = graph.reweighted(WeightModel::WeightedCascade);
    let communities = CommunitySet::builder(&graph)
        .louvain(topo.instance_seed)
        .split_larger_than(topo.size_cap)
        .threshold(ThresholdPolicy::Constant(topo.threshold))
        .benefit(BenefitPolicy::Population)
        .build()
        .map_err(|e| RunnerError::new(format!("community build failed: {e}")))?;
    ImcInstance::new(graph, communities)
        .map_err(|e| RunnerError::new(format!("instance build failed: {e}")))
}

/// Cache path for one shard's sampling-plan partition. The filename
/// binds every input that determines the partition's contents
/// (partition index and count, total samples, base seed, instance
/// fingerprint), so a parameter change simply misses the cache instead
/// of silently reusing stale samples.
fn shard_snapshot_path(dir: &Path, fingerprint: u64, topo: &Topology, partition: usize) -> PathBuf {
    dir.join(format!(
        "shard-{partition}-of-{shards}-n{samples}-b{base_seed}-{fingerprint:016x}.snap",
        shards = topo.shards,
        samples = topo.samples,
        base_seed = topo.base_seed,
    ))
}

/// Loads one shard's store from the snapshot cache, or draws the
/// partition fresh and (best-effort) persists it for the next run.
///
/// Cache writes go through a temp file + rename so a crashed run can
/// never leave a truncated snapshot behind, and every cache failure —
/// unreadable file, wrong version, fingerprint mismatch — degrades to
/// the fresh-draw path. Correctness never depends on the cache: the
/// runner's end-to-end `seeds_identical` check compares the cluster
/// against an uncached single-node solve.
fn load_or_build_shard_store(
    sampler: &RicSampler<'_>,
    fingerprint: u64,
    topo: &Topology,
    partition: usize,
    snapshot_dir: Option<&Path>,
    log: &dyn Fn(&str),
) -> RicStore {
    let cache_path = snapshot_dir.map(|dir| shard_snapshot_path(dir, fingerprint, topo, partition));
    if let Some(path) = &cache_path {
        if let Ok(bytes) = fs::read(path) {
            match snapshot::decode(&bytes) {
                Ok(data) if data.fingerprint == fingerprint => {
                    log(&format!(
                        "shard {partition}: cold-started from snapshot cache {} ({} samples)",
                        path.display(),
                        data.collection.len()
                    ));
                    return data.collection;
                }
                Ok(data) => log(&format!(
                    "shard {partition}: cache fingerprint mismatch ({:#018x} != {:#018x}), re-drawing",
                    data.fingerprint, fingerprint
                )),
                Err(e) => log(&format!(
                    "shard {partition}: unreadable cache {}: {e}; re-drawing",
                    path.display()
                )),
            }
        }
    }
    let mut store = RicStore::for_sampler(sampler);
    store.extend_partition(
        sampler,
        topo.samples,
        topo.base_seed,
        partition,
        topo.shards,
        topo.workers,
    );
    if let Some(path) = &cache_path {
        let bytes = snapshot::encode(&store, fingerprint, 0);
        let written = path
            .parent()
            .map(fs::create_dir_all)
            .transpose()
            .and_then(|_| {
                let tmp = path.with_extension("snap.tmp");
                fs::write(&tmp, &bytes)?;
                fs::rename(&tmp, path)
            });
        match written {
            Ok(()) => log(&format!(
                "shard {partition}: cached {} bytes at {}",
                bytes.len(),
                path.display()
            )),
            Err(e) => log(&format!(
                "shard {partition}: could not write cache {}: {e}",
                path.display()
            )),
        }
    }
    store
}

/// Builds the coordinator config the topology's `[fault]` section asks
/// for, fronting `shards`.
fn coordinator_config(topo: &Topology, shards: Vec<SocketAddr>) -> CoordinatorConfig {
    CoordinatorConfig {
        shards,
        retry: RetryPolicy {
            attempts: topo.retry_attempts,
            base_delay: Duration::from_millis(topo.retry_base_ms),
            max_delay: Duration::from_millis(topo.retry_cap_ms),
            jitter: topo.retry_jitter,
        },
        probe_timeout: Duration::from_millis(topo.probe_timeout_ms),
        probe_interval: (topo.probe_interval_ms > 0)
            .then(|| Duration::from_millis(topo.probe_interval_ms)),
        degrade: topo.degrade,
        ..CoordinatorConfig::default()
    }
}

/// A running topology: shard daemons plus the coordinator, with an
/// optional chaos proxy spliced in front of one shard.
struct Cluster {
    shard_handles: Vec<ServerHandle>,
    /// What the coordinator dials — the proxy address for the chaos
    /// shard, daemon addresses for the rest.
    front_addrs: Vec<SocketAddr>,
    /// The daemons' real addresses, bypassing any proxy. Direct checks
    /// (eval round-trip, fresh-survivor solves) use these so they never
    /// consume the proxy's request-count trigger.
    daemon_addrs: Vec<SocketAddr>,
    proxy: Option<ChaosProxy>,
    coordinator: CoordinatorHandle,
}

impl Cluster {
    /// Spawns the shard daemons (each over its sampling-plan partition)
    /// and the coordinator fronting them, all on ephemeral ports.
    /// With a `snapshot_dir`, shard stores load from the format-v3
    /// cache when a matching file exists and are persisted otherwise.
    /// With a `chaos` spec, the named shard sits behind a
    /// [`ChaosProxy`] armed with the spec's fault.
    fn spawn(
        instance: &Arc<ImcInstance>,
        topo: &Topology,
        snapshot_dir: Option<&Path>,
        chaos: Option<&ChaosSpec>,
        log: &dyn Fn(&str),
    ) -> Result<Cluster, RunnerError> {
        if let Some(spec) = chaos {
            if spec.shard >= topo.shards {
                return Err(RunnerError::new(format!(
                    "chaos spec names shard {} but the topology has only {}",
                    spec.shard, topo.shards
                )));
            }
        }
        let sampler = instance.sampler();
        let fingerprint = snapshot::instance_fingerprint(instance.graph(), instance.communities());
        let mut shard_handles = Vec::with_capacity(topo.shards);
        let mut daemon_addrs = Vec::with_capacity(topo.shards);
        // Connections occupy shard pool workers for their lifetime, so
        // the pool must cover every concurrent coordinator connection
        // (load connections + the solve/check connection + slack).
        let workers = (topo.load_connections + 2).max(topo.workers);
        for partition in 0..topo.shards {
            let store = load_or_build_shard_store(
                &sampler,
                fingerprint,
                topo,
                partition,
                snapshot_dir,
                log,
            );
            let state = Arc::new(ServiceState::new((**instance).clone(), store, 0));
            let config = ServeConfig {
                workers,
                refresh: None,
                ..ServeConfig::default()
            };
            let handle = Server::start(state, config)?;
            daemon_addrs.push(handle.addr());
            shard_handles.push(handle);
        }
        let mut front_addrs = daemon_addrs.clone();
        let proxy = match chaos {
            Some(spec) => {
                let proxy = ChaosProxy::start(daemon_addrs[spec.shard], spec.fault, spec.after)?;
                log(&format!(
                    "chaos: shard {} ({}) behind proxy {} armed with {spec}",
                    spec.shard,
                    daemon_addrs[spec.shard],
                    proxy.addr()
                ));
                front_addrs[spec.shard] = proxy.addr();
                Some(proxy)
            }
            None => None,
        };
        let coordinator = Coordinator::start(
            Arc::clone(instance),
            coordinator_config(topo, front_addrs.clone()),
        )?;
        Ok(Cluster {
            shard_handles,
            front_addrs,
            daemon_addrs,
            proxy,
            coordinator,
        })
    }

    fn stop(self) {
        self.coordinator.stop_and_join();
        if let Some(proxy) = self.proxy {
            proxy.stop_and_join();
        }
        for handle in self.shard_handles {
            handle.stop_and_join();
        }
    }
}

/// One request/response against `addr`, with response errors mapped to
/// [`RunnerError`].
fn roundtrip(client: &mut Client, line: &str, what: &str) -> Result<Value, RunnerError> {
    let value = client
        .request(line)
        .map_err(|e| RunnerError::new(format!("{what}: {e}")))?;
    match value.get("ok").and_then(Value::as_bool) {
        Some(true) => Ok(value),
        _ => Err(RunnerError::new(format!(
            "{what} failed: {}",
            json::to_string(&value)
        ))),
    }
}

/// Checks the raw shard-role ops on shard 0: `eval_begin` →
/// `eval_batch`(ĉ) → `eval_seed` → `eval_batch`(ν with carry) →
/// `eval_end` must round-trip coherently.
fn check_eval_roundtrip(addr: SocketAddr, node_count: usize) -> Result<(), RunnerError> {
    let mut client = Client::connect(addr, Duration::from_secs(10))
        .map_err(|e| RunnerError::new(format!("shard connect: {e}")))?;
    let begin = roundtrip(&mut client, r#"{"op":"eval_begin"}"#, "eval_begin")?;
    let session = begin
        .get("session")
        .and_then(Value::as_u64)
        .ok_or_else(|| RunnerError::new("eval_begin returned no session id"))?;
    let probe: Vec<u64> = (0..node_count.min(4) as u64).collect();
    let nodes = json::to_string(&Value::from(probe.clone()));
    let c = roundtrip(
        &mut client,
        &format!(r#"{{"op":"eval_batch","session":{session},"kind":"c","nodes":{nodes}}}"#),
        "eval_batch c",
    )?;
    let gains = c
        .get("gains")
        .and_then(Value::as_array)
        .ok_or_else(|| RunnerError::new("eval_batch returned no gains"))?;
    if gains.len() != probe.len() {
        return Err(RunnerError::new(format!(
            "eval_batch returned {} gains for {} nodes",
            gains.len(),
            probe.len()
        )));
    }
    roundtrip(
        &mut client,
        &format!(r#"{{"op":"eval_seed","session":{session},"node":0}}"#),
        "eval_seed",
    )?;
    let nu = roundtrip(
        &mut client,
        &format!(r#"{{"op":"eval_batch","session":{session},"kind":"nu","nodes":{nodes}}}"#),
        "eval_batch nu",
    )?;
    if nu.get("accs").and_then(Value::as_array).map(<[Value]>::len) != Some(probe.len()) {
        return Err(RunnerError::new("eval_batch nu returned a bad accs array"));
    }
    roundtrip(
        &mut client,
        &format!(r#"{{"op":"eval_end","session":{session}}}"#),
        "eval_end",
    )?;
    Ok(())
}

/// Drives `requests` estimate calls over `connections` concurrent
/// clients against the coordinator; returns (completed, wall seconds).
fn drive_load(
    addr: SocketAddr,
    topo: &Topology,
    node_count: usize,
) -> Result<(usize, f64), RunnerError> {
    let connections = topo.load_connections;
    let total = topo.load_requests;
    let per_connection = total / connections;
    let remainder = total % connections;
    let start = Instant::now();
    let completed: usize = thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let requests = per_connection + usize::from(c < remainder);
                let seeds_per_request = topo.load_seeds_per_request;
                scope.spawn(move || {
                    let Ok(mut client) = Client::connect(addr, Duration::from_secs(30)) else {
                        return 0usize;
                    };
                    let mut done = 0usize;
                    for r in 0..requests {
                        // Deterministic, connection-and-round varied
                        // seed sets within the node-id space.
                        let seeds: Vec<u64> = (0..seeds_per_request)
                            .map(|s| ((c * 7919 + r * 104_729 + s * 31) % node_count) as u64)
                            .collect();
                        let line = json::to_string(
                            &ObjectBuilder::new()
                                .field("op", "estimate")
                                .field("seeds", seeds)
                                .build(),
                        );
                        match client.request(&line) {
                            Ok(v) if v.get("ok").and_then(Value::as_bool) == Some(true) => {
                                done += 1;
                            }
                            _ => break,
                        }
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    });
    let elapsed = start.elapsed().as_secs_f64();
    if completed != total {
        return Err(RunnerError::new(format!(
            "load drive completed only {completed}/{total} requests"
        )));
    }
    Ok((completed, elapsed))
}

/// Runs the full harness: spawn, verify, load, report.
///
/// # Errors
///
/// Any spawn, protocol, identity-check or artifact-write failure.
pub fn run(options: &RunnerOptions) -> Result<RunnerReport, RunnerError> {
    let topo = &options.topology;
    let log = |msg: &str| {
        if options.verbose {
            eprintln!("cluster-runner: {msg}");
        }
    };
    if let Some(trace) = &options.trace {
        imc_obs::trace::set_sink_path(trace)
            .map_err(|e| RunnerError::new(format!("cannot open trace sink: {e}")))?;
        log(&format!("tracing to {}", trace.display()));
    }
    log(&format!(
        "building instance: dataset={} scale={} samples={} shards={}",
        topo.dataset, topo.scale, topo.samples, topo.shards
    ));
    let instance = Arc::new(build_instance(topo, &options.data_dir)?);

    log("spawning shard daemons + coordinator");
    let snapshot_dir = (!topo.snapshot_dir.is_empty()).then(|| PathBuf::from(&topo.snapshot_dir));
    let cluster = Cluster::spawn(
        &instance,
        topo,
        snapshot_dir.as_deref(),
        options.chaos.as_ref(),
        &log,
    )?;
    if options.trace.is_some() {
        // Per-shard clock offsets, emitted as `clock_offset` trace
        // events so the stitcher can translate shard timestamps onto
        // this process's clock. Probes go to the daemons directly
        // (never through a chaos proxy, whose trigger they would
        // consume).
        for est in crate::clock::align(&cluster.daemon_addrs, 4, Duration::from_secs(2)) {
            log(&format!(
                "clock: shard {} offset {}us (min rtt {}us over {} probes)",
                est.addr, est.offset_us, est.rtt_us, est.probes
            ));
        }
    }
    let result = match &options.chaos {
        Some(spec) => run_chaos(&cluster, &instance, topo, spec, &log),
        None => run_against(&cluster, &instance, topo, &log),
    };
    cluster.stop();
    let (mut report, cluster_seeds) = result?;

    // For a permanent fault the answer is *supposed* to differ from the
    // full-R single-node solve (its R shrank); identity was already
    // checked against a fresh solve over the surviving shard set inside
    // `run_chaos`. Every other run compares against single-node.
    let expects_full_r = !matches!(
        options.chaos,
        Some(ChaosSpec {
            fault: ChaosFault::Kill,
            ..
        })
    );
    if expects_full_r {
        // The single-node reference solve — same sampling plan, one store.
        log("running single-node reference solve");
        let sampler = instance.sampler();
        let mut full = RicStore::for_sampler(&sampler);
        full.extend_parallel_with_workers(&sampler, topo.samples, topo.base_seed, topo.workers);
        let reference = MaxrAlgorithm::Greedy
            .solve(
                &instance,
                &full,
                &SolveRequest::new(topo.k as usize).with_seed(topo.base_seed),
            )
            .map_err(|e| RunnerError::new(format!("reference solve failed: {e}")))?;
        let reference_seeds: Vec<u64> =
            reference.seeds.iter().map(|v| u64::from(v.raw())).collect();
        report.seeds_identical = cluster_seeds == reference_seeds;
        report.evaluations_identical = report.solve_evaluations == reference.evaluations;
        if let Some(chaos) = &mut report.chaos {
            chaos.degraded_match = report.seeds_identical;
        }
        log(&format!(
            "seeds_identical={} evaluations_identical={} ({} vs {} evaluations)",
            report.seeds_identical,
            report.evaluations_identical,
            report.solve_evaluations,
            reference.evaluations
        ));
    }

    if let Some(out) = &options.out {
        fs::write(out, report.to_json() + "\n")?;
        log(&format!("wrote {}", out.display()));
    }
    if options.trace.is_some() {
        imc_obs::trace::clear_sink();
    }
    Ok(report)
}

/// The chaos-mode phases: solve through the fault, assert the recovery
/// contract, and (for a permanent fault) prove the degraded answer
/// equals a fresh solve over the surviving shard set. Skips the load
/// phase — the artifact's `load` block is zeroed.
fn run_chaos(
    cluster: &Cluster,
    instance: &Arc<ImcInstance>,
    topo: &Topology,
    spec: &ChaosSpec,
    log: &dyn Fn(&str),
) -> Result<(RunnerReport, Vec<u64>), RunnerError> {
    let node_count = instance.node_count();

    // Direct daemon check, bypassing the proxy so the trigger count is
    // untouched.
    log("checking shard eval round-trip (direct)");
    check_eval_roundtrip(cluster.daemon_addrs[0], node_count)?;

    log(&format!(
        "distributed GREEDY solve at k={} with {spec} armed",
        topo.k
    ));
    let mut client = Client::connect(cluster.coordinator.addr(), Duration::from_secs(600))
        .map_err(|e| RunnerError::new(format!("coordinator connect: {e}")))?;
    let solve_line = json::to_string(
        &ObjectBuilder::new()
            .field("op", "solve")
            .field("algo", "greedy")
            .field("k", u64::from(topo.k))
            .field("seed", topo.base_seed)
            .field("mode", "lazy")
            .build(),
    );
    let solve_start = Instant::now();
    let solve = roundtrip(&mut client, &solve_line, "chaos solve")?;
    let solve_seconds = solve_start.elapsed().as_secs_f64();
    drop(client);
    let seeds = seeds_field(&solve, "chaos solve")?;
    let solve_evaluations = solve
        .get("evaluations")
        .and_then(Value::as_u64)
        .ok_or_else(|| RunnerError::new("chaos solve returned no evaluation count"))?;
    let approximate = solve
        .get("approximate")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let lost_shards: Vec<String> = solve
        .get("lost_shards")
        .and_then(Value::as_array)
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    let effective_samples = solve
        .get("effective_samples")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    log(&format!(
        "chaos solve completed: approximate={approximate} lost_shards={lost_shards:?} \
         effective_samples={effective_samples} (proxy tripped={})",
        cluster.proxy.as_ref().is_some_and(ChaosProxy::tripped)
    ));

    let mut degraded_match = false;
    match spec.fault {
        ChaosFault::Kill => {
            if !approximate {
                return Err(RunnerError::new(
                    "kill fault: solve was not flagged approximate",
                ));
            }
            let proxy_addr = cluster.front_addrs[spec.shard].to_string();
            if lost_shards != vec![proxy_addr.clone()] {
                return Err(RunnerError::new(format!(
                    "kill fault: lost_shards {lost_shards:?} should name exactly the \
                     killed shard {proxy_addr}"
                )));
            }
            // The acceptance identity: a fresh coordinator configured
            // with only the surviving daemons must reproduce the
            // degraded seeds bitwise.
            log("verifying degraded seeds against a fresh solve over the survivors");
            let survivors: Vec<SocketAddr> = cluster
                .daemon_addrs
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != spec.shard)
                .map(|(_, &addr)| addr)
                .collect();
            let fresh =
                Coordinator::start(Arc::clone(instance), coordinator_config(topo, survivors))?;
            let mut client = Client::connect(fresh.addr(), Duration::from_secs(600))
                .map_err(|e| RunnerError::new(format!("fresh coordinator connect: {e}")))?;
            let verify = roundtrip(&mut client, &solve_line, "fresh survivor solve");
            drop(client);
            fresh.stop_and_join();
            let verify = verify?;
            let fresh_seeds = seeds_field(&verify, "fresh survivor solve")?;
            degraded_match = seeds == fresh_seeds;
            if !degraded_match {
                return Err(RunnerError::new(format!(
                    "degraded seeds {seeds:?} differ from the fresh survivor solve's \
                     {fresh_seeds:?}"
                )));
            }
            log("degraded seeds match the fresh survivor solve bitwise");
        }
        ChaosFault::DropOnce | ChaosFault::Hang(_) | ChaosFault::Slow(_) => {
            if approximate || !lost_shards.is_empty() {
                return Err(RunnerError::new(format!(
                    "transient fault: solve degraded unexpectedly \
                     (approximate={approximate}, lost_shards={lost_shards:?})"
                )));
            }
            // `run` fills seeds_identical (and mirrors it into
            // chaos.degraded_match) from the single-node reference.
        }
    }

    let report = RunnerReport {
        dataset: topo.dataset.clone(),
        samples: topo.samples,
        k: topo.k,
        shards: topo.shards,
        // Kill faults settle identity here; transient faults leave it
        // to `run`'s single-node comparison.
        seeds_identical: degraded_match,
        evaluations_identical: degraded_match,
        eval_roundtrip: true,
        solve_seconds,
        solve_evaluations,
        load_requests: 0,
        load_connections: 0,
        throughput_rps: 0.0,
        p50_us: 0,
        p99_us: 0,
        chaos: Some(ChaosReport {
            spec: spec.to_string(),
            approximate,
            lost_shards,
            effective_samples,
            degraded_match,
        }),
    };
    Ok((report, seeds))
}

/// Extracts the `seeds` array from a solve response.
fn seeds_field(solve: &Value, what: &str) -> Result<Vec<u64>, RunnerError> {
    solve
        .get("seeds")
        .and_then(Value::as_array)
        .ok_or_else(|| RunnerError::new(format!("{what} returned no seeds")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| RunnerError::new(format!("{what}: non-integer seed")))
        })
        .collect()
}

/// The cluster-side phases (everything that needs live daemons).
/// Returns the report (identity flags unfilled) plus the cluster's
/// seed set for the caller's single-node comparison.
fn run_against(
    cluster: &Cluster,
    instance: &Arc<ImcInstance>,
    topo: &Topology,
    log: &dyn Fn(&str),
) -> Result<(RunnerReport, Vec<u64>), RunnerError> {
    let node_count = instance.node_count();

    log("checking shard eval round-trip");
    check_eval_roundtrip(cluster.daemon_addrs[0], node_count)?;

    log(&format!("distributed GREEDY solve at k={}", topo.k));
    let mut client = Client::connect(cluster.coordinator.addr(), Duration::from_secs(600))
        .map_err(|e| RunnerError::new(format!("coordinator connect: {e}")))?;
    let solve_line = json::to_string(
        &ObjectBuilder::new()
            .field("op", "solve")
            .field("algo", "greedy")
            .field("k", u64::from(topo.k))
            .field("seed", topo.base_seed)
            .field("mode", "lazy")
            .build(),
    );
    let solve_start = Instant::now();
    let solve = roundtrip(&mut client, &solve_line, "cluster solve")?;
    let solve_seconds = solve_start.elapsed().as_secs_f64();
    let seeds: Vec<u64> = solve
        .get("seeds")
        .and_then(Value::as_array)
        .ok_or_else(|| RunnerError::new("solve returned no seeds"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| RunnerError::new("non-integer seed"))
        })
        .collect::<Result<_, _>>()?;
    let solve_evaluations = solve
        .get("evaluations")
        .and_then(Value::as_u64)
        .ok_or_else(|| RunnerError::new("solve returned no evaluation count"))?;
    drop(client);

    log(&format!(
        "driving load: {} requests over {} connections",
        topo.load_requests, topo.load_connections
    ));
    let (load_requests, load_seconds) = drive_load(cluster.coordinator.addr(), topo, node_count)?;
    let histogram = obs::request_duration_seconds();
    let p50_us = (histogram.quantile(0.5) * 1e6).round() as u64;
    let p99_us = (histogram.quantile(0.99) * 1e6).round() as u64;
    let throughput_rps = if load_seconds > 0.0 {
        load_requests as f64 / load_seconds
    } else {
        0.0
    };

    let report = RunnerReport {
        dataset: topo.dataset.clone(),
        samples: topo.samples,
        k: topo.k,
        shards: topo.shards,
        // Filled in by `run` once the single-node reference finishes.
        seeds_identical: false,
        evaluations_identical: false,
        eval_roundtrip: true,
        solve_seconds,
        solve_evaluations,
        load_requests,
        load_connections: topo.load_connections,
        throughput_rps,
        p50_us,
        p99_us,
        chaos: None,
    };
    Ok((report, seeds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_graph::{generators::erdos_renyi, NodeId, WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_instance() -> ImcInstance {
        let mut rng = StdRng::seed_from_u64(7);
        let graph = erdos_renyi(24, 0.15, &mut rng).reweighted(WeightModel::Uniform(0.3));
        let parts = (0..4)
            .map(|c| {
                let members: Vec<NodeId> = (c * 6..c * 6 + 6).map(NodeId::new).collect();
                (members, 2, 1.0)
            })
            .collect();
        let communities = imc_community::CommunitySet::from_parts(24, parts).unwrap();
        ImcInstance::new(graph, communities).unwrap()
    }

    #[test]
    fn shard_snapshot_cache_round_trips_bitwise() {
        let instance = tiny_instance();
        let sampler = instance.sampler();
        let fingerprint = snapshot::instance_fingerprint(instance.graph(), instance.communities());
        let topo = Topology::parse("[cluster]\nshards = 2\nworkers = 1\nsamples = 512\n").unwrap();
        let dir = std::env::temp_dir().join(format!("imc-shard-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let log = |_: &str| {};
        for partition in 0..topo.shards {
            let fresh = load_or_build_shard_store(
                &sampler,
                fingerprint,
                &topo,
                partition,
                Some(&dir),
                &log,
            );
            let path = shard_snapshot_path(&dir, fingerprint, &topo, partition);
            assert!(path.is_file(), "cache file missing after fresh draw");
            let cached = load_or_build_shard_store(
                &sampler,
                fingerprint,
                &topo,
                partition,
                Some(&dir),
                &log,
            );
            assert_eq!(fresh, cached, "cached shard store differs from fresh draw");
        }

        // A fingerprint mismatch must re-draw (same deterministic plan,
        // so same contents) and overwrite the cache under the new name.
        let other =
            load_or_build_shard_store(&sampler, fingerprint ^ 1, &topo, 0, Some(&dir), &log);
        let fresh = load_or_build_shard_store(&sampler, fingerprint, &topo, 0, Some(&dir), &log);
        assert_eq!(other, fresh);
        let renamed = shard_snapshot_path(&dir, fingerprint ^ 1, &topo, 0);
        let data = snapshot::decode(&fs::read(renamed).unwrap()).unwrap();
        assert_eq!(data.fingerprint, fingerprint ^ 1);

        // No directory: plain fresh draw, nothing written anywhere.
        let uncached = load_or_build_shard_store(&sampler, fingerprint, &topo, 0, None, &log);
        assert_eq!(uncached, fresh);

        let _ = fs::remove_dir_all(&dir);
    }
}
