//! Fault injection for cluster tests and the `--chaos` runner mode.
//!
//! Faults are injected from *outside* the daemon: a [`ChaosProxy`] sits
//! between the coordinator and one shard, forwarding newline-delimited
//! requests and responses until a trigger fires. Triggers are
//! count-based — "the Nth request through this proxy" — so a chaos run
//! is fully deterministic: the same topology, seed and spec always
//! fault at the same point in the solve, with no clocks or randomness
//! involved.
//!
//! Fault menu ([`ChaosFault`]):
//!
//! * `kill` — from the trigger on, every connection is accepted and
//!   immediately dropped, and in-flight connections die. The shard
//!   *process* stays up, but through the proxy it is permanently dark:
//!   probes connect (TCP accept) yet the `ping` round-trip fails, which
//!   exercises the coordinator's full declare-dead path.
//! * `drop` — the triggering connection is severed once; later
//!   connections pass through. A reconnect-and-retry (or a session
//!   restart) succeeds, modelling a transient stall.
//! * `hang` — the triggering request is held for a fixed duration
//!   before forwarding, modelling a slow network or a GC-style pause.
//!   Whether this is "transient" or "fatal" depends on the client's
//!   read timeout relative to the hang.
//! * `slow` — every request after the trigger is delayed by a fixed
//!   duration; the cluster limps but answers.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What happens when the trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Permanently blackhole the shard: accept then drop every
    /// connection from the trigger on.
    Kill,
    /// Sever the triggering connection once, then behave normally.
    DropOnce,
    /// Hold the triggering request for this long before forwarding.
    Hang(Duration),
    /// Delay every request after the trigger by this long.
    Slow(Duration),
}

/// A parsed `--chaos` spec: which shard faults, how, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Index of the shard (in topology order) to put behind the proxy.
    pub shard: usize,
    /// The fault to inject.
    pub fault: ChaosFault,
    /// Fire when this many requests have already passed through — the
    /// trigger hits request number `after + 1`. `0` faults the very
    /// first request.
    pub after: u64,
}

impl ChaosSpec {
    /// Parses `kind:shard@after[:millis]`, e.g. `kill:1@3`,
    /// `drop:0@2`, `hang:1@3:500`, `slow:1@0:20`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed piece.
    pub fn parse(spec: &str) -> Result<ChaosSpec, String> {
        let (kind, rest) = spec
            .split_once(':')
            .ok_or_else(|| format!("chaos spec `{spec}`: expected kind:shard@after[:millis]"))?;
        let (shard_part, rest) = rest
            .split_once('@')
            .ok_or_else(|| format!("chaos spec `{spec}`: missing `@after`"))?;
        let shard: usize = shard_part
            .parse()
            .map_err(|_| format!("chaos spec `{spec}`: bad shard index `{shard_part}`"))?;
        let (after_part, millis_part) = match rest.split_once(':') {
            Some((a, m)) => (a, Some(m)),
            None => (rest, None),
        };
        let after: u64 = after_part
            .parse()
            .map_err(|_| format!("chaos spec `{spec}`: bad trigger count `{after_part}`"))?;
        let millis = match millis_part {
            Some(m) => {
                Some(Duration::from_millis(m.parse().map_err(|_| {
                    format!("chaos spec `{spec}`: bad duration `{m}`")
                })?))
            }
            None => None,
        };
        let fault = match (kind, millis) {
            ("kill", None) => ChaosFault::Kill,
            ("drop", None) => ChaosFault::DropOnce,
            ("hang", Some(d)) => ChaosFault::Hang(d),
            ("slow", Some(d)) => ChaosFault::Slow(d),
            ("hang" | "slow", None) => {
                return Err(format!("chaos spec `{spec}`: `{kind}` needs `:millis`"))
            }
            ("kill" | "drop", Some(_)) => {
                return Err(format!("chaos spec `{spec}`: `{kind}` takes no duration"))
            }
            _ => {
                return Err(format!(
                    "chaos spec `{spec}`: unknown fault `{kind}` (kill | drop | hang | slow)"
                ))
            }
        };
        Ok(ChaosSpec {
            shard,
            fault,
            after,
        })
    }
}

impl std::fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.fault {
            ChaosFault::Kill => write!(f, "kill:{}@{}", self.shard, self.after),
            ChaosFault::DropOnce => write!(f, "drop:{}@{}", self.shard, self.after),
            ChaosFault::Hang(d) => {
                write!(f, "hang:{}@{}:{}", self.shard, self.after, d.as_millis())
            }
            ChaosFault::Slow(d) => {
                write!(f, "slow:{}@{}:{}", self.shard, self.after, d.as_millis())
            }
        }
    }
}

/// A line-oriented TCP proxy injecting one [`ChaosFault`] in front of a
/// shard daemon. The coordinator connects to [`ChaosProxy::addr`]
/// instead of the daemon; requests are counted across all connections
/// with a shared atomic, so the trigger is global, not per-connection.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    requests: Arc<AtomicU64>,
    tripped: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port forwarding to
    /// `target`, arming `fault` to fire after `after` requests have
    /// passed.
    ///
    /// # Errors
    ///
    /// The listener bind failure.
    pub fn start(target: SocketAddr, fault: ChaosFault, after: u64) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let requests = Arc::new(AtomicU64::new(0));
        let tripped = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let requests = Arc::clone(&requests);
            let tripped = Arc::clone(&tripped);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("imc-chaos-proxy".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(client) = stream else { continue };
                        // A killed shard accepts and immediately drops:
                        // the TCP handshake succeeds but no request ever
                        // gets an answer, so probes fail on the ping
                        // round-trip rather than on connect.
                        if fault == ChaosFault::Kill && tripped.load(Ordering::SeqCst) {
                            drop(client);
                            continue;
                        }
                        let requests = Arc::clone(&requests);
                        let tripped = Arc::clone(&tripped);
                        let stop = Arc::clone(&stop);
                        std::thread::spawn(move || {
                            let _ =
                                forward(client, target, fault, after, &requests, &tripped, &stop);
                        });
                    }
                })
                .expect("spawn chaos proxy")
        };
        Ok(ChaosProxy {
            addr,
            requests,
            tripped,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The address the coordinator should dial instead of the shard.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests proxied so far (across all connections).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::SeqCst)
    }

    /// Whether the fault has fired.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }

    /// Stops accepting new connections and joins the acceptor. Existing
    /// forwarding threads die when their sockets do.
    pub fn stop_and_join(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

/// Forwards one client connection line-by-line to a fresh upstream
/// connection, applying the fault at the trigger point.
fn forward(
    client: TcpStream,
    target: SocketAddr,
    fault: ChaosFault,
    after: u64,
    requests: &AtomicU64,
    tripped: &AtomicBool,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    client.set_nodelay(true)?;
    let upstream = TcpStream::connect(target)?;
    upstream.set_nodelay(true)?;
    let mut client_writer = client.try_clone()?;
    let mut upstream_writer = upstream.try_clone()?;
    let client_reader = BufReader::new(client);
    let mut upstream_reader = BufReader::new(upstream);
    for line in client_reader.lines() {
        let line = line?;
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let n = requests.fetch_add(1, Ordering::SeqCst);
        let fires_now = n >= after;
        if fires_now {
            let already = tripped.swap(true, Ordering::SeqCst);
            match fault {
                ChaosFault::Kill => {
                    // Sever this connection; the acceptor refuses the rest.
                    return Ok(());
                }
                ChaosFault::DropOnce => {
                    if !already {
                        return Ok(()); // sever exactly once
                    }
                }
                ChaosFault::Hang(d) => {
                    if !already {
                        std::thread::sleep(d);
                    }
                }
                ChaosFault::Slow(d) => std::thread::sleep(d),
            }
        }
        writeln!(upstream_writer, "{line}")?;
        upstream_writer.flush()?;
        let mut response = String::new();
        if upstream_reader.read_line(&mut response)? == 0 {
            break;
        }
        client_writer.write_all(response.as_bytes())?;
        client_writer.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_fault_kind() {
        assert_eq!(
            ChaosSpec::parse("kill:1@3").unwrap(),
            ChaosSpec {
                shard: 1,
                fault: ChaosFault::Kill,
                after: 3
            }
        );
        assert_eq!(
            ChaosSpec::parse("drop:0@2").unwrap(),
            ChaosSpec {
                shard: 0,
                fault: ChaosFault::DropOnce,
                after: 2
            }
        );
        assert_eq!(
            ChaosSpec::parse("hang:1@3:500").unwrap(),
            ChaosSpec {
                shard: 1,
                fault: ChaosFault::Hang(Duration::from_millis(500)),
                after: 3
            }
        );
        assert_eq!(
            ChaosSpec::parse("slow:2@0:20").unwrap(),
            ChaosSpec {
                shard: 2,
                fault: ChaosFault::Slow(Duration::from_millis(20)),
                after: 0
            }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "kill",
            "kill:x@3",
            "kill:1",
            "kill:1@x",
            "hang:1@3",
            "kill:1@3:100",
            "explode:1@3",
        ] {
            assert!(ChaosSpec::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn spec_round_trips_through_display() {
        for text in ["kill:1@3", "drop:0@2", "hang:1@3:500", "slow:2@0:20"] {
            let spec = ChaosSpec::parse(text).unwrap();
            assert_eq!(spec.to_string(), text);
            assert_eq!(ChaosSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }

    /// A trivial line server answering `{"ok":true}` to every request.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming().take(8) {
                let Ok(stream) = stream else { break };
                std::thread::spawn(move || {
                    let mut writer = stream.try_clone().unwrap();
                    let reader = BufReader::new(stream);
                    for line in reader.lines() {
                        if line.is_err() {
                            break;
                        }
                        if writeln!(writer, "{{\"ok\":true}}").is_err() {
                            break;
                        }
                        let _ = writer.flush();
                    }
                });
            }
        });
        (addr, handle)
    }

    fn roundtrip(addr: SocketAddr) -> std::io::Result<String> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        writeln!(writer, "{{\"op\":\"ping\"}}")?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "severed",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    #[test]
    fn kill_proxy_goes_dark_at_the_trigger_and_stays_dark() {
        let (target, _server) = echo_server();
        let proxy = ChaosProxy::start(target, ChaosFault::Kill, 2).unwrap();
        assert_eq!(roundtrip(proxy.addr()).unwrap(), r#"{"ok":true}"#);
        assert_eq!(roundtrip(proxy.addr()).unwrap(), r#"{"ok":true}"#);
        // Request 3 trips the kill; it and everything after it fail.
        assert!(roundtrip(proxy.addr()).is_err());
        assert!(proxy.tripped());
        assert!(roundtrip(proxy.addr()).is_err());
        proxy.stop_and_join();
    }

    #[test]
    fn drop_once_proxy_recovers_after_one_severed_connection() {
        let (target, _server) = echo_server();
        let proxy = ChaosProxy::start(target, ChaosFault::DropOnce, 1).unwrap();
        assert_eq!(roundtrip(proxy.addr()).unwrap(), r#"{"ok":true}"#);
        assert!(roundtrip(proxy.addr()).is_err(), "trigger severs once");
        assert_eq!(
            roundtrip(proxy.addr()).unwrap(),
            r#"{"ok":true}"#,
            "post-trigger connections pass through"
        );
        proxy.stop_and_join();
    }
}
