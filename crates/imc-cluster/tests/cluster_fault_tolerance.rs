//! Fault-tolerance contract of the cluster coordinator, driven by the
//! [`imc_cluster::chaos`] proxy:
//!
//! * a **transient** fault (one severed connection, recovered within
//!   the retry budget) must leave the answer bitwise identical to the
//!   single-node solve over the full sampling plan — the retry layer
//!   reruns from scratch, so nothing about the fault leaks into the
//!   result;
//! * a **permanent** fault (shard dark from some request on) must
//!   complete degraded: `approximate: true`, the lost shard named, and
//!   seeds bitwise identical to a fresh solve over the surviving shard
//!   set — because the degraded rerun is a pure function of the
//!   ordered survivor list;
//! * the same identity holds for **any** survivor subset of a 4-shard
//!   topology (proptest over {1,2,3} lost shards).

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

use imc_cluster::{ChaosFault, ChaosProxy, Coordinator, CoordinatorConfig, CoordinatorHandle};
use imc_community::CommunitySet;
use imc_core::{ImcInstance, MaxrAlgorithm, RicStore, SolveRequest};
use imc_graph::{generators::erdos_renyi, NodeId, WeightModel};
use imc_service::client::Client;
use imc_service::client::{ClientConfig, RetryPolicy};
use imc_service::json::Value;
use imc_service::{ServeConfig, Server, ServerHandle, ServiceState};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random small instance with thresholds ≤ 2 (all solvers admissible).
fn small_instance(seed: u64) -> ImcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = erdos_renyi(30, 0.1, &mut rng).reweighted(WeightModel::Uniform(0.3));
    let parts = (0..6)
        .map(|c| {
            let members: Vec<NodeId> = (c * 5..c * 5 + 5).map(NodeId::new).collect();
            (members, 1 + (c % 2), 1.0 + f64::from(c))
        })
        .collect();
    let communities = CommunitySet::from_parts(30, parts).unwrap();
    ImcInstance::new(graph, communities).unwrap()
}

/// Shard daemons over the partitions of one sampling plan. Returns the
/// handles and their addresses (partition order).
fn spawn_shards(
    instance: &ImcInstance,
    shards: usize,
    samples: usize,
    base_seed: u64,
) -> (Vec<ServerHandle>, Vec<SocketAddr>) {
    let sampler = instance.sampler();
    let mut handles = Vec::with_capacity(shards);
    let mut addrs = Vec::with_capacity(shards);
    for partition in 0..shards {
        let mut store = RicStore::for_sampler(&sampler);
        store.extend_partition(&sampler, samples, base_seed, partition, shards, 2);
        let state = Arc::new(ServiceState::new(instance.clone(), store, 0));
        let config = ServeConfig {
            workers: 2,
            refresh: None,
            ..ServeConfig::default()
        };
        let handle = Server::start(state, config).unwrap();
        addrs.push(handle.addr());
        handles.push(handle);
    }
    (handles, addrs)
}

/// A coordinator with a fast-failing retry policy (tests should not sit
/// in production-scale backoff sleeps).
fn start_coordinator(instance: &ImcInstance, shards: Vec<SocketAddr>) -> CoordinatorHandle {
    Coordinator::start(
        Arc::new(instance.clone()),
        CoordinatorConfig {
            shards,
            client: ClientConfig::uniform(Duration::from_secs(5)),
            retry: RetryPolicy {
                attempts: 3,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(20),
                jitter: 0.0,
            },
            probe_timeout: Duration::from_millis(200),
            ..CoordinatorConfig::default()
        },
    )
    .unwrap()
}

/// One solve against `addr`; returns the whole response object.
fn solve(addr: SocketAddr, k: usize, seed: u64) -> Value {
    let mut client = Client::connect(addr, Duration::from_secs(120)).unwrap();
    let line = format!(r#"{{"op":"solve","k":{k},"algo":"greedy","seed":{seed},"mode":"lazy"}}"#);
    client.request(&line).unwrap()
}

fn seeds_of(resp: &Value) -> Vec<u64> {
    resp.get("seeds")
        .and_then(Value::as_array)
        .expect("seeds array")
        .iter()
        .filter_map(Value::as_u64)
        .collect()
}

#[test]
fn transient_fault_is_bitwise_identical_to_single_node() {
    let instance = small_instance(21);
    let (samples, base_seed, k) = (192usize, 5u64, 4usize);

    // Single-node reference over the full plan.
    let sampler = instance.sampler();
    let mut full = RicStore::for_sampler(&sampler);
    full.extend_parallel_with_workers(&sampler, samples, base_seed, 2);
    let reference = MaxrAlgorithm::Greedy
        .solve(&instance, &full, &SolveRequest::new(k).with_seed(base_seed))
        .unwrap();
    let reference_seeds: Vec<u64> = reference.seeds.iter().map(|v| u64::from(v.raw())).collect();

    // Two shards; shard 1 drops one connection mid-solve.
    let (handles, addrs) = spawn_shards(&instance, 2, samples, base_seed);
    let proxy = ChaosProxy::start(addrs[1], ChaosFault::DropOnce, 3).unwrap();
    let fronts = vec![addrs[0], proxy.addr()];
    let coordinator = start_coordinator(&instance, fronts);

    let resp = solve(coordinator.addr(), k, base_seed);
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "solve failed: {resp:?}"
    );
    assert!(proxy.tripped(), "the fault never fired");
    assert_eq!(
        resp.get("approximate").and_then(Value::as_bool),
        Some(false),
        "a recovered transient fault must not degrade the answer"
    );
    assert_eq!(resp.get("shards").and_then(Value::as_u64), Some(2));
    assert_eq!(
        seeds_of(&resp),
        reference_seeds,
        "transient-fault seeds must be bitwise identical to single-node"
    );
    assert_eq!(
        resp.get("evaluations").and_then(Value::as_u64),
        Some(reference.evaluations)
    );

    coordinator.stop_and_join();
    proxy.stop_and_join();
    for h in handles {
        h.stop_and_join();
    }
}

#[test]
fn killed_shard_degrades_and_matches_fresh_survivor_solve() {
    let instance = small_instance(22);
    let (samples, base_seed, k) = (192usize, 6u64, 4usize);

    let (handles, addrs) = spawn_shards(&instance, 2, samples, base_seed);
    let proxy = ChaosProxy::start(addrs[1], ChaosFault::Kill, 5).unwrap();
    let proxy_addr = proxy.addr();
    let fronts = vec![addrs[0], proxy_addr];
    let coordinator = start_coordinator(&instance, fronts);

    let resp = solve(coordinator.addr(), k, base_seed);
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "degraded solve failed: {resp:?}"
    );
    assert!(proxy.tripped(), "the kill never fired");
    assert_eq!(resp.get("approximate").and_then(Value::as_bool), Some(true));
    assert_eq!(resp.get("shards").and_then(Value::as_u64), Some(1));
    let lost: Vec<&str> = resp
        .get("lost_shards")
        .and_then(Value::as_array)
        .expect("lost_shards")
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert_eq!(lost, vec![proxy_addr.to_string().as_str()]);

    // Fresh coordinator over the surviving daemon: bitwise identity.
    let fresh = start_coordinator(&instance, vec![addrs[0]]);
    let fresh_resp = solve(fresh.addr(), k, base_seed);
    assert_eq!(fresh_resp.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        fresh_resp.get("approximate").and_then(Value::as_bool),
        Some(false)
    );
    assert_eq!(
        seeds_of(&resp),
        seeds_of(&fresh_resp),
        "degraded seeds must match the fresh survivor solve bitwise"
    );
    assert_eq!(
        resp.get("effective_samples").and_then(Value::as_u64),
        fresh_resp.get("samples").and_then(Value::as_u64),
        "effective_samples must equal the survivors' sample total"
    );
    fresh.stop_and_join();

    coordinator.stop_and_join();
    proxy.stop_and_join();
    for h in handles {
        h.stop_and_join();
    }
}

#[test]
fn coordinator_health_reports_per_shard_states() {
    let instance = small_instance(23);
    let (mut handles, addrs) = spawn_shards(&instance, 2, 128, 7);
    let coordinator = start_coordinator(&instance, addrs.clone());
    let dead = handles.pop().unwrap();
    let dead_addr = dead.addr();
    dead.stop_and_join();

    let mut client = Client::connect(coordinator.addr(), Duration::from_secs(30)).unwrap();
    let resp = client.request(r#"{"op":"health"}"#).unwrap();
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(resp.get("status").and_then(Value::as_str), Some("degraded"));
    assert_eq!(resp.get("shards").and_then(Value::as_u64), Some(1));
    let states = resp
        .get("shard_states")
        .and_then(Value::as_array)
        .expect("shard_states array");
    assert_eq!(states.len(), 2);
    let dead_entry = states
        .iter()
        .find(|s| s.get("addr").and_then(Value::as_str) == Some(&dead_addr.to_string()))
        .expect("dead shard entry");
    assert_ne!(
        dead_entry.get("state").and_then(Value::as_str),
        Some("healthy"),
        "a non-answering shard must not report healthy"
    );

    // The coordinator's own ping fast path answers too.
    let ping = client.request(r#"{"op":"ping"}"#).unwrap();
    assert_eq!(ping.get("ok").and_then(Value::as_bool), Some(true));
    drop(client);
    coordinator.stop_and_join();
    for h in handles {
        h.stop_and_join();
    }
}

/// A loopback address that refuses connections: bind an ephemeral port,
/// then drop the listener.
fn refused_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener);
    addr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any survivor subset of a 4-shard topology: the degraded solve
    /// over the survivors is bitwise identical to a fresh solve
    /// configured with exactly those shards (1, 2 or 3 survivors).
    #[test]
    fn degraded_solve_matches_fresh_solve_over_any_survivor_subset(
        instance_seed in 0u64..50,
        base_seed in 0u64..500,
        k in 1usize..6,
        dead_mask in 1u8..15, // at least one dead, at least one alive
    ) {
        let instance = small_instance(instance_seed);
        let (handles, addrs) = spawn_shards(&instance, 4, 160, base_seed);
        let fronts: Vec<SocketAddr> = addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| if dead_mask & (1 << i) != 0 { refused_addr() } else { addr })
            .collect();
        let survivors: Vec<SocketAddr> = addrs
            .iter()
            .enumerate()
            .filter(|&(i, _)| dead_mask & (1 << i) == 0)
            .map(|(_, &addr)| addr)
            .collect();
        prop_assert!(!survivors.is_empty() && survivors.len() < 4);

        let coordinator = start_coordinator(&instance, fronts);
        let degraded = solve(coordinator.addr(), k, base_seed);
        prop_assert_eq!(degraded.get("ok").and_then(Value::as_bool), Some(true));
        prop_assert_eq!(degraded.get("approximate").and_then(Value::as_bool), Some(true));
        prop_assert_eq!(
            degraded.get("shards").and_then(Value::as_u64),
            Some(survivors.len() as u64)
        );
        coordinator.stop_and_join();

        let fresh = start_coordinator(&instance, survivors);
        let reference = solve(fresh.addr(), k, base_seed);
        prop_assert_eq!(reference.get("ok").and_then(Value::as_bool), Some(true));
        fresh.stop_and_join();

        prop_assert_eq!(seeds_of(&degraded), seeds_of(&reference));
        prop_assert_eq!(
            degraded.get("evaluations").and_then(Value::as_u64),
            reference.get("evaluations").and_then(Value::as_u64)
        );
        for h in handles {
            h.stop_and_join();
        }
    }
}
