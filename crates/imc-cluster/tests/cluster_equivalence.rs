//! Distributed-vs-single-node equivalence: a coordinator fronting 1, 2
//! or 4 shard daemons must produce **bitwise identical** seed sets and
//! evaluation counts to the single-node solver for every MAXR
//! algorithm, because the shards jointly hold exactly the collection a
//! single node would sample (`extend_partition` of the one shared
//! sampling plan) and the scatter-gather reduction reproduces the
//! estimator arithmetic exactly (integer sums for ĉ, the carry-chained
//! fold for ν).

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use imc_cluster::{Coordinator, CoordinatorConfig, CoordinatorHandle};
use imc_community::{BenefitPolicy, CommunitySet, ThresholdPolicy};
use imc_core::{ImcInstance, MaxrAlgorithm, RicStore, SolveRequest};
use imc_datasets::DatasetId;
use imc_graph::{generators::erdos_renyi, NodeId, WeightModel};
use imc_service::client::Client;
use imc_service::client::RetryPolicy;
use imc_service::json::Value;
use imc_service::{ServeConfig, Server, ServerHandle, ServiceState};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALGOS: [(&str, MaxrAlgorithm); 5] = [
    ("greedy", MaxrAlgorithm::Greedy),
    ("ubg", MaxrAlgorithm::Ubg),
    ("maf", MaxrAlgorithm::Maf),
    ("bt", MaxrAlgorithm::Bt),
    ("mb", MaxrAlgorithm::Mb),
];

/// A random small instance whose thresholds stay ≤ 2, so BT and MB are
/// admissible alongside GREEDY/UBG/MAF.
fn small_instance(seed: u64) -> ImcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = erdos_renyi(30, 0.1, &mut rng).reweighted(WeightModel::Uniform(0.3));
    let parts = (0..6)
        .map(|c| {
            let members: Vec<NodeId> = (c * 5..c * 5 + 5).map(NodeId::new).collect();
            (members, 1 + (c % 2), 1.0 + f64::from(c))
        })
        .collect();
    let communities = CommunitySet::from_parts(30, parts).unwrap();
    ImcInstance::new(graph, communities).unwrap()
}

/// Shard daemons over the partitions of one sampling plan, plus a
/// coordinator fronting them.
fn spawn_cluster(
    instance: &ImcInstance,
    shards: usize,
    samples: usize,
    base_seed: u64,
) -> (Vec<ServerHandle>, CoordinatorHandle) {
    let sampler = instance.sampler();
    let mut handles = Vec::with_capacity(shards);
    let mut addrs: Vec<SocketAddr> = Vec::with_capacity(shards);
    for partition in 0..shards {
        let mut store = RicStore::for_sampler(&sampler);
        store.extend_partition(&sampler, samples, base_seed, partition, shards, 2);
        let state = Arc::new(ServiceState::new(instance.clone(), store, 0));
        let config = ServeConfig {
            workers: 2,
            refresh: None,
            ..ServeConfig::default()
        };
        let handle = Server::start(state, config).unwrap();
        addrs.push(handle.addr());
        handles.push(handle);
    }
    let coordinator = Coordinator::start(
        Arc::new(instance.clone()),
        CoordinatorConfig {
            shards: addrs,
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    (handles, coordinator)
}

fn stop_cluster(handles: Vec<ServerHandle>, coordinator: CoordinatorHandle) {
    coordinator.stop_and_join();
    for h in handles {
        h.stop_and_join();
    }
}

/// One solve against the coordinator; returns (seeds, evaluations).
fn cluster_solve(addr: SocketAddr, algo: &str, k: usize, seed: u64) -> (Vec<NodeId>, u64) {
    let mut client = Client::connect(addr, Duration::from_secs(120)).unwrap();
    let line = format!(r#"{{"op":"solve","k":{k},"algo":"{algo}","seed":{seed},"mode":"lazy"}}"#);
    let resp = client.request(&line).unwrap();
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "solve failed for {algo}: {resp:?}"
    );
    let seeds = resp
        .get("seeds")
        .and_then(Value::as_array)
        .expect("seeds array")
        .iter()
        .map(|v| NodeId::new(v.as_u64().expect("integer seed") as u32))
        .collect();
    let evaluations = resp
        .get("evaluations")
        .and_then(Value::as_u64)
        .expect("evaluation count");
    (seeds, evaluations)
}

/// The full cross-product check for one instance/sampling configuration.
fn assert_equivalence(
    instance: &ImcInstance,
    shards: usize,
    samples: usize,
    base_seed: u64,
    k: usize,
) {
    let sampler = instance.sampler();
    let mut full = RicStore::for_sampler(&sampler);
    full.extend_parallel_with_workers(&sampler, samples, base_seed, 2);

    let (handles, coordinator) = spawn_cluster(instance, shards, samples, base_seed);
    for (name, algo) in ALGOS {
        let solver_seed = base_seed ^ 0x5EED;
        let reference = algo
            .solve(
                instance,
                &full,
                &SolveRequest::new(k).with_seed(solver_seed),
            )
            .unwrap();
        let (seeds, evaluations) = cluster_solve(coordinator.addr(), name, k, solver_seed);
        assert_eq!(
            seeds, reference.seeds,
            "{name} seeds diverged at shards={shards} samples={samples} k={k}"
        );
        assert_eq!(
            evaluations, reference.evaluations,
            "{name} evaluation counts diverged at shards={shards} samples={samples} k={k}"
        );
    }
    stop_cluster(handles, coordinator);
}

#[test]
fn all_solvers_bitwise_identical_over_shard_counts() {
    let instance = small_instance(42);
    for shards in [1usize, 2, 4] {
        assert_equivalence(&instance, shards, 256, 77, 5);
    }
}

/// A fast-failing retry policy so dead-shard tests don't sit in
/// backoff sleeps.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 2,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(5),
        jitter: 0.0,
    }
}

#[test]
fn dead_shard_degrades_the_solve_and_names_it() {
    let instance = small_instance(7);
    let (mut handles, coordinator) = spawn_cluster(&instance, 2, 128, 9);
    let dead = handles.pop().unwrap();
    let dead_addr = dead.addr();
    dead.stop_and_join();

    // Degrade is the default: the solve completes over the surviving
    // shard, flagged approximate, naming the lost one.
    let mut client = Client::connect(coordinator.addr(), Duration::from_secs(30)).unwrap();
    let resp = client
        .request(r#"{"op":"solve","k":3,"algo":"greedy","seed":1}"#)
        .unwrap();
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "degraded solve should complete: {resp:?}"
    );
    assert_eq!(resp.get("approximate").and_then(Value::as_bool), Some(true));
    assert_eq!(resp.get("shards").and_then(Value::as_u64), Some(1));
    let lost: Vec<&str> = resp
        .get("lost_shards")
        .and_then(Value::as_array)
        .expect("lost_shards array")
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert_eq!(lost, vec![dead_addr.to_string().as_str()]);
    let effective = resp
        .get("effective_samples")
        .and_then(Value::as_u64)
        .expect("effective_samples");
    assert!(
        effective > 0 && effective < 128,
        "effective_samples {effective} should cover only the survivor's partition"
    );
    let degraded_seeds: Vec<u64> = resp
        .get("seeds")
        .and_then(Value::as_array)
        .expect("seeds")
        .iter()
        .filter_map(Value::as_u64)
        .collect();

    // The degraded answer equals a fresh solve over the surviving
    // shard set (same daemon, same partition store).
    let survivor = handles[0].addr();
    let fresh = Coordinator::start(
        Arc::new(instance.clone()),
        CoordinatorConfig {
            shards: vec![survivor],
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let (fresh_seeds, _) = cluster_solve(fresh.addr(), "greedy", 3, 1);
    fresh.stop_and_join();
    let fresh_raw: Vec<u64> = fresh_seeds.iter().map(|v| u64::from(v.raw())).collect();
    assert_eq!(
        degraded_seeds, fresh_raw,
        "degraded seeds must match a fresh solve over the survivors"
    );
    drop(client);
    stop_cluster(handles, coordinator);
}

#[test]
fn degrade_disabled_keeps_the_shard_unavailable_error() {
    let instance = small_instance(7);
    let sampler = instance.sampler();
    let mut handles = Vec::new();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    for partition in 0..2 {
        let mut store = RicStore::for_sampler(&sampler);
        store.extend_partition(&sampler, 128, 9, partition, 2, 2);
        let state = Arc::new(ServiceState::new(instance.clone(), store, 0));
        let handle = Server::start(
            state,
            ServeConfig {
                workers: 2,
                refresh: None,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        addrs.push(handle.addr());
        handles.push(handle);
    }
    let coordinator = Coordinator::start(
        Arc::new(instance.clone()),
        CoordinatorConfig {
            shards: addrs,
            retry: fast_retry(),
            probe_timeout: Duration::from_millis(100),
            degrade: false,
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let dead = handles.pop().unwrap();
    let dead_addr = dead.addr();
    dead.stop_and_join();

    let mut client = Client::connect(coordinator.addr(), Duration::from_secs(30)).unwrap();
    let resp = client
        .request(r#"{"op":"solve","k":3,"algo":"greedy","seed":1}"#)
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    let error = resp.get("error").expect("error object");
    assert_eq!(
        error.get("code").and_then(Value::as_str),
        Some("shard_unavailable")
    );
    let message = error
        .get("message")
        .and_then(Value::as_str)
        .expect("error message");
    assert!(
        message.contains(&dead_addr.to_string()),
        "error message {message:?} does not name the dead shard {dead_addr}"
    );
    drop(client);
    stop_cluster(handles, coordinator);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random small instances, budgets and sampling seeds: the cluster
    /// must stay bitwise-faithful for every solver at 1, 2 and 4 shards.
    #[test]
    fn random_instances_stay_bitwise_identical(
        instance_seed in 0u64..100,
        base_seed in 0u64..1_000,
        k in 1usize..7,
        shard_choice in 0usize..3,
    ) {
        let shards = [1usize, 2, 4][shard_choice];
        let instance = small_instance(instance_seed);
        assert_equivalence(&instance, shards, 192, base_seed, k);
    }
}

/// The ISSUE acceptance bar: a 2-shard cluster over the wiki-vote
/// analog (40k samples) solves GREEDY at k=25 bitwise identically to a
/// single node, lazily evaluated on both sides.
#[test]
fn acceptance_wiki_vote_two_shard_greedy_bitwise() {
    let (graph, _source) =
        imc_datasets::load_or_generate(DatasetId::WikiVote, std::path::Path::new("data"), 0.3, 1)
            .unwrap();
    let graph = graph.reweighted(WeightModel::WeightedCascade);
    let communities = CommunitySet::builder(&graph)
        .louvain(1)
        .split_larger_than(8)
        .threshold(ThresholdPolicy::Constant(2))
        .benefit(BenefitPolicy::Population)
        .build()
        .unwrap();
    let instance = ImcInstance::new(graph, communities).unwrap();

    let samples = 40_000;
    let base_seed = 1234;
    let k = 25;
    let sampler = instance.sampler();
    let mut full = RicStore::for_sampler(&sampler);
    full.extend_parallel_with_workers(&sampler, samples, base_seed, 4);
    let reference = MaxrAlgorithm::Greedy
        .solve(&instance, &full, &SolveRequest::new(k).with_seed(base_seed))
        .unwrap();

    let (handles, coordinator) = spawn_cluster(&instance, 2, samples, base_seed);
    let (seeds, evaluations) = cluster_solve(coordinator.addr(), "greedy", k, base_seed);
    stop_cluster(handles, coordinator);

    assert_eq!(seeds, reference.seeds);
    assert_eq!(evaluations, reference.evaluations);
}
