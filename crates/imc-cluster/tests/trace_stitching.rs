//! End-to-end trace contract of a chaos-kill cluster solve: with a trace
//! sink installed, a solve that loses a shard mid-flight must
//!
//! * leave the **answer bitwise identical** to the same solve untraced
//!   (tracing is pure observation — ISSUE 10 acceptance criterion);
//! * emit a stitchable timeline whose `cluster_solve` span parents the
//!   per-round `scatter_round` and `rpc_client`/`rpc_server` spans;
//! * record the fault story as events: `retry_probe` attempts,
//!   `shard_dead` with the degrade decision, `degraded_rescatter`
//!   naming the lost shard, and per-round `round_attribution` lines
//!   naming each round's straggler.
//!
//! One `#[test]` only: the trace sink is process-global, and this file
//! being its own integration binary keeps other tests out of the file.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use imc_cluster::{ChaosFault, ChaosProxy, Coordinator, CoordinatorConfig, CoordinatorHandle};
use imc_community::CommunitySet;
use imc_core::{ImcInstance, RicStore};
use imc_graph::{generators::erdos_renyi, NodeId, WeightModel};
use imc_obs::timeline::{FlatValue, TraceSet};
use imc_service::client::{Client, ClientConfig, RetryPolicy};
use imc_service::json::Value;
use imc_service::{ServeConfig, Server, ServerHandle, ServiceState};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_instance(seed: u64) -> ImcInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = erdos_renyi(30, 0.1, &mut rng).reweighted(WeightModel::Uniform(0.3));
    let parts = (0..6)
        .map(|c| {
            let members: Vec<NodeId> = (c * 5..c * 5 + 5).map(NodeId::new).collect();
            (members, 1 + (c % 2), 1.0 + f64::from(c))
        })
        .collect();
    let communities = CommunitySet::from_parts(30, parts).unwrap();
    ImcInstance::new(graph, communities).unwrap()
}

fn spawn_shards(
    instance: &ImcInstance,
    shards: usize,
    samples: usize,
    base_seed: u64,
) -> (Vec<ServerHandle>, Vec<SocketAddr>) {
    let sampler = instance.sampler();
    let mut handles = Vec::with_capacity(shards);
    let mut addrs = Vec::with_capacity(shards);
    for partition in 0..shards {
        let mut store = RicStore::for_sampler(&sampler);
        store.extend_partition(&sampler, samples, base_seed, partition, shards, 2);
        let state = Arc::new(ServiceState::new(instance.clone(), store, 0));
        let config = ServeConfig {
            workers: 2,
            refresh: None,
            ..ServeConfig::default()
        };
        let handle = Server::start(state, config).unwrap();
        addrs.push(handle.addr());
        handles.push(handle);
    }
    (handles, addrs)
}

fn start_coordinator(instance: &ImcInstance, shards: Vec<SocketAddr>) -> CoordinatorHandle {
    Coordinator::start(
        Arc::new(instance.clone()),
        CoordinatorConfig {
            shards,
            client: ClientConfig::uniform(Duration::from_secs(5)),
            retry: RetryPolicy {
                attempts: 3,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(20),
                jitter: 0.0,
            },
            probe_timeout: Duration::from_millis(200),
            ..CoordinatorConfig::default()
        },
    )
    .unwrap()
}

/// One chaos-kill solve over a fresh 2-shard topology; returns the seed
/// set. The proxy fronting shard 1 goes dark at its 5th request.
fn chaos_solve(instance: &ImcInstance, samples: usize, base_seed: u64, k: usize) -> Vec<u64> {
    let (handles, addrs) = spawn_shards(instance, 2, samples, base_seed);
    let proxy = ChaosProxy::start(addrs[1], ChaosFault::Kill, 5).unwrap();
    let fronts = vec![addrs[0], proxy.addr()];
    let coordinator = start_coordinator(instance, fronts);

    let mut client = Client::connect(coordinator.addr(), Duration::from_secs(120)).unwrap();
    let line =
        format!(r#"{{"op":"solve","k":{k},"algo":"greedy","seed":{base_seed},"mode":"lazy"}}"#);
    let resp = client.request(&line).unwrap();
    assert_eq!(
        resp.get("ok").and_then(Value::as_bool),
        Some(true),
        "chaos solve failed: {resp:?}"
    );
    assert!(proxy.tripped(), "the kill never fired");
    assert_eq!(resp.get("approximate").and_then(Value::as_bool), Some(true));
    let seeds = resp
        .get("seeds")
        .and_then(Value::as_array)
        .expect("seeds array")
        .iter()
        .filter_map(Value::as_u64)
        .collect();

    drop(client);
    coordinator.stop_and_join();
    proxy.stop_and_join();
    for h in handles {
        h.stop_and_join();
    }
    seeds
}

#[test]
fn chaos_kill_solve_traces_the_full_fault_story() {
    let instance = small_instance(22);
    let (samples, base_seed, k) = (192usize, 6u64, 4usize);

    // Reference run, untraced.
    let untraced_seeds = chaos_solve(&instance, samples, base_seed, k);

    // Identical run with the trace sink on.
    let trace_path =
        std::env::temp_dir().join(format!("imc-trace-stitching-{}.jsonl", std::process::id()));
    imc_obs::trace::set_sink_path(&trace_path).unwrap();
    let traced_seeds = chaos_solve(&instance, samples, base_seed, k);
    imc_obs::trace::clear_sink();

    assert_eq!(
        traced_seeds, untraced_seeds,
        "tracing must not change the answer (bitwise seed identity)"
    );

    let contents = std::fs::read_to_string(&trace_path).unwrap();
    let _ = std::fs::remove_file(&trace_path);
    let set = TraceSet::parse(&[("chaos".to_string(), contents)]);
    let tl = set
        .timeline(
            set.trace_ids()
                .iter()
                .find(|id| {
                    set.timeline(id)
                        .is_some_and(|t| t.spans.iter().any(|s| s.name == "cluster_solve"))
                })
                .expect("a trace holding the cluster_solve span"),
        )
        .unwrap();

    // The solve span parents the scatter rounds, which parent the
    // per-shard RPC client spans; shard daemons (same process, same
    // sink) contribute nested rpc_server spans.
    let solve = tl
        .spans
        .iter()
        .position(|s| s.name == "cluster_solve")
        .expect("cluster_solve span");
    assert_eq!(tl.spans[solve].detail, "GREEDY");
    let mut names = std::collections::HashSet::new();
    let mut stack = vec![solve];
    while let Some(at) = stack.pop() {
        names.insert(tl.spans[at].name.clone());
        stack.extend(tl.spans[at].children.iter().copied());
    }
    for expected in ["scatter_round", "rpc_client", "rpc_server"] {
        assert!(
            names.contains(expected),
            "span {expected} missing under cluster_solve; got {names:?}"
        );
    }

    // Per-round straggler attribution decodes, and every straggler is
    // one of the two shard addresses.
    let rounds = tl.rounds();
    assert!(!rounds.is_empty(), "no round_attribution events");
    for round in &rounds {
        assert!(!round.straggler.is_empty());
        assert!(round.straggler_s >= round.fastest_s);
        assert!(round.shards >= 1);
    }

    // The fault story: probe attempts, the death verdict, the degraded
    // re-scatter naming the lost shard.
    let kinds: Vec<&str> = tl.events.iter().map(|e| e.kind.as_str()).collect();
    for expected in ["retry_probe", "shard_dead", "degraded_rescatter"] {
        assert!(
            kinds.contains(&expected),
            "event {expected} missing; got {kinds:?}"
        );
    }
    let dead = tl.events.iter().find(|e| e.kind == "shard_dead").unwrap();
    let dead_shard = imc_obs::timeline::get(&dead.fields, "shard")
        .and_then(FlatValue::as_str)
        .expect("shard_dead names its shard");
    let rescatter = tl
        .events
        .iter()
        .find(|e| e.kind == "degraded_rescatter")
        .unwrap();
    assert_eq!(
        imc_obs::timeline::get(&rescatter.fields, "lost").and_then(FlatValue::as_str),
        Some(dead_shard),
        "degraded_rescatter must name the dead shard"
    );
    assert_eq!(
        imc_obs::timeline::get(&rescatter.fields, "survivors").and_then(FlatValue::as_i64),
        Some(1),
    );

    // The folded stacks and report render, and the report tells the
    // straggler story in prose.
    assert!(tl.folded_stacks().lines().count() >= tl.spans.len());
    let report = tl.report();
    assert!(report.contains("straggler"), "report: {report}");
    assert!(report.contains("critical path:"), "report: {report}");
}
