use crate::kernels;

/// Compact bitset over the members of one community.
///
/// A RIC sample stores, for every node it contains, *which community
/// members* that node can reach (`R_g(·)` inverted). Community sizes are
/// small after the paper's `s`-cap (default 8), so the common case is a
/// single inline `u64`; larger communities fall back to a boxed limb array.
/// All set operations used on the hot greedy path (union popcounts) are
/// branch-light word ops; multi-limb counting delegates to the chunked
/// popcount kernels in [`crate::kernels`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CoverSet {
    /// Communities with at most 64 members.
    Small(u64),
    /// Arbitrary width; limbs in little-endian bit order.
    Large(Box<[u64]>),
}

impl CoverSet {
    /// An empty set able to hold `width` bits.
    pub fn new(width: usize) -> Self {
        if width <= 64 {
            CoverSet::Small(0)
        } else {
            CoverSet::Large(vec![0u64; width.div_ceil(64)].into_boxed_slice())
        }
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the width the set was created with.
    #[inline]
    pub fn set(&mut self, i: usize) {
        match self {
            CoverSet::Small(w) => {
                assert!(i < 64, "bit {i} out of range for small cover set");
                *w |= 1u64 << i;
            }
            CoverSet::Large(limbs) => limbs[i / 64] |= 1u64 << (i % 64),
        }
    }

    /// Tests bit `i` (out-of-range bits read as 0 for `Small`).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        match self {
            CoverSet::Small(w) => i < 64 && (*w >> i) & 1 == 1,
            CoverSet::Large(limbs) => limbs.get(i / 64).is_some_and(|l| (*l >> (i % 64)) & 1 == 1),
        }
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different representations/widths.
    #[inline]
    pub fn or_assign(&mut self, other: &CoverSet) {
        match (self, other) {
            (CoverSet::Small(a), CoverSet::Small(b)) => *a |= b,
            (CoverSet::Large(a), CoverSet::Large(b)) => {
                assert_eq!(a.len(), b.len(), "cover set width mismatch");
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    *x |= y;
                }
            }
            _ => panic!("cover set representation mismatch"),
        }
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        match self {
            CoverSet::Small(w) => w.count_ones(),
            CoverSet::Large(limbs) => kernels::count_ones(limbs),
        }
    }

    /// `|self ∪ other|` without materializing the union — the greedy inner
    /// loop.
    ///
    /// # Panics
    ///
    /// Panics on representation/width mismatch.
    #[inline]
    pub fn union_count(&self, other: &CoverSet) -> u32 {
        match (self, other) {
            (CoverSet::Small(a), CoverSet::Small(b)) => (a | b).count_ones(),
            (CoverSet::Large(a), CoverSet::Large(b)) => {
                assert_eq!(a.len(), b.len(), "cover set width mismatch");
                kernels::union_count(a, b)
            }
            _ => panic!("cover set representation mismatch"),
        }
    }

    /// `|self \ other|` — used by BT to count members *not* already covered
    /// by the pivot node.
    ///
    /// # Panics
    ///
    /// Panics on representation/width mismatch.
    #[inline]
    pub fn and_not_count(&self, other: &CoverSet) -> u32 {
        match (self, other) {
            (CoverSet::Small(a), CoverSet::Small(b)) => (a & !b).count_ones(),
            (CoverSet::Large(a), CoverSet::Large(b)) => {
                assert_eq!(a.len(), b.len(), "cover set width mismatch");
                kernels::and_not_count(a, b)
            }
            _ => panic!("cover set representation mismatch"),
        }
    }

    /// The set difference `self \ other` as a new set.
    pub fn difference(&self, other: &CoverSet) -> CoverSet {
        match (self, other) {
            (CoverSet::Small(a), CoverSet::Small(b)) => CoverSet::Small(a & !b),
            (CoverSet::Large(a), CoverSet::Large(b)) => {
                assert_eq!(a.len(), b.len(), "cover set width mismatch");
                CoverSet::Large(a.iter().zip(b.iter()).map(|(x, y)| x & !y).collect())
            }
            _ => panic!("cover set representation mismatch"),
        }
    }

    /// `true` when no bit is set.
    #[inline]
    pub fn is_zero(&self) -> bool {
        match self {
            CoverSet::Small(w) => *w == 0,
            CoverSet::Large(limbs) => limbs.iter().all(|&l| l == 0),
        }
    }

    /// `true` when the sets share a bit.
    #[inline]
    pub fn intersects(&self, other: &CoverSet) -> bool {
        match (self, other) {
            (CoverSet::Small(a), CoverSet::Small(b)) => a & b != 0,
            (CoverSet::Large(a), CoverSet::Large(b)) => {
                a.iter().zip(b.iter()).any(|(x, y)| x & y != 0)
            }
            _ => panic!("cover set representation mismatch"),
        }
    }

    /// The backing `u64` limbs, little-endian bit order. A `Small` set
    /// exposes its single word; this is the bridge between the enum
    /// representation and flat arena storage ([`crate::RicStore`]).
    #[inline]
    pub fn words(&self) -> &[u64] {
        match self {
            CoverSet::Small(w) => std::slice::from_ref(w),
            CoverSet::Large(limbs) => limbs,
        }
    }

    /// Rebuilds a set of the given `width` from raw limbs (the inverse of
    /// [`words`](Self::words)).
    ///
    /// # Panics
    ///
    /// Panics when `words.len()` differs from the limb count `width`
    /// implies (`max(1, ⌈width/64⌉)`).
    pub fn from_words(width: usize, words: &[u64]) -> CoverSet {
        let limbs = width.div_ceil(64).max(1);
        assert_eq!(words.len(), limbs, "cover set width mismatch");
        if width <= 64 {
            CoverSet::Small(words[0])
        } else {
            CoverSet::Large(words.to_vec().into_boxed_slice())
        }
    }

    /// Iterator over set bit positions, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        let limbs: Box<dyn Iterator<Item = (usize, u64)> + '_> = match self {
            CoverSet::Small(w) => Box::new(std::iter::once((0usize, *w))),
            CoverSet::Large(ls) => Box::new(ls.iter().copied().enumerate()),
        };
        limbs.flat_map(|(li, mut word)| {
            let mut out = Vec::new();
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                out.push(li * 64 + b);
                word &= word - 1;
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_set_get() {
        let mut s = CoverSet::new(8);
        assert!(matches!(s, CoverSet::Small(_)));
        s.set(0);
        s.set(7);
        assert!(s.get(0) && s.get(7) && !s.get(3));
        assert_eq!(s.count_ones(), 2);
    }

    #[test]
    fn large_set_get() {
        let mut s = CoverSet::new(130);
        assert!(matches!(s, CoverSet::Large(_)));
        s.set(0);
        s.set(64);
        s.set(129);
        assert!(s.get(0) && s.get(64) && s.get(129) && !s.get(128));
        assert_eq!(s.count_ones(), 3);
    }

    #[test]
    fn union_operations() {
        let mut a = CoverSet::new(10);
        a.set(1);
        a.set(2);
        let mut b = CoverSet::new(10);
        b.set(2);
        b.set(3);
        assert_eq!(a.union_count(&b), 3);
        a.or_assign(&b);
        assert_eq!(a.count_ones(), 3);
        assert!(a.get(3));
    }

    #[test]
    fn difference_operations() {
        let mut a = CoverSet::new(10);
        a.set(1);
        a.set(2);
        let mut b = CoverSet::new(10);
        b.set(2);
        assert_eq!(a.and_not_count(&b), 1);
        let d = a.difference(&b);
        assert!(d.get(1) && !d.get(2));
    }

    #[test]
    fn intersects_and_zero() {
        let mut a = CoverSet::new(5);
        let b = CoverSet::new(5);
        assert!(a.is_zero());
        assert!(!a.intersects(&b));
        a.set(4);
        assert!(!a.is_zero());
        let mut c = CoverSet::new(5);
        c.set(4);
        assert!(a.intersects(&c));
    }

    #[test]
    fn large_union_count_across_limbs() {
        let mut a = CoverSet::new(200);
        let mut b = CoverSet::new(200);
        a.set(10);
        a.set(100);
        b.set(100);
        b.set(199);
        assert_eq!(a.union_count(&b), 3);
        assert_eq!(a.and_not_count(&b), 1);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut s = CoverSet::new(70);
        for i in [3usize, 64, 69] {
            s.set(i);
        }
        let ones: Vec<usize> = s.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 69]);

        let mut small = CoverSet::new(8);
        small.set(0);
        small.set(5);
        assert_eq!(small.iter_ones().collect::<Vec<_>>(), vec![0, 5]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mixed_representation_panics() {
        let a = CoverSet::new(8);
        let b = CoverSet::new(200);
        let _ = a.union_count(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn small_set_bit_out_of_range_panics() {
        let mut s = CoverSet::new(8);
        s.set(64);
    }

    #[test]
    fn words_round_trip() {
        let mut small = CoverSet::new(8);
        small.set(0);
        small.set(5);
        assert_eq!(small.words(), &[0b100001u64]);
        assert_eq!(CoverSet::from_words(8, small.words()), small);

        let mut large = CoverSet::new(130);
        large.set(64);
        large.set(129);
        assert_eq!(large.words().len(), 3);
        assert_eq!(CoverSet::from_words(130, large.words()), large);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn from_words_wrong_limb_count_panics() {
        let _ = CoverSet::from_words(130, &[0, 0]);
    }

    #[test]
    fn boundary_width_64_is_small() {
        let s = CoverSet::new(64);
        assert!(matches!(s, CoverSet::Small(_)));
        let s = CoverSet::new(65);
        assert!(matches!(s, CoverSet::Large(_)));
    }
}
