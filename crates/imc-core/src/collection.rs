use crate::{RicSample, RicSampler};
use imc_graph::NodeId;
use rand::Rng;

/// Fixed number of deterministic sampling shards used by
/// [`RicCollection::extend_parallel`] and
/// [`RicStore::extend_parallel`](crate::RicStore::extend_parallel) when the
/// caller does not pick one explicitly.
///
/// This constant is the **cluster partition key**: a distributed solve
/// splits the same 16 sampling shards across daemons (shard `j` of `P`
/// owns sampling shards `[j·16/P, (j+1)·16/P)`), so the concatenation of
/// the per-daemon stores is bitwise identical to the single-node store.
/// Changing it invalidates every committed baseline and snapshot seeded
/// under the old split.
pub const DEFAULT_SAMPLING_SHARDS: usize = 16;

/// The deterministic sampling-shard plan shared by every parallel
/// extension path: `(rng_seed, sample_count)` per shard, in shard order.
///
/// Shard `i` draws `count/shards` samples (plus one of the `count %
/// shards` leftovers for the first shards) from
/// `StdRng::seed_from_u64(base_seed + i)`. Counts below 64 collapse to a
/// single shard seeded `base_seed`, which makes tiny draws identical to a
/// sequential `extend_with` run.
pub fn sampling_shard_plan(count: usize, base_seed: u64, shards: usize) -> Vec<(u64, usize)> {
    if count == 0 {
        return Vec::new();
    }
    // Fixed shard count (independent of the machine) keeps the output
    // reproducible across hosts; worker threads just consume shards.
    let shards = if count < 64 { 1 } else { shards.max(1) };
    let per = count / shards;
    let extra = count % shards;
    (0..shards)
        .map(|i| {
            (
                base_seed.wrapping_add(i as u64),
                per + usize::from(i < extra),
            )
        })
        .collect()
}

/// The contiguous slice of sampling shards owned by `partition` of
/// `partitions` — the cluster partition rule.
///
/// Requires `partitions` to divide `shards` evenly so every partition owns
/// the same number of shards and the concatenation over partitions (in
/// partition order) reproduces the full shard order exactly.
///
/// # Panics
///
/// When `partitions == 0`, `partition >= partitions`, or `shards %
/// partitions != 0`.
pub fn partition_shard_range(
    shards: usize,
    partition: usize,
    partitions: usize,
) -> std::ops::Range<usize> {
    assert!(partitions > 0, "partitions must be positive");
    assert!(
        partition < partitions,
        "partition {partition} out of range for {partitions} partitions"
    );
    assert!(
        shards.is_multiple_of(partitions),
        "{partitions} partitions must divide the {shards} sampling shards evenly"
    );
    let width = shards / partitions;
    partition * width..(partition + 1) * width
}

/// Location of one node appearance inside a [`RicCollection`]: which sample
/// and at which position (so the node's [`CoverSet`](crate::CoverSet) is
/// `samples[sample].covers[pos]`).
// `repr(C)` pins the layout to two consecutive `u32`s (8 bytes, no
// padding), which is what snapshot format v3 persists and what the
// zero-copy view reinterprets in place — see `snapshot.rs` and
// docs/FORMATS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct SampleRef {
    /// Index of the sample within the collection.
    pub sample: u32,
    /// Position of the node inside that sample's `nodes` array.
    pub pos: u32,
}

/// A growable collection `R` of RIC samples with an inverted node index.
///
/// The index maps every node to the samples it touches, which is what all
/// MAXR solvers iterate: a greedy gain evaluation for node `v` touches only
/// `index(v)`, not the whole collection.
///
/// The estimators (Section III):
///
/// * `ĉ_R(S) = (b / |R|) · Σ_g X_g(S)` — [`estimate`](Self::estimate);
/// * `ν_R(S) = (b / |R|) · Σ_g min(|I_g(S)|/h_g, 1)` —
///   [`nu_estimate`](Self::nu_estimate).
///
/// ```
/// use imc_community::CommunitySet;
/// use imc_core::{RicCollection, RicSampler};
/// use imc_graph::{GraphBuilder, NodeId};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 1.0)?;
/// let graph = b.build()?;
/// let communities =
///     CommunitySet::from_parts(3, vec![(vec![NodeId::new(1)], 1, 2.0)])?;
/// let sampler = RicSampler::new(&graph, &communities);
/// let mut collection = RicCollection::for_sampler(&sampler);
/// collection.extend_with(&sampler, 1000, &mut StdRng::seed_from_u64(7));
/// // Node 0 reaches the single member through a certain edge: ĉ = b = 2.
/// assert_eq!(collection.estimate(&[NodeId::new(0)]), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RicCollection {
    samples: Vec<RicSample>,
    node_count: usize,
    community_count: usize,
    total_benefit: f64,
    index: Vec<Vec<SampleRef>>,
}

impl RicCollection {
    /// Creates an empty collection for a graph with `node_count` nodes,
    /// `community_count` communities and total benefit `total_benefit`.
    pub fn new(node_count: usize, community_count: usize, total_benefit: f64) -> Self {
        RicCollection {
            samples: Vec::new(),
            node_count,
            community_count,
            total_benefit,
            index: vec![Vec::new(); node_count],
        }
    }

    /// Creates an empty collection matching a sampler's instance.
    pub fn for_sampler(sampler: &RicSampler<'_>) -> Self {
        RicCollection::new(
            sampler.graph().node_count(),
            sampler.communities().len(),
            sampler.communities().total_benefit(),
        )
    }

    /// Appends one sample, updating the inverted index.
    pub fn push(&mut self, sample: RicSample) {
        let si = self.samples.len() as u32;
        for (pos, &v) in sample.nodes.iter().enumerate() {
            self.index[v.index()].push(SampleRef {
                sample: si,
                pos: pos as u32,
            });
        }
        self.samples.push(sample);
    }

    /// Generates and appends `count` samples from `sampler`.
    pub fn extend_with<R: Rng + ?Sized>(
        &mut self,
        sampler: &RicSampler<'_>,
        count: usize,
        rng: &mut R,
    ) {
        self.samples.reserve(count);
        for _ in 0..count {
            self.push(sampler.sample(rng));
        }
    }

    /// Generates and appends `count` samples using multiple threads, with
    /// results bit-identical regardless of thread count or scheduling.
    ///
    /// Mirrors the sharding scheme of `imc_diffusion::parallel`: the work
    /// is split into a fixed number of shards (independent of the machine),
    /// shard `i` samples from an RNG seeded with `base_seed + i`, and the
    /// shards are appended in shard order. The sample stream differs from
    /// [`extend_with`](Self::extend_with) (which draws every sample from
    /// one sequential RNG), so callers pick one scheme and stay with it.
    pub fn extend_parallel(&mut self, sampler: &RicSampler<'_>, count: usize, base_seed: u64) {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        self.extend_parallel_with_workers(sampler, count, base_seed, workers);
    }

    /// [`extend_parallel`](Self::extend_parallel) with an explicit worker
    /// count — exposed so callers (and the determinism tests) can pin the
    /// level of parallelism. Any `workers` value produces the same
    /// collection; `0` is treated as `1`.
    pub fn extend_parallel_with_workers(
        &mut self,
        sampler: &RicSampler<'_>,
        count: usize,
        base_seed: u64,
        workers: usize,
    ) {
        self.extend_parallel_sharded(sampler, count, base_seed, DEFAULT_SAMPLING_SHARDS, workers);
    }

    /// [`extend_parallel_with_workers`](Self::extend_parallel_with_workers)
    /// with an explicit sampling-shard count — the fully-pinned entry
    /// point. `shards` defaults to [`DEFAULT_SAMPLING_SHARDS`] elsewhere;
    /// pass a different value only when every producer and consumer of the
    /// collection agrees on it, because the shard count *is* the sample
    /// stream (see [`sampling_shard_plan`]).
    pub fn extend_parallel_sharded(
        &mut self,
        sampler: &RicSampler<'_>,
        count: usize,
        base_seed: u64,
        shards: usize,
        workers: usize,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        if count == 0 {
            return;
        }
        let plan = sampling_shard_plan(count, base_seed, shards);

        fn sample_shard(sampler: &RicSampler<'_>, seed: u64, n: usize) -> Vec<RicSample> {
            let start = std::time::Instant::now();
            let mut rng = StdRng::seed_from_u64(seed);
            let out: Vec<RicSample> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
            crate::obs::ric_shard_duration().observe_duration(start.elapsed());
            out
        }

        let workers = workers.clamp(1, plan.len());
        let shard_outputs: Vec<Vec<RicSample>> = if workers <= 1 {
            plan.iter()
                .map(|&(seed, n)| sample_shard(sampler, seed, n))
                .collect()
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let slots: Vec<std::sync::Mutex<Vec<RicSample>>> = plan
                .iter()
                .map(|_| std::sync::Mutex::new(Vec::new()))
                .collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= plan.len() {
                            break;
                        }
                        let (seed, n) = plan[i];
                        *slots[i].lock().expect("no poisoned shards") =
                            sample_shard(sampler, seed, n);
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| m.into_inner().expect("threads joined"))
                .collect()
        };

        self.samples.reserve(count);
        // Append in shard order so the collection (samples *and* inverted
        // index) is independent of scheduling.
        for shard in shard_outputs {
            for s in shard {
                self.push(s);
            }
        }
    }

    /// Number of samples `|R|`.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the collection holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Node count of the underlying graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of communities of the underlying instance.
    pub fn community_count(&self) -> usize {
        self.community_count
    }

    /// Total benefit `b` of the underlying instance.
    pub fn total_benefit(&self) -> f64 {
        self.total_benefit
    }

    /// The samples, in insertion order.
    pub fn samples(&self) -> &[RicSample] {
        &self.samples
    }

    /// Samples touched by `v` (the paper's `G_R(u)`), as index references.
    pub fn touched_by(&self, v: NodeId) -> &[SampleRef] {
        &self.index[v.index()]
    }

    /// Number of samples `v` appears in — MAF's node-appearance count.
    pub fn appearance_count(&self, v: NodeId) -> usize {
        self.index[v.index()].len()
    }

    /// Number of samples influenced by `S`: `Σ_g X_g(S)`.
    pub fn influenced_count(&self, seeds: &[NodeId]) -> usize {
        self.samples
            .iter()
            .filter(|g| g.influenced_by(seeds))
            .count()
    }

    /// The estimator `ĉ_R(S)` (eq. 3). Returns 0 for an empty collection.
    pub fn estimate(&self, seeds: &[NodeId]) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.total_benefit * self.influenced_count(seeds) as f64 / self.samples.len() as f64
    }

    /// The submodular upper-bound estimator `ν_R(S)` (eq. 7). Returns 0 for
    /// an empty collection.
    pub fn nu_estimate(&self, seeds: &[NodeId]) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let frac: f64 = self
            .samples
            .iter()
            .map(|g| g.fractional_coverage(seeds))
            .sum();
        self.total_benefit * frac / self.samples.len() as f64
    }

    /// How many samples each community roots — MAF's community-frequency
    /// table. `counts[i]` is the number of samples with source community
    /// `i`.
    pub fn community_frequencies(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.community_count];
        for s in &self.samples {
            counts[s.community.index()] += 1;
        }
        counts
    }

    /// Appearance count for every node (`counts[v]` = samples touched by
    /// `v`).
    pub fn node_appearance_counts(&self) -> Vec<usize> {
        self.index.iter().map(|l| l.len()).collect()
    }

    /// Size and cost statistics of the collection — the quantities that
    /// govern solver runtimes (greedy cost scales with the total index
    /// size; BT's per-pivot cost with the squared sample sizes).
    pub fn stats(&self) -> CollectionStats {
        let sizes: Vec<usize> = self.samples.iter().map(|s| s.len()).collect();
        let total: usize = sizes.iter().sum();
        let max = sizes.iter().copied().max().unwrap_or(0);
        let sum_sq: u64 = sizes.iter().map(|&s| (s * s) as u64).sum();
        let touched_nodes = self.index.iter().filter(|l| !l.is_empty()).count();
        CollectionStats {
            samples: self.samples.len(),
            total_index_entries: total,
            mean_sample_size: if self.samples.is_empty() {
                0.0
            } else {
                total as f64 / self.samples.len() as f64
            },
            max_sample_size: max,
            sum_squared_sizes: sum_sq,
            touched_nodes,
        }
    }
}

/// Summary statistics of a [`RicCollection`], from
/// [`RicCollection::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionStats {
    /// `|R|`.
    pub samples: usize,
    /// Σ_g |g| — the inverted-index size, i.e. one greedy sweep's cost.
    pub total_index_entries: usize,
    /// Mean nodes per sample.
    pub mean_sample_size: f64,
    /// Largest sample.
    pub max_sample_size: usize,
    /// Σ_g |g|² — proxy for BT's total pivot-reduction cost.
    pub sum_squared_sizes: u64,
    /// Distinct nodes appearing in at least one sample.
    pub touched_nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoverSet;
    use imc_community::{CommunityId, CommunitySet};
    use imc_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn manual_sample(community: u32, threshold: u32, node_covers: &[(u32, &[usize])]) -> RicSample {
        let width = 4usize;
        let mut nodes = Vec::new();
        let mut covers = Vec::new();
        for &(v, bits) in node_covers {
            nodes.push(NodeId::new(v));
            let mut c = CoverSet::new(width);
            for &b in bits {
                c.set(b);
            }
            covers.push(c);
        }
        RicSample {
            community: CommunityId::new(community),
            threshold,
            community_size: width as u32,
            nodes,
            covers,
        }
    }

    fn sample_collection() -> RicCollection {
        let mut col = RicCollection::new(10, 3, 6.0);
        // Sample 0 (community 0, h=2): node 1 covers {0}, node 2 covers {1}.
        col.push(manual_sample(0, 2, &[(1, &[0]), (2, &[1])]));
        // Sample 1 (community 1, h=1): node 2 covers {0}.
        col.push(manual_sample(1, 1, &[(2, &[0])]));
        // Sample 2 (community 0, h=2): node 3 covers {0, 1}.
        col.push(manual_sample(0, 2, &[(3, &[0, 1])]));
        col
    }

    #[test]
    fn index_tracks_appearances() {
        let col = sample_collection();
        assert_eq!(col.appearance_count(NodeId::new(2)), 2);
        assert_eq!(col.appearance_count(NodeId::new(1)), 1);
        assert_eq!(col.appearance_count(NodeId::new(9)), 0);
        let refs = col.touched_by(NodeId::new(2));
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].sample, 0);
        assert_eq!(refs[1].sample, 1);
    }

    #[test]
    fn influenced_count_and_estimate() {
        let col = sample_collection();
        // {3} influences sample 2 only; {2} influences sample 1 only;
        // {1,2} influences samples 0 and 1.
        assert_eq!(col.influenced_count(&[NodeId::new(3)]), 1);
        assert_eq!(col.influenced_count(&[NodeId::new(2)]), 1);
        assert_eq!(col.influenced_count(&[NodeId::new(1), NodeId::new(2)]), 2);
        // ĉ = b * count / |R| = 6 * 2 / 3 = 4.
        assert_eq!(col.estimate(&[NodeId::new(1), NodeId::new(2)]), 4.0);
    }

    #[test]
    fn nu_dominates_c_hat() {
        let col = sample_collection();
        for seeds in [
            vec![NodeId::new(1)],
            vec![NodeId::new(2)],
            vec![NodeId::new(3)],
            vec![NodeId::new(1), NodeId::new(3)],
        ] {
            assert!(
                col.nu_estimate(&seeds) >= col.estimate(&seeds) - 1e-12,
                "Lemma 3 violated for {seeds:?}"
            );
        }
    }

    #[test]
    fn nu_estimate_fractional_value() {
        let col = sample_collection();
        // {1}: sample 0 fraction 1/2, others 0 → ν = 6 * 0.5 / 3 = 1.
        assert!((col.nu_estimate(&[NodeId::new(1)]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn community_frequencies_counted() {
        let col = sample_collection();
        assert_eq!(col.community_frequencies(), vec![2, 1, 0]);
    }

    #[test]
    fn node_appearance_counts_match_index() {
        let col = sample_collection();
        let counts = col.node_appearance_counts();
        assert_eq!(counts[2], 2);
        assert_eq!(counts[3], 1);
        assert_eq!(counts.iter().sum::<usize>(), 4);
    }

    #[test]
    fn empty_collection_estimates_zero() {
        let col = RicCollection::new(5, 2, 10.0);
        assert!(col.is_empty());
        assert_eq!(col.estimate(&[NodeId::new(0)]), 0.0);
        assert_eq!(col.nu_estimate(&[NodeId::new(0)]), 0.0);
    }

    #[test]
    fn stats_reflect_contents() {
        let col = sample_collection();
        let st = col.stats();
        assert_eq!(st.samples, 3);
        assert_eq!(st.total_index_entries, 4); // 2 + 1 + 1 nodes
        assert_eq!(st.max_sample_size, 2);
        assert!((st.mean_sample_size - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(st.sum_squared_sizes, 4 + 1 + 1);
        assert_eq!(st.touched_nodes, 3); // nodes 1, 2, 3
    }

    #[test]
    fn empty_collection_stats() {
        let col = RicCollection::new(5, 2, 10.0);
        let st = col.stats();
        assert_eq!(st.samples, 0);
        assert_eq!(st.mean_sample_size, 0.0);
        assert_eq!(st.max_sample_size, 0);
    }

    #[test]
    fn extend_parallel_bit_identical_across_worker_counts() {
        let mut b = GraphBuilder::new(20);
        for u in 0..19u32 {
            b.add_edge(u, u + 1, 0.4).unwrap();
        }
        let g = b.build().unwrap();
        let cs = CommunitySet::from_parts(
            20,
            vec![
                ((0..5).map(NodeId::new).collect(), 2, 1.0),
                ((10..15).map(NodeId::new).collect(), 1, 3.0),
            ],
        )
        .unwrap();
        let sampler = RicSampler::new(&g, &cs);
        let mut reference = RicCollection::for_sampler(&sampler);
        reference.extend_parallel_with_workers(&sampler, 300, 77, 1);
        for workers in [2, 4, 8] {
            let mut col = RicCollection::for_sampler(&sampler);
            col.extend_parallel_with_workers(&sampler, 300, 77, workers);
            assert_eq!(col.samples(), reference.samples(), "workers={workers}");
            for v in 0..20 {
                assert_eq!(
                    col.touched_by(NodeId::new(v)),
                    reference.touched_by(NodeId::new(v)),
                    "index mismatch at node {v} with workers={workers}"
                );
            }
        }
        // The machine-default entry point agrees too.
        let mut auto = RicCollection::for_sampler(&sampler);
        auto.extend_parallel(&sampler, 300, 77);
        assert_eq!(auto.samples(), reference.samples());
    }

    #[test]
    fn extend_parallel_small_count_single_shard() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let cs = CommunitySet::from_parts(3, vec![(vec![NodeId::new(1)], 1, 2.0)]).unwrap();
        let sampler = RicSampler::new(&g, &cs);
        // Below the shard threshold the plan is one shard seeded base_seed,
        // i.e. identical to a sequential draw from StdRng(base_seed).
        let mut par = RicCollection::for_sampler(&sampler);
        par.extend_parallel_with_workers(&sampler, 10, 5, 4);
        let mut seq = RicCollection::for_sampler(&sampler);
        seq.extend_with(&sampler, 10, &mut StdRng::seed_from_u64(5));
        assert_eq!(par.samples(), seq.samples());
    }

    #[test]
    fn extend_parallel_zero_count_is_noop() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let cs = CommunitySet::from_parts(3, vec![(vec![NodeId::new(1)], 1, 2.0)]).unwrap();
        let sampler = RicSampler::new(&g, &cs);
        let mut col = RicCollection::for_sampler(&sampler);
        col.extend_parallel(&sampler, 0, 1);
        assert!(col.is_empty());
    }

    #[test]
    fn shard_plan_covers_count_and_collapses_small_draws() {
        let plan = sampling_shard_plan(300, 77, DEFAULT_SAMPLING_SHARDS);
        assert_eq!(plan.len(), 16);
        assert_eq!(plan.iter().map(|&(_, n)| n).sum::<usize>(), 300);
        for (i, &(seed, n)) in plan.iter().enumerate() {
            assert_eq!(seed, 77 + i as u64);
            // 300 = 16·18 + 12: the first 12 shards draw one extra sample.
            assert_eq!(n, 18 + usize::from(i < 12));
        }
        assert_eq!(sampling_shard_plan(10, 5, 16), vec![(5, 10)]);
        assert!(sampling_shard_plan(0, 5, 16).is_empty());
    }

    #[test]
    fn partition_ranges_tile_the_shard_plan() {
        for partitions in [1usize, 2, 4, 8, 16] {
            let mut covered = Vec::new();
            for p in 0..partitions {
                covered.extend(partition_shard_range(16, p, partitions));
            }
            assert_eq!(covered, (0..16).collect::<Vec<_>>(), "P={partitions}");
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn partition_ranges_reject_uneven_split() {
        let _ = partition_shard_range(16, 0, 3);
    }

    #[test]
    fn extend_parallel_sharded_matches_default_shards() {
        let mut b = GraphBuilder::new(20);
        for u in 0..19u32 {
            b.add_edge(u, u + 1, 0.4).unwrap();
        }
        let g = b.build().unwrap();
        let cs = CommunitySet::from_parts(20, vec![((0..5).map(NodeId::new).collect(), 2, 1.0)])
            .unwrap();
        let sampler = RicSampler::new(&g, &cs);
        let mut reference = RicCollection::for_sampler(&sampler);
        reference.extend_parallel_with_workers(&sampler, 200, 9, 2);
        let mut explicit = RicCollection::for_sampler(&sampler);
        explicit.extend_parallel_sharded(&sampler, 200, 9, DEFAULT_SAMPLING_SHARDS, 4);
        assert_eq!(explicit.samples(), reference.samples());
    }

    #[test]
    fn extend_with_generates_from_sampler() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let cs = CommunitySet::from_parts(
            3,
            vec![
                (vec![NodeId::new(1)], 1, 2.0),
                (vec![NodeId::new(2)], 1, 2.0),
            ],
        )
        .unwrap();
        let sampler = RicSampler::new(&g, &cs);
        let mut col = RicCollection::for_sampler(&sampler);
        let mut rng = StdRng::seed_from_u64(1);
        col.extend_with(&sampler, 500, &mut rng);
        assert_eq!(col.len(), 500);
        assert_eq!(col.total_benefit(), 4.0);
        // Node 0 reaches member 1 always when community 0 is drawn (~half
        // the samples).
        let freq = col.community_frequencies();
        assert_eq!(freq.iter().sum::<usize>(), 500);
        assert!(freq[0] > 180 && freq[0] < 320, "freq={freq:?}");
        // ĉ({0}) ≈ b · Pr[C_0 drawn] = 4 · 0.5 = 2 (node 0 reaches C_0
        // through the certain edge, never C_1).
        let est = col.estimate(&[NodeId::new(0)]);
        assert!((est - 2.0).abs() < 0.4, "est={est}");
    }
}
