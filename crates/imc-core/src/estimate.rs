//! The `Estimate` procedure (Algorithm 6).
//!
//! Grades a candidate seed set `S` by applying the Dagum–Karp–Luby–Ross
//! stopping rule to *fresh RIC samples*: each sample is influenced by `S`
//! with probability exactly `c(S)/b` (Lemma 1), so counting influenced
//! samples until `Λ′ = 1 + 4(e−2)·ln(2/δ′)·(1+ε′)/ε′²` of them are seen
//! yields `c* = b·Λ′/T` with `Pr[c* ≥ (1−ε′)·c(S)] ≥ 1 − δ′`.
//!
//! Returns `None` when `t_max` samples were drawn without reaching `Λ′` —
//! the paper's `return −1` — which IMCAF treats as "keep sampling".

use crate::{RicSampler, SampleBuf};
use imc_diffusion::dagum::stopping_threshold;
use imc_graph::NodeId;
use rand::Rng;

/// Outcome of one [`estimate_c`] invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateOutcome {
    /// The estimate `c* = b·Λ′/T`.
    pub estimate: f64,
    /// Fresh RIC samples consumed.
    pub samples_used: u64,
}

/// Runs Alg. 6: draws fresh RIC samples until `Λ′` of them are influenced
/// by `seeds` (then returns the estimate) or `t_max` samples are exhausted
/// (then returns `None`).
///
/// # Panics
///
/// Panics if `epsilon` or `delta` is outside `(0, 1)` (via
/// [`stopping_threshold`]).
pub fn estimate_c<R: Rng + ?Sized>(
    sampler: &RicSampler<'_>,
    seeds: &[NodeId],
    epsilon: f64,
    delta: f64,
    t_max: u64,
    rng: &mut R,
) -> Option<EstimateOutcome> {
    let lambda_prime = stopping_threshold(epsilon, delta);
    let b = sampler.communities().total_benefit();
    crate::obs::estimate_calls_total().inc();
    let mut influenced = 0u64;
    // One reusable scratch buffer for the whole run — grading draws
    // thousands of throwaway samples, so the owning path's per-sample
    // allocations would dominate. The RNG stream (and thus the result) is
    // identical to drawing owned samples.
    let mut buf = SampleBuf::default();
    for t in 1..=t_max {
        sampler.sample_into(rng, &mut buf);
        if buf.influenced_by(seeds) {
            influenced += 1;
            if influenced as f64 >= lambda_prime {
                crate::obs::estimate_samples().observe(t as f64);
                if imc_obs::trace::enabled() {
                    imc_obs::trace::emit(
                        imc_obs::trace::TraceEvent::new("estimate")
                            .field("outcome", "converged")
                            .field("samples_used", t)
                            .field("estimate", b * lambda_prime / t as f64),
                    );
                }
                return Some(EstimateOutcome {
                    estimate: b * lambda_prime / t as f64,
                    samples_used: t,
                });
            }
        }
    }
    crate::obs::estimate_exhausted_total().inc();
    crate::obs::estimate_samples().observe(t_max as f64);
    if imc_obs::trace::enabled() {
        imc_obs::trace::emit(
            imc_obs::trace::TraceEvent::new("estimate")
                .field("outcome", "exhausted")
                .field("samples_used", t_max)
                .field("influenced", influenced),
        );
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_community::CommunitySet;
    use imc_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_on_deterministic_instance() {
        // Seed 0 reaches both members of the single community with
        // certainty: c(S) = b = 5.
        let mut bld = GraphBuilder::new(3);
        bld.add_edge(0, 1, 1.0).unwrap();
        bld.add_edge(0, 2, 1.0).unwrap();
        let g = bld.build().unwrap();
        let cs = CommunitySet::from_parts(3, vec![(vec![NodeId::new(1), NodeId::new(2)], 2, 5.0)])
            .unwrap();
        let sampler = RicSampler::new(&g, &cs);
        let mut rng = StdRng::seed_from_u64(1);
        let out = estimate_c(&sampler, &[NodeId::new(0)], 0.2, 0.2, 100_000, &mut rng).unwrap();
        // Every sample influenced: T = ceil(Λ′), estimate = b·Λ′/⌈Λ′⌉ ≈ b.
        assert!((out.estimate - 5.0).abs() < 0.05, "estimate={out:?}");
    }

    #[test]
    fn probabilistic_edge_estimates_true_benefit() {
        // 0 -> 1 with p=0.5, single community {1} h=1 b=2: c({0}) = 1.
        let mut bld = GraphBuilder::new(2);
        bld.add_edge(0, 1, 0.5).unwrap();
        let g = bld.build().unwrap();
        let cs = CommunitySet::from_parts(2, vec![(vec![NodeId::new(1)], 1, 2.0)]).unwrap();
        let sampler = RicSampler::new(&g, &cs);
        let mut rng = StdRng::seed_from_u64(3);
        let out = estimate_c(&sampler, &[NodeId::new(0)], 0.1, 0.1, 1_000_000, &mut rng).unwrap();
        assert!((out.estimate - 1.0).abs() < 0.12, "estimate={out:?}");
    }

    #[test]
    fn hopeless_seed_exhausts_budget() {
        let g = GraphBuilder::new(3).build().unwrap();
        let cs = CommunitySet::from_parts(3, vec![(vec![NodeId::new(1), NodeId::new(2)], 2, 1.0)])
            .unwrap();
        let sampler = RicSampler::new(&g, &cs);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(estimate_c(&sampler, &[NodeId::new(0)], 0.2, 0.2, 500, &mut rng).is_none());
    }

    #[test]
    fn samples_used_reported() {
        let g = GraphBuilder::new(2).build().unwrap();
        let cs = CommunitySet::from_parts(2, vec![(vec![NodeId::new(1)], 1, 1.0)]).unwrap();
        let sampler = RicSampler::new(&g, &cs);
        let mut rng = StdRng::seed_from_u64(7);
        // Seeding the member itself influences every sample.
        let out = estimate_c(&sampler, &[NodeId::new(1)], 0.2, 0.2, 100_000, &mut rng).unwrap();
        let lambda = stopping_threshold(0.2, 0.2);
        assert_eq!(out.samples_used, lambda.ceil() as u64);
    }
}
