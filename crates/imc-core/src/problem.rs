use crate::{ImcError, Result, RicSampler};
use imc_community::CommunitySet;
use imc_graph::Graph;

/// A validated IMC problem instance: the influence graph plus its community
/// structure.
///
/// Owns both parts so solver code can borrow them coherently; construction
/// checks they describe the same node universe and that at least one
/// community exists (otherwise the objective is identically zero).
#[derive(Debug, Clone)]
pub struct ImcInstance {
    graph: Graph,
    communities: CommunitySet,
}

impl ImcInstance {
    /// Bundles a graph with its community set.
    ///
    /// # Errors
    ///
    /// * [`ImcError::Mismatched`] when the community set was validated
    ///   against a different node count.
    /// * [`ImcError::NoCommunities`] when the set is empty.
    pub fn new(graph: Graph, communities: CommunitySet) -> Result<Self> {
        if graph.node_count() != communities.node_count() {
            return Err(ImcError::Mismatched {
                graph_nodes: graph.node_count(),
                community_nodes: communities.node_count(),
            });
        }
        if communities.is_empty() {
            return Err(ImcError::NoCommunities);
        }
        Ok(ImcInstance { graph, communities })
    }

    /// The influence graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The community structure.
    pub fn communities(&self) -> &CommunitySet {
        &self.communities
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of communities `r`.
    pub fn community_count(&self) -> usize {
        self.communities.len()
    }

    /// Total benefit `b`.
    pub fn total_benefit(&self) -> f64 {
        self.communities.total_benefit()
    }

    /// Largest threshold `h`.
    pub fn max_threshold(&self) -> u32 {
        self.communities.max_threshold()
    }

    /// Smallest benefit `β`.
    pub fn min_benefit(&self) -> f64 {
        self.communities.min_benefit()
    }

    /// A RIC sampler borrowing this instance.
    pub fn sampler(&self) -> RicSampler<'_> {
        RicSampler::new(&self.graph, &self.communities)
    }

    /// Validates a seed budget against the instance.
    ///
    /// # Errors
    ///
    /// [`ImcError::InvalidBudget`] when `k == 0` or `k > n`.
    pub fn validate_budget(&self, k: usize) -> Result<()> {
        if k == 0 || k > self.node_count() {
            Err(ImcError::InvalidBudget {
                k,
                node_count: self.node_count(),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_graph::{GraphBuilder, NodeId};

    fn graph3() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.build().unwrap()
    }

    fn communities3() -> CommunitySet {
        CommunitySet::from_parts(3, vec![(vec![NodeId::new(1)], 1, 2.0)]).unwrap()
    }

    #[test]
    fn valid_instance() {
        let inst = ImcInstance::new(graph3(), communities3()).unwrap();
        assert_eq!(inst.node_count(), 3);
        assert_eq!(inst.community_count(), 1);
        assert_eq!(inst.total_benefit(), 2.0);
        assert_eq!(inst.max_threshold(), 1);
        assert_eq!(inst.min_benefit(), 2.0);
    }

    #[test]
    fn mismatched_node_counts_rejected() {
        let cs = CommunitySet::from_parts(5, vec![(vec![NodeId::new(1)], 1, 1.0)]).unwrap();
        assert!(matches!(
            ImcInstance::new(graph3(), cs),
            Err(ImcError::Mismatched { .. })
        ));
    }

    #[test]
    fn empty_communities_rejected() {
        let cs = CommunitySet::from_parts(3, vec![]).unwrap();
        assert!(matches!(
            ImcInstance::new(graph3(), cs),
            Err(ImcError::NoCommunities)
        ));
    }

    #[test]
    fn budget_validation() {
        let inst = ImcInstance::new(graph3(), communities3()).unwrap();
        assert!(inst.validate_budget(1).is_ok());
        assert!(inst.validate_budget(3).is_ok());
        assert!(inst.validate_budget(0).is_err());
        assert!(inst.validate_budget(4).is_err());
    }

    #[test]
    fn sampler_borrows_instance() {
        let inst = ImcInstance::new(graph3(), communities3()).unwrap();
        let sampler = inst.sampler();
        assert_eq!(sampler.communities().len(), 1);
    }
}
