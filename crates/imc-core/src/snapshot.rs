//! Persistent snapshot store for RIC sample collections.
//!
//! IMCAF-generated sample collections are expensive (each RIC sample is a
//! reverse BFS over a live-edge realization), but they are pure data: a
//! collection sampled once can serve any number of `solve`/`estimate`
//! queries later. This module serializes a collection — together with a
//! fingerprint of the graph + community structure it was sampled from — to
//! a versioned, checksummed, std-only binary format, so a warm index can
//! cold-start from disk instead of regenerating samples.
//!
//! # Format (version 2, all integers little-endian)
//!
//! Version 2 is columnar, mirroring the arena layout of
//! [`RicStore`]: all per-sample metadata first, then every node list
//! back-to-back, then every cover buffer back-to-back. Decoding therefore
//! fills the store's flat buffers with long sequential reads instead of
//! interleaved per-sample parsing.
//!
//! ```text
//! offset  size  field
//! 0       7     magic "IMCSNAP"
//! 7       1     format version (= 2)
//! 8       8     instance fingerprint (FNV-1a, see [`instance_fingerprint`])
//! 16      8     node_count        (u64)
//! 24      8     community_count   (u64)
//! 32      8     total_benefit     (f64 bits)
//! 40      8     generation        (u64, snapshot publisher's counter)
//! 48      8     sample_count      (u64)
//! 56      ...   metadata block: per sample
//!                 community       (u32)
//!                 threshold       (u32)
//!                 community_size  (u32)
//!                 node_count n    (u32)
//!         ...   node block: per sample, n × u32 (strictly ascending)
//!         ...   cover block: per sample,
//!                 n × max(1, ceil(community_size/64)) × u64 limbs
//! end-8   8     FNV-1a checksum over every preceding byte
//! ```
//!
//! Version-1 files (row-major: each sample's metadata, nodes and covers
//! interleaved) are still decoded transparently; [`encode`] always writes
//! version 2.
//!
//! Decoding validates the magic, version, checksum and every structural
//! invariant (sorted in-range nodes, in-range community ids, zero padding
//! bits) before reconstructing the collection, so a truncated or corrupted
//! file is rejected rather than producing a silently wrong index.

use crate::{RicSamples, RicStore};
use imc_community::{CommunityId, CommunitySet};
use imc_graph::{Graph, NodeId};
use std::fmt;
use std::path::Path;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: &[u8; 7] = b"IMCSNAP";
/// Format version written by [`encode`].
pub const FORMAT_VERSION: u8 = 2;
/// Oldest format version [`decode`] still reads.
pub const MIN_FORMAT_VERSION: u8 = 1;

const HEADER_LEN: usize = 7 + 1 + 8 * 6;
const CHECKSUM_LEN: usize = 8;

/// Errors raised while reading or writing snapshots.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version byte is not one this build understands.
    UnsupportedVersion(u8),
    /// The file ends before the declared content does.
    Truncated,
    /// The trailing checksum does not match the content.
    ChecksumMismatch,
    /// A structural invariant is violated; the message says which.
    Corrupt(&'static str),
    /// The snapshot was sampled from a different graph/community structure.
    FingerprintMismatch {
        /// Fingerprint of the instance the caller is loading for.
        expected: u64,
        /// Fingerprint recorded in the snapshot file.
        found: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (this build reads {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch (file corrupted)"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot is corrupt: {what}"),
            SnapshotError::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot fingerprint {found:#018x} does not match instance fingerprint {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// A decoded snapshot: the collection plus the provenance recorded with it.
#[derive(Debug, Clone)]
pub struct SnapshotData {
    /// The reconstructed sample collection (inverted index rebuilt).
    pub collection: RicStore,
    /// Fingerprint of the instance the samples were drawn from.
    pub fingerprint: u64,
    /// Generation counter the publisher stamped (0 for CLI-produced files).
    pub generation: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher (std-only, stable across platforms).
#[derive(Debug, Clone)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a hash of a byte slice — exposed for tests and the wire protocol.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Deterministic fingerprint of an IMC instance: node count, the full
/// weighted edge list, and every community's members/threshold/benefit.
///
/// Two instances fingerprint equal iff a sample collection drawn from one
/// is valid for the other, so snapshot loading can refuse a collection
/// sampled from a different graph or community structure.
pub fn instance_fingerprint(graph: &Graph, communities: &CommunitySet) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(graph.node_count() as u64);
    h.write_u64(graph.edge_count() as u64);
    for e in graph.edges() {
        h.write_u32(e.source.raw());
        h.write_u32(e.target.raw());
        h.write_u64(e.weight.to_bits());
    }
    h.write_u64(communities.len() as u64);
    for c in communities.iter() {
        h.write_u32(c.threshold);
        h.write_u64(c.benefit.to_bits());
        h.write_u64(c.members.len() as u64);
        for &m in &c.members {
            h.write_u32(m.raw());
        }
    }
    h.finish()
}

/// Number of `u64` limbs a cover set of `width` bits serializes to.
fn limbs_for(width: u32) -> usize {
    (width as usize).div_ceil(64).max(1)
}

/// Encodes a collection (either storage backend) into the version-2
/// columnar snapshot byte format.
pub fn encode<C: RicSamples>(collection: &C, fingerprint: u64, generation: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 64 * collection.len() + CHECKSUM_LEN);
    out.extend_from_slice(MAGIC);
    out.push(FORMAT_VERSION);
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(collection.node_count() as u64).to_le_bytes());
    out.extend_from_slice(&(collection.community_count() as u64).to_le_bytes());
    out.extend_from_slice(&collection.total_benefit().to_bits().to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(collection.len() as u64).to_le_bytes());
    for si in 0..collection.len() {
        out.extend_from_slice(&collection.sample_community(si).raw().to_le_bytes());
        out.extend_from_slice(&collection.sample_threshold(si).to_le_bytes());
        out.extend_from_slice(&collection.sample_width(si).to_le_bytes());
        out.extend_from_slice(&(collection.sample_nodes(si).len() as u32).to_le_bytes());
    }
    for si in 0..collection.len() {
        for &v in collection.sample_nodes(si) {
            out.extend_from_slice(&v.raw().to_le_bytes());
        }
    }
    for si in 0..collection.len() {
        for pos in 0..collection.sample_nodes(si).len() {
            for &w in collection.cover_words(si, pos) {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Bounds-checked little-endian reader over the snapshot body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Validates a sample's metadata fields shared by both format versions.
fn check_meta(community: u32, threshold: u32, community_count: u64) -> Result<(), SnapshotError> {
    if u64::from(community) >= community_count {
        return Err(SnapshotError::Corrupt(
            "sample references an out-of-range community",
        ));
    }
    // Thresholds above the community size are legal (such a community can
    // never activate — `ThresholdPolicy::Constant` does not clamp), so
    // only zero is structurally invalid.
    if threshold == 0 {
        return Err(SnapshotError::Corrupt("sample threshold is zero"));
    }
    Ok(())
}

/// Reads `n` strictly-ascending in-range node ids, appending to `out`.
fn read_nodes(
    cur: &mut Cursor<'_>,
    n: usize,
    node_count: u64,
    out: &mut Vec<NodeId>,
) -> Result<(), SnapshotError> {
    let mut prev: Option<u32> = None;
    for _ in 0..n {
        let v = cur.u32()?;
        if u64::from(v) >= node_count {
            return Err(SnapshotError::Corrupt("sample node id out of range"));
        }
        if prev.is_some_and(|p| p >= v) {
            return Err(SnapshotError::Corrupt(
                "sample nodes not strictly ascending",
            ));
        }
        prev = Some(v);
        out.push(NodeId::new(v));
    }
    Ok(())
}

/// Reads `n` cover sets of `community_size` bits, appending the limbs to
/// `out` and rejecting set bits beyond the community width.
fn read_covers(
    cur: &mut Cursor<'_>,
    n: usize,
    community_size: u32,
    out: &mut Vec<u64>,
) -> Result<(), SnapshotError> {
    let limbs = limbs_for(community_size);
    // Bits at positions >= community_size must be zero: they are
    // meaningless and would corrupt union popcounts.
    let used_in_top = community_size as usize - (limbs - 1) * 64;
    let top_mask = if used_in_top == 64 {
        u64::MAX
    } else {
        (1u64 << used_in_top) - 1
    };
    for _ in 0..n {
        let start = out.len();
        for _ in 0..limbs {
            out.push(cur.u64()?);
        }
        if out[start + limbs - 1] & !top_mask != 0 {
            return Err(SnapshotError::Corrupt(
                "cover set has bits beyond community size",
            ));
        }
    }
    Ok(())
}

/// Decodes snapshot bytes, validating magic, version, checksum and every
/// structural invariant. Accepts both the current columnar format and the
/// legacy row-major version 1.
///
/// # Errors
///
/// Any [`SnapshotError`] variant except `Io` and `FingerprintMismatch`
/// (fingerprints are checked by [`load_for_instance`], which knows the
/// expected value).
pub fn decode(bytes: &[u8]) -> Result<SnapshotData, SnapshotError> {
    if bytes.len() < MAGIC.len() + 1 {
        return Err(SnapshotError::Truncated);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = bytes[MAGIC.len()];
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(SnapshotError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
    let declared = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != declared {
        return Err(SnapshotError::ChecksumMismatch);
    }

    let mut cur = Cursor {
        bytes: body,
        pos: MAGIC.len() + 1,
    };
    let fingerprint = cur.u64()?;
    let node_count = cur.u64()?;
    let community_count = cur.u64()?;
    let total_benefit = f64::from_bits(cur.u64()?);
    let generation = cur.u64()?;
    let sample_count = cur.u64()?;

    if node_count > u64::from(u32::MAX) {
        return Err(SnapshotError::Corrupt("node count exceeds u32 range"));
    }
    if !total_benefit.is_finite() || total_benefit < 0.0 {
        return Err(SnapshotError::Corrupt(
            "total benefit is not a finite non-negative number",
        ));
    }
    // Each sample takes at least 16 body bytes, which bounds a plausible
    // count long before any allocation happens.
    if sample_count > (body.len() / 16) as u64 {
        return Err(SnapshotError::Corrupt(
            "sample count implies more data than the file holds",
        ));
    }

    let mut store = RicStore::new(node_count as usize, community_count as usize, total_benefit);
    match version {
        1 => decode_body_v1(
            &mut cur,
            &mut store,
            sample_count,
            community_count,
            node_count,
        )?,
        2 => decode_body_v2(
            &mut cur,
            &mut store,
            sample_count,
            community_count,
            node_count,
        )?,
        _ => unreachable!("version range checked above"),
    }
    if cur.pos != body.len() {
        return Err(SnapshotError::Corrupt("trailing bytes after last sample"));
    }
    store.rebuild_index();
    Ok(SnapshotData {
        collection: store,
        fingerprint,
        generation,
    })
}

/// Legacy row-major body: each sample's metadata, nodes and covers
/// interleaved.
fn decode_body_v1(
    cur: &mut Cursor<'_>,
    store: &mut RicStore,
    sample_count: u64,
    community_count: u64,
    node_count: u64,
) -> Result<(), SnapshotError> {
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut words: Vec<u64> = Vec::new();
    for _ in 0..sample_count {
        let community = cur.u32()?;
        let threshold = cur.u32()?;
        let community_size = cur.u32()?;
        let n = cur.u32()? as usize;
        check_meta(community, threshold, community_count)?;
        nodes.clear();
        words.clear();
        read_nodes(cur, n, node_count, &mut nodes)?;
        read_covers(cur, n, community_size, &mut words)?;
        store.push_raw(
            CommunityId::new(community),
            threshold,
            community_size,
            &nodes,
            &words,
        );
    }
    Ok(())
}

/// Columnar body: the metadata block, then the node block, then the cover
/// block.
fn decode_body_v2(
    cur: &mut Cursor<'_>,
    store: &mut RicStore,
    sample_count: u64,
    community_count: u64,
    node_count: u64,
) -> Result<(), SnapshotError> {
    let mut metas: Vec<(u32, u32, u32, usize)> = Vec::with_capacity(sample_count as usize);
    for _ in 0..sample_count {
        let community = cur.u32()?;
        let threshold = cur.u32()?;
        let community_size = cur.u32()?;
        let n = cur.u32()? as usize;
        check_meta(community, threshold, community_count)?;
        metas.push((community, threshold, community_size, n));
    }
    let mut flat_nodes: Vec<NodeId> = Vec::new();
    let mut node_offsets: Vec<usize> = Vec::with_capacity(metas.len() + 1);
    node_offsets.push(0);
    for &(_, _, _, n) in &metas {
        read_nodes(cur, n, node_count, &mut flat_nodes)?;
        node_offsets.push(flat_nodes.len());
    }
    let mut words: Vec<u64> = Vec::new();
    for (i, &(community, threshold, community_size, n)) in metas.iter().enumerate() {
        words.clear();
        read_covers(cur, n, community_size, &mut words)?;
        store.push_raw(
            CommunityId::new(community),
            threshold,
            community_size,
            &flat_nodes[node_offsets[i]..node_offsets[i + 1]],
            &words,
        );
    }
    Ok(())
}

/// Writes a snapshot to `path` (atomically where the filesystem allows:
/// write to `<path>.tmp`, then rename over the destination).
///
/// # Errors
///
/// [`SnapshotError::Io`] on filesystem failure.
pub fn save<C: RicSamples>(
    path: &Path,
    collection: &C,
    fingerprint: u64,
    generation: u64,
) -> Result<(), SnapshotError> {
    let bytes = encode(collection, fingerprint, generation);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and decodes a snapshot from `path` without fingerprint checking.
///
/// # Errors
///
/// Any [`SnapshotError`] except `FingerprintMismatch`.
pub fn load(path: &Path) -> Result<SnapshotData, SnapshotError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes)
}

/// Reads a snapshot and verifies it was sampled from `instance`'s exact
/// graph and community structure.
///
/// # Errors
///
/// [`SnapshotError::FingerprintMismatch`] when the snapshot came from a
/// different instance, plus every error [`load`] can raise.
pub fn load_for_instance(
    path: &Path,
    instance: &crate::ImcInstance,
) -> Result<SnapshotData, SnapshotError> {
    let expected = instance_fingerprint(instance.graph(), instance.communities());
    let data = load(path)?;
    if data.fingerprint != expected {
        return Err(SnapshotError::FingerprintMismatch {
            expected,
            found: data.fingerprint,
        });
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, RicCollection, RicSample, RicSampler};
    use imc_community::CommunitySet;
    use imc_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_collection() -> (Graph, CommunitySet, RicStore) {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(3, 4, 0.9).unwrap();
        let g = b.build().unwrap();
        let cs = CommunitySet::from_parts(
            6,
            vec![
                (vec![NodeId::new(1), NodeId::new(2)], 1, 2.0),
                (vec![NodeId::new(4), NodeId::new(5)], 2, 3.0),
            ],
        )
        .unwrap();
        let sampler = RicSampler::new(&g, &cs);
        let mut col = RicStore::for_sampler(&sampler);
        col.extend_with(&sampler, 200, &mut StdRng::seed_from_u64(11));
        (g, cs, col)
    }

    /// Writes the legacy row-major version-1 byte format, reproducing the
    /// pre-columnar encoder for compatibility tests.
    fn encode_v1<C: RicSamples>(collection: &C, fingerprint: u64, generation: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(1u8);
        out.extend_from_slice(&fingerprint.to_le_bytes());
        out.extend_from_slice(&(collection.node_count() as u64).to_le_bytes());
        out.extend_from_slice(&(collection.community_count() as u64).to_le_bytes());
        out.extend_from_slice(&collection.total_benefit().to_bits().to_le_bytes());
        out.extend_from_slice(&generation.to_le_bytes());
        out.extend_from_slice(&(collection.len() as u64).to_le_bytes());
        for si in 0..collection.len() {
            out.extend_from_slice(&collection.sample_community(si).raw().to_le_bytes());
            out.extend_from_slice(&collection.sample_threshold(si).to_le_bytes());
            out.extend_from_slice(&collection.sample_width(si).to_le_bytes());
            let nodes = collection.sample_nodes(si);
            out.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
            for &v in nodes {
                out.extend_from_slice(&v.raw().to_le_bytes());
            }
            for pos in 0..nodes.len() {
                for &w in collection.cover_words(si, pos) {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    #[test]
    fn round_trip_preserves_samples_and_header() {
        let (g, cs, col) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        let bytes = encode(&col, fp, 7);
        let data = decode(&bytes).unwrap();
        assert_eq!(data.fingerprint, fp);
        assert_eq!(data.generation, 7);
        assert_eq!(data.collection, col);
        // Rebuilt inverted index answers identically.
        for v in 0..6 {
            assert_eq!(
                data.collection.touched_by(NodeId::new(v)),
                col.touched_by(NodeId::new(v))
            );
        }
    }

    #[test]
    fn v1_row_major_bytes_decode_identically() {
        let (g, cs, col) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        let old = decode(&encode_v1(&col, fp, 5)).unwrap();
        let new = decode(&encode(&col, fp, 5)).unwrap();
        assert_eq!(old.fingerprint, new.fingerprint);
        assert_eq!(old.generation, 5);
        assert_eq!(old.collection, new.collection);
        assert_eq!(old.collection, col);
    }

    #[test]
    fn legacy_collection_backend_encodes_identically() {
        // `encode` over a `RicCollection` must produce the same bytes as
        // over the equivalent `RicStore` — the trait accessors hide the
        // backend entirely.
        let (g, cs, col) = tiny_collection();
        let legacy: RicCollection = col.to_collection();
        let fp = instance_fingerprint(&g, &cs);
        assert_eq!(encode(&legacy, fp, 9), encode(&col, fp, 9));
    }

    #[test]
    fn estimates_survive_round_trip() {
        let (g, cs, col) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        let data = decode(&encode(&col, fp, 0)).unwrap();
        for seeds in [vec![NodeId::new(0)], vec![NodeId::new(0), NodeId::new(3)]] {
            assert_eq!(data.collection.estimate(&seeds), col.estimate(&seeds));
            assert_eq!(data.collection.nu_estimate(&seeds), col.nu_estimate(&seeds));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let (g, cs, col) = tiny_collection();
        let mut bytes = encode(&col, instance_fingerprint(&g, &cs), 0);
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn future_version_rejected() {
        let (g, cs, col) = tiny_collection();
        let mut bytes = encode(&col, instance_fingerprint(&g, &cs), 0);
        bytes[7] = FORMAT_VERSION + 1;
        assert!(matches!(
            decode(&bytes),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        bytes[7] = 0;
        assert!(matches!(
            decode(&bytes),
            Err(SnapshotError::UnsupportedVersion(0))
        ));
    }

    #[test]
    fn every_truncation_point_rejected() {
        let (g, cs, col) = tiny_collection();
        let bytes = encode(&col, instance_fingerprint(&g, &cs), 0);
        // Cutting anywhere must fail loudly — never yield a collection.
        for cut in [
            0,
            3,
            8,
            HEADER_LEN - 1,
            HEADER_LEN,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn bit_flip_anywhere_is_caught_by_checksum() {
        let (g, cs, col) = tiny_collection();
        let bytes = encode(&col, instance_fingerprint(&g, &cs), 0);
        for &at in &[8usize, 20, HEADER_LEN + 3, bytes.len() - 12] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at {at} accepted");
        }
    }

    #[test]
    fn fingerprint_mismatch_detected() {
        let (g, cs, col) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        let dir = std::env::temp_dir().join(format!("imc-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.snap");
        save(&path, &col, fp ^ 1, 0).unwrap();
        let inst = crate::ImcInstance::new(g, cs).unwrap();
        assert!(matches!(
            load_for_instance(&path, &inst),
            Err(SnapshotError::FingerprintMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_load_file_round_trip() {
        let (g, cs, col) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        let dir = std::env::temp_dir().join(format!("imc-snap-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("col.snap");
        save(&path, &col, fp, 3).unwrap();
        let inst = crate::ImcInstance::new(g, cs).unwrap();
        let data = load_for_instance(&path, &inst).unwrap();
        assert_eq!(data.generation, 3);
        assert_eq!(data.collection, col);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_sensitive_to_structure() {
        let (g, cs, _) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        // Different weight → different fingerprint.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0.7).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(3, 4, 0.9).unwrap();
        let g2 = b.build().unwrap();
        assert_ne!(fp, instance_fingerprint(&g2, &cs));
        // Different threshold → different fingerprint.
        let cs2 = CommunitySet::from_parts(
            6,
            vec![
                (vec![NodeId::new(1), NodeId::new(2)], 2, 2.0),
                (vec![NodeId::new(4), NodeId::new(5)], 2, 3.0),
            ],
        )
        .unwrap();
        assert_ne!(fp, instance_fingerprint(&g, &cs2));
    }

    #[test]
    fn corrupt_structural_fields_rejected_with_fixed_checksum() {
        // Rewrites a field, then re-stamps the checksum, so the structural
        // validator (not the checksum) must catch it. The first sample's
        // community/threshold sit at the same offsets in both format
        // versions (v2's metadata block starts where v1's first sample
        // did).
        let (g, cs, col) = tiny_collection();
        let restamp = |mut b: Vec<u8>| {
            let n = b.len();
            let sum = fnv1a(&b[..n - 8]);
            b[n - 8..].copy_from_slice(&sum.to_le_bytes());
            b
        };
        let bytes = encode(&col, instance_fingerprint(&g, &cs), 0);
        // Out-of-range community id in the first sample.
        let mut bad = bytes.clone();
        bad[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode(&restamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));
        // Zero threshold.
        let mut bad = bytes.clone();
        bad[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode(&restamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));
        // Absurd sample count.
        let mut bad = bytes.clone();
        bad[48..56].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode(&restamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn threshold_above_community_size_round_trips() {
        // `ThresholdPolicy::Constant` does not clamp, so a singleton
        // community with the default threshold 2 is a legal sample.
        let mut col = RicCollection::new(3, 1, 1.0);
        let mut cover = CoverSet::new(1);
        cover.set(0);
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 2,
            community_size: 1,
            nodes: vec![NodeId::new(2)],
            covers: vec![cover],
        });
        let decoded = decode(&encode(&col, 7, 0)).unwrap();
        assert_eq!(decoded.collection, RicStore::from_collection(&col).unwrap());
    }

    #[test]
    fn large_cover_sets_round_trip() {
        // Hand-build a collection whose community is wider than 64 members.
        let width = 130u32;
        let mut col = RicCollection::new(4, 1, 1.0);
        let mut c0 = CoverSet::new(width as usize);
        c0.set(0);
        c0.set(64);
        c0.set(129);
        let mut c1 = CoverSet::new(width as usize);
        c1.set(70);
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 2,
            community_size: width,
            nodes: vec![NodeId::new(1), NodeId::new(3)],
            covers: vec![c0, c1],
        });
        let data = decode(&encode(&col, 42, 1)).unwrap();
        assert_eq!(data.collection, RicStore::from_collection(&col).unwrap());
    }
}
