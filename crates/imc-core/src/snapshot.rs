//! Persistent snapshot store for RIC sample collections.
//!
//! IMCAF-generated sample collections are expensive (each RIC sample is a
//! reverse BFS over a live-edge realization), but they are pure data: a
//! collection sampled once can serve any number of `solve`/`estimate`
//! queries later. This module serializes a collection — together with a
//! fingerprint of the graph + community structure it was sampled from — to
//! a versioned, checksummed, std-only binary format, so a warm index can
//! cold-start from disk instead of regenerating samples.
//!
//! # Format (version 3, all integers little-endian)
//!
//! Version 3 is an offset-based, alignment-padded columnar layout: a
//! 64-byte header, a 9-entry section table, then one 8-byte-aligned
//! section per [`RicStore`] column — **including the CSR inverted
//! node→(sample, pos) index**, so decoding never rebuilds it. Because
//! every section is stored exactly as the arena holds it in memory, the
//! columns can also be *borrowed* straight out of an 8-byte-aligned byte
//! buffer (a memory-mapped file or a [`SnapshotBytes`]) through
//! [`RicStoreView`] — cold-starting a multi-GB store in the time it takes
//! to validate `O(samples + nodes)` offsets rather than parse the file.
//!
//! ```text
//! offset  size  field
//! 0       7     magic "IMCSNAP"
//! 7       1     format version (= 3)
//! 8       8     instance fingerprint (FNV-1a, see [`instance_fingerprint`])
//! 16      8     node_count        (u64)
//! 24      8     community_count   (u64)
//! 32      8     total_benefit     (f64 bits)
//! 40      8     generation        (u64, snapshot publisher's counter)
//! 48      8     sample_count S    (u64)
//! 56      8     index entries N   (u64, = Σ_g |g|)
//! 64      144   section table: 9 × { offset (u64), byte_len (u64) }
//! ...           sections 0–8, each 8-byte aligned, zero padding between:
//!                 0 communities    S × u32      4 nodes        N × u32
//!                 1 thresholds     S × u32      5 cover_offsets (S+1) × u64
//!                 2 widths         S × u32      6 cover_words  W × u64
//!                 3 node_offsets   (S+1) × u64  7 index_offsets (node_count+1) × u64
//!                                               8 index_entries N × {sample u32, pos u32}
//! end-8   8     FNV-1a checksum over every preceding byte
//! ```
//!
//! Version-2 files (columnar without the section table or the persisted
//! index) and version-1 files (row-major) are still decoded transparently;
//! [`encode`] always writes version 3, and [`upgrade`] rewrites any
//! readable snapshot as version 3. See `docs/FORMATS.md` for the
//! byte-level specification of all three versions, the alignment rules,
//! and a worked hexdump.
//!
//! Decoding validates the magic, version, checksum and every structural
//! invariant (sorted in-range nodes, in-range community ids, zero padding
//! bits, and for v3 that the persisted inverted index is *exactly* the one
//! [`RicStore`] would rebuild) before reconstructing the collection, so a
//! truncated or corrupted file is rejected rather than producing a
//! silently wrong index. [`RicStoreView::open`] intentionally skips the
//! checksum and the `O(file)` walk — that is what makes it near-zero-cost —
//! and [`RicStoreView::verify`] performs them on demand; open views only
//! over snapshot files you trust (ones this process or its deploy pipeline
//! wrote).

use crate::collection::SampleRef;
use crate::{RicSamples, RicStore};
use imc_community::{CommunityId, CommunitySet};
use imc_graph::{Graph, NodeId};
use std::fmt;
use std::path::Path;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: &[u8; 7] = b"IMCSNAP";
/// Format version written by [`encode`].
pub const FORMAT_VERSION: u8 = 3;
/// Oldest format version [`decode`] still reads.
pub const MIN_FORMAT_VERSION: u8 = 1;

/// Header length shared by the legacy versions 1 and 2.
const HEADER_LEN: usize = 7 + 1 + 8 * 6;
/// Version-3 header: the legacy header plus the index entry count.
const HEADER_LEN_V3: usize = HEADER_LEN + 8;
/// Number of column sections in a version-3 file.
const SECTION_COUNT: usize = 9;
/// First byte after the version-3 section table (= 208, 8-aligned).
const SECTIONS_START: usize = HEADER_LEN_V3 + SECTION_COUNT * 16;
const CHECKSUM_LEN: usize = 8;

/// Rounds `n` up to the next multiple of 8 — the section alignment.
const fn align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Errors raised while reading or writing snapshots.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version byte is not one this build understands.
    UnsupportedVersion(u8),
    /// The file ends before the declared content does.
    Truncated,
    /// The trailing checksum does not match the content.
    ChecksumMismatch,
    /// A structural invariant is violated; the message says which.
    Corrupt(&'static str),
    /// The snapshot was sampled from a different graph/community structure.
    FingerprintMismatch {
        /// Fingerprint of the instance the caller is loading for.
        expected: u64,
        /// Fingerprint recorded in the snapshot file.
        found: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (this build reads {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch (file corrupted)"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot is corrupt: {what}"),
            SnapshotError::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot fingerprint {found:#018x} does not match instance fingerprint {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// A decoded snapshot: the collection plus the provenance recorded with it.
#[derive(Debug, Clone)]
pub struct SnapshotData {
    /// The reconstructed sample collection (inverted index rebuilt).
    pub collection: RicStore,
    /// Fingerprint of the instance the samples were drawn from.
    pub fingerprint: u64,
    /// Generation counter the publisher stamped (0 for CLI-produced files).
    pub generation: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher (std-only, stable across platforms).
#[derive(Debug, Clone)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a hash of a byte slice — exposed for tests and the wire protocol.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Deterministic fingerprint of an IMC instance: node count, the full
/// weighted edge list, and every community's members/threshold/benefit.
///
/// Two instances fingerprint equal iff a sample collection drawn from one
/// is valid for the other, so snapshot loading can refuse a collection
/// sampled from a different graph or community structure.
pub fn instance_fingerprint(graph: &Graph, communities: &CommunitySet) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(graph.node_count() as u64);
    h.write_u64(graph.edge_count() as u64);
    for e in graph.edges() {
        h.write_u32(e.source.raw());
        h.write_u32(e.target.raw());
        h.write_u64(e.weight.to_bits());
    }
    h.write_u64(communities.len() as u64);
    for c in communities.iter() {
        h.write_u32(c.threshold);
        h.write_u64(c.benefit.to_bits());
        h.write_u64(c.members.len() as u64);
        for &m in &c.members {
            h.write_u32(m.raw());
        }
    }
    h.finish()
}

/// Number of `u64` limbs a cover set of `width` bits serializes to.
fn limbs_for(width: u32) -> usize {
    (width as usize).div_ceil(64).max(1)
}

/// The one audited escape hatch from the crate-wide `deny(unsafe_code)`:
/// reinterpreting 8-byte-aligned little-endian snapshot bytes as the typed
/// columns they store, and a `u64` arena as raw bytes. Every cast checks
/// alignment at runtime (`align_to` with an empty prefix/suffix) rather
/// than assuming it, and is only instantiated at types whose every bit
/// pattern is a valid value: `u32`, `u64`, `NodeId`
/// (`repr(transparent)` over `u32`) and `SampleRef` (`repr(C)`, two
/// consecutive `u32`s, no padding).
#[allow(unsafe_code)]
mod cast {
    use crate::collection::SampleRef;
    use imc_graph::NodeId;

    /// Reinterprets `bytes` as a slice of `T`, or `None` when the pointer
    /// is misaligned for `T` or the length is not a multiple of its size.
    ///
    /// Private on purpose: callers below instantiate it only at the four
    /// plain-old-data types listed in the module doc.
    fn typed<T>(bytes: &[u8]) -> Option<&[T]> {
        if !bytes.len().is_multiple_of(size_of::<T>()) {
            return None;
        }
        // SAFETY: `align_to` splits at alignment boundaries; demanding an
        // empty prefix and suffix proves the whole slice is aligned and
        // sized for `T`. The only `T`s used are plain-old-data types with
        // no invalid bit patterns (see module doc), so reading them from
        // arbitrary initialized bytes is sound.
        let (prefix, mid, suffix) = unsafe { bytes.align_to::<T>() };
        if prefix.is_empty() && suffix.is_empty() {
            Some(mid)
        } else {
            None
        }
    }

    pub(super) fn u32s(bytes: &[u8]) -> Option<&[u32]> {
        typed(bytes)
    }

    pub(super) fn u64s(bytes: &[u8]) -> Option<&[u64]> {
        typed(bytes)
    }

    pub(super) fn node_ids(bytes: &[u8]) -> Option<&[NodeId]> {
        typed(bytes)
    }

    pub(super) fn sample_refs(bytes: &[u8]) -> Option<&[SampleRef]> {
        typed(bytes)
    }

    /// Views a `u64` arena as bytes (for writing a buffer to disk).
    pub(super) fn u64s_as_bytes(words: &[u64]) -> &[u8] {
        // SAFETY: every byte of an initialized `u64` slice is initialized,
        // `u8` has alignment 1, and the length cannot overflow `isize`
        // (the source allocation already exists).
        unsafe { std::slice::from_raw_parts(words.as_ptr().cast(), words.len() * 8) }
    }

    /// Mutable byte view of a `u64` arena (for copying a file into it).
    pub(super) fn u64s_as_bytes_mut(words: &mut [u64]) -> &mut [u8] {
        // SAFETY: as above; writing any bytes through the view leaves the
        // `u64`s initialized, and the mutable borrow is exclusive.
        unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast(), words.len() * 8) }
    }
}

fn put_u32(out: &mut [u8], at: usize, v: u32) {
    out[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut [u8], at: usize, v: u64) {
    out[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

/// Encodes a collection (either storage backend) into the current
/// version-3 sectioned snapshot format.
///
/// The inverted index is persisted (sections 7–8) in exactly the order
/// [`RicStore`] rebuilds it — per node, `(sample, pos)` ascending — so
/// decoding adopts it verbatim instead of re-deriving it, and
/// [`RicStoreView`] can serve `touched_by` straight from the file bytes.
pub fn encode<C: RicSamples>(collection: &C, fingerprint: u64, generation: u64) -> Vec<u8> {
    let s = collection.len();
    let node_count = collection.node_count();
    let mut n_total = 0usize; // Σ_g |g| = node-section and index-entry count
    let mut w_total = 0usize; // total cover limbs
    for si in 0..s {
        let n = collection.sample_nodes(si).len();
        n_total += n;
        w_total += n * limbs_for(collection.sample_width(si));
    }
    let lens: [usize; SECTION_COUNT] = [
        s * 4,                // 0 communities
        s * 4,                // 1 thresholds
        s * 4,                // 2 widths
        (s + 1) * 8,          // 3 node_offsets
        n_total * 4,          // 4 nodes
        (s + 1) * 8,          // 5 cover_offsets
        w_total * 8,          // 6 cover_words
        (node_count + 1) * 8, // 7 index_offsets
        n_total * 8,          // 8 index_entries
    ];
    let mut offsets = [0usize; SECTION_COUNT];
    let mut cursor = SECTIONS_START;
    for (o, &len) in offsets.iter_mut().zip(&lens) {
        *o = cursor;
        cursor = align8(cursor + len);
    }
    let mut out = vec![0u8; cursor];
    out[..MAGIC.len()].copy_from_slice(MAGIC);
    out[MAGIC.len()] = FORMAT_VERSION;
    let header = [
        fingerprint,
        node_count as u64,
        collection.community_count() as u64,
        collection.total_benefit().to_bits(),
        generation,
        s as u64,
        n_total as u64,
    ];
    for (i, &v) in header.iter().enumerate() {
        put_u64(&mut out, 8 + i * 8, v);
    }
    for i in 0..SECTION_COUNT {
        put_u64(&mut out, HEADER_LEN_V3 + i * 16, offsets[i] as u64);
        put_u64(&mut out, HEADER_LEN_V3 + i * 16 + 8, lens[i] as u64);
    }
    // Sections 0–2: per-sample metadata columns.
    for si in 0..s {
        put_u32(
            &mut out,
            offsets[0] + si * 4,
            collection.sample_community(si).raw(),
        );
        put_u32(
            &mut out,
            offsets[1] + si * 4,
            collection.sample_threshold(si),
        );
        put_u32(&mut out, offsets[2] + si * 4, collection.sample_width(si));
    }
    // Sections 3–6: the CSR node arena and cover limbs.
    let mut node_off = 0u64;
    let mut limb_off = 0u64;
    let mut node_at = offsets[4];
    let mut word_at = offsets[6];
    for si in 0..s {
        put_u64(&mut out, offsets[3] + si * 8, node_off);
        put_u64(&mut out, offsets[5] + si * 8, limb_off);
        let nodes = collection.sample_nodes(si);
        for &v in nodes {
            put_u32(&mut out, node_at, v.raw());
            node_at += 4;
        }
        for pos in 0..nodes.len() {
            for &w in collection.cover_words(si, pos) {
                put_u64(&mut out, word_at, w);
                word_at += 8;
            }
        }
        node_off += nodes.len() as u64;
        limb_off += (nodes.len() * limbs_for(collection.sample_width(si))) as u64;
    }
    put_u64(&mut out, offsets[3] + s * 8, node_off);
    put_u64(&mut out, offsets[5] + s * 8, limb_off);
    // Sections 7–8: the persisted inverted index.
    let mut entry_off = 0u64;
    let mut entry_at = offsets[8];
    for v in 0..node_count {
        put_u64(&mut out, offsets[7] + v * 8, entry_off);
        let refs = collection.touched_by(NodeId::new(v as u32));
        for r in refs {
            put_u32(&mut out, entry_at, r.sample);
            put_u32(&mut out, entry_at + 4, r.pos);
            entry_at += 8;
        }
        entry_off += refs.len() as u64;
    }
    put_u64(&mut out, offsets[7] + node_count * 8, entry_off);
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Encodes the legacy version-2 columnar byte format.
///
/// Kept public so the upgrade matrix stays testable (and so fixtures for
/// older deployments can still be produced); [`encode`] always writes the
/// current version 3.
pub fn encode_v2<C: RicSamples>(collection: &C, fingerprint: u64, generation: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 64 * collection.len() + CHECKSUM_LEN);
    out.extend_from_slice(MAGIC);
    out.push(2u8);
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(collection.node_count() as u64).to_le_bytes());
    out.extend_from_slice(&(collection.community_count() as u64).to_le_bytes());
    out.extend_from_slice(&collection.total_benefit().to_bits().to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(collection.len() as u64).to_le_bytes());
    for si in 0..collection.len() {
        out.extend_from_slice(&collection.sample_community(si).raw().to_le_bytes());
        out.extend_from_slice(&collection.sample_threshold(si).to_le_bytes());
        out.extend_from_slice(&collection.sample_width(si).to_le_bytes());
        out.extend_from_slice(&(collection.sample_nodes(si).len() as u32).to_le_bytes());
    }
    for si in 0..collection.len() {
        for &v in collection.sample_nodes(si) {
            out.extend_from_slice(&v.raw().to_le_bytes());
        }
    }
    for si in 0..collection.len() {
        for pos in 0..collection.sample_nodes(si).len() {
            for &w in collection.cover_words(si, pos) {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Bounds-checked little-endian reader over the snapshot body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Validates a sample's metadata fields shared by both format versions.
fn check_meta(community: u32, threshold: u32, community_count: u64) -> Result<(), SnapshotError> {
    if u64::from(community) >= community_count {
        return Err(SnapshotError::Corrupt(
            "sample references an out-of-range community",
        ));
    }
    // Thresholds above the community size are legal (such a community can
    // never activate — `ThresholdPolicy::Constant` does not clamp), so
    // only zero is structurally invalid.
    if threshold == 0 {
        return Err(SnapshotError::Corrupt("sample threshold is zero"));
    }
    Ok(())
}

/// Reads `n` strictly-ascending in-range node ids, appending to `out`.
fn read_nodes(
    cur: &mut Cursor<'_>,
    n: usize,
    node_count: u64,
    out: &mut Vec<NodeId>,
) -> Result<(), SnapshotError> {
    let mut prev: Option<u32> = None;
    for _ in 0..n {
        let v = cur.u32()?;
        if u64::from(v) >= node_count {
            return Err(SnapshotError::Corrupt("sample node id out of range"));
        }
        if prev.is_some_and(|p| p >= v) {
            return Err(SnapshotError::Corrupt(
                "sample nodes not strictly ascending",
            ));
        }
        prev = Some(v);
        out.push(NodeId::new(v));
    }
    Ok(())
}

/// Reads `n` cover sets of `community_size` bits, appending the limbs to
/// `out` and rejecting set bits beyond the community width.
fn read_covers(
    cur: &mut Cursor<'_>,
    n: usize,
    community_size: u32,
    out: &mut Vec<u64>,
) -> Result<(), SnapshotError> {
    let limbs = limbs_for(community_size);
    // Bits at positions >= community_size must be zero: they are
    // meaningless and would corrupt union popcounts.
    let used_in_top = community_size as usize - (limbs - 1) * 64;
    let top_mask = if used_in_top == 64 {
        u64::MAX
    } else {
        (1u64 << used_in_top) - 1
    };
    for _ in 0..n {
        let start = out.len();
        for _ in 0..limbs {
            out.push(cur.u64()?);
        }
        if out[start + limbs - 1] & !top_mask != 0 {
            return Err(SnapshotError::Corrupt(
                "cover set has bits beyond community size",
            ));
        }
    }
    Ok(())
}

/// Decodes snapshot bytes, validating magic, version, checksum and every
/// structural invariant. Accepts the current sectioned version 3, the
/// columnar version 2 and the legacy row-major version 1.
///
/// Version-3 input skips the inverted-index rebuild entirely: the
/// persisted index is validated to be exactly what
/// `RicStore::rebuild_index` would produce, then adopted verbatim.
///
/// # Errors
///
/// Any [`SnapshotError`] variant except `Io` and `FingerprintMismatch`
/// (fingerprints are checked by [`load_for_instance`], which knows the
/// expected value).
pub fn decode(bytes: &[u8]) -> Result<SnapshotData, SnapshotError> {
    if bytes.len() < MAGIC.len() + 1 {
        return Err(SnapshotError::Truncated);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = bytes[MAGIC.len()];
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    if version == 3 {
        return decode_v3(bytes);
    }
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(SnapshotError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
    let declared = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != declared {
        return Err(SnapshotError::ChecksumMismatch);
    }

    let mut cur = Cursor {
        bytes: body,
        pos: MAGIC.len() + 1,
    };
    let fingerprint = cur.u64()?;
    let node_count = cur.u64()?;
    let community_count = cur.u64()?;
    let total_benefit = f64::from_bits(cur.u64()?);
    let generation = cur.u64()?;
    let sample_count = cur.u64()?;

    if node_count > u64::from(u32::MAX) {
        return Err(SnapshotError::Corrupt("node count exceeds u32 range"));
    }
    if !total_benefit.is_finite() || total_benefit < 0.0 {
        return Err(SnapshotError::Corrupt(
            "total benefit is not a finite non-negative number",
        ));
    }
    // Each sample takes at least 16 body bytes, which bounds a plausible
    // count long before any allocation happens.
    if sample_count > (body.len() / 16) as u64 {
        return Err(SnapshotError::Corrupt(
            "sample count implies more data than the file holds",
        ));
    }

    let mut store = RicStore::new(node_count as usize, community_count as usize, total_benefit);
    match version {
        1 => decode_body_v1(
            &mut cur,
            &mut store,
            sample_count,
            community_count,
            node_count,
        )?,
        2 => decode_body_v2(
            &mut cur,
            &mut store,
            sample_count,
            community_count,
            node_count,
        )?,
        _ => unreachable!("version range checked above"),
    }
    if cur.pos != body.len() {
        return Err(SnapshotError::Corrupt("trailing bytes after last sample"));
    }
    store.rebuild_index();
    Ok(SnapshotData {
        collection: store,
        fingerprint,
        generation,
    })
}

/// Legacy row-major body: each sample's metadata, nodes and covers
/// interleaved.
fn decode_body_v1(
    cur: &mut Cursor<'_>,
    store: &mut RicStore,
    sample_count: u64,
    community_count: u64,
    node_count: u64,
) -> Result<(), SnapshotError> {
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut words: Vec<u64> = Vec::new();
    for _ in 0..sample_count {
        let community = cur.u32()?;
        let threshold = cur.u32()?;
        let community_size = cur.u32()?;
        let n = cur.u32()? as usize;
        check_meta(community, threshold, community_count)?;
        nodes.clear();
        words.clear();
        read_nodes(cur, n, node_count, &mut nodes)?;
        read_covers(cur, n, community_size, &mut words)?;
        store.push_raw(
            CommunityId::new(community),
            threshold,
            community_size,
            &nodes,
            &words,
        );
    }
    Ok(())
}

/// Columnar body: the metadata block, then the node block, then the cover
/// block.
fn decode_body_v2(
    cur: &mut Cursor<'_>,
    store: &mut RicStore,
    sample_count: u64,
    community_count: u64,
    node_count: u64,
) -> Result<(), SnapshotError> {
    let mut metas: Vec<(u32, u32, u32, usize)> = Vec::with_capacity(sample_count as usize);
    for _ in 0..sample_count {
        let community = cur.u32()?;
        let threshold = cur.u32()?;
        let community_size = cur.u32()?;
        let n = cur.u32()? as usize;
        check_meta(community, threshold, community_count)?;
        metas.push((community, threshold, community_size, n));
    }
    let mut flat_nodes: Vec<NodeId> = Vec::new();
    let mut node_offsets: Vec<usize> = Vec::with_capacity(metas.len() + 1);
    node_offsets.push(0);
    for &(_, _, _, n) in &metas {
        read_nodes(cur, n, node_count, &mut flat_nodes)?;
        node_offsets.push(flat_nodes.len());
    }
    let mut words: Vec<u64> = Vec::new();
    for (i, &(community, threshold, community_size, n)) in metas.iter().enumerate() {
        words.clear();
        read_covers(cur, n, community_size, &mut words)?;
        store.push_raw(
            CommunityId::new(community),
            threshold,
            community_size,
            &flat_nodes[node_offsets[i]..node_offsets[i + 1]],
            &words,
        );
    }
    Ok(())
}

/// Decodes a version-3 file: open a view, verify it fully, then copy the
/// columns into an owned [`RicStore`] — no index rebuild.
fn decode_v3(bytes: &[u8]) -> Result<SnapshotData, SnapshotError> {
    if (bytes.as_ptr() as usize).is_multiple_of(8) {
        decode_v3_aligned(bytes)
    } else {
        // `std::fs::read` makes no alignment promise; copy into an
        // 8-aligned arena so the typed casts apply.
        let owned = SnapshotBytes::copy_from(bytes);
        decode_v3_aligned(owned.as_bytes())
    }
}

fn decode_v3_aligned(bytes: &[u8]) -> Result<SnapshotData, SnapshotError> {
    let view = RicStoreView::open_verified(bytes)?;
    Ok(SnapshotData {
        fingerprint: view.fingerprint(),
        generation: view.generation(),
        collection: view.to_store(),
    })
}

/// Zero-copy read-only view of a version-3 snapshot.
///
/// Every [`RicStore`] column — metadata, CSR node lists, cover limbs and
/// the inverted index — is borrowed directly from the underlying byte
/// buffer, so "loading" a snapshot is an `O(samples + nodes)` validation
/// pass with no parsing, no allocation proportional to the file, and no
/// index rebuild. The view implements [`RicSamples`], so estimators and
/// MAXR solvers run on it exactly as on an owned store.
///
/// The buffer must be 8-byte aligned (a page-aligned memory map qualifies,
/// as does [`SnapshotBytes`]) and the host little-endian; [`open`](Self::open)
/// rejects both violations.
///
/// # Trust model
///
/// [`open`](Self::open) validates the header, section table and every CSR
/// offset array — enough to guarantee that all slicing the view performs
/// is in bounds — but deliberately skips the checksum and the `O(file)`
/// content walk; that skip is what makes opening near-zero-cost. A file
/// with corrupt *index entries* can therefore make an accessor panic
/// (bounds-checked) or return wrong data, but never touch memory outside
/// the buffer. Call [`open_verified`](Self::open_verified) (or
/// [`verify`](Self::verify)) for untrusted bytes; plain `open` is for
/// snapshots this process or its deploy pipeline wrote.
///
/// ```
/// use imc_core::snapshot::{self, RicStoreView, SnapshotBytes};
/// use imc_core::{CoverSet, RicSample, RicSamples, RicStore};
/// use imc_community::CommunityId;
/// use imc_graph::NodeId;
///
/// let mut cover = CoverSet::new(2);
/// cover.set(0);
/// let sample = RicSample {
///     community: CommunityId::new(0),
///     threshold: 1,
///     community_size: 2,
///     nodes: vec![NodeId::new(1)],
///     covers: vec![cover],
/// };
/// let store = RicStore::from_samples(4, 1, 1.0, [&sample]).unwrap();
///
/// // In production the bytes would come from an mmap'd snapshot file;
/// // `SnapshotBytes` provides the same 8-byte-aligned buffer in memory.
/// let bytes = SnapshotBytes::copy_from(&snapshot::encode(&store, 0xFEED, 1));
/// let view = RicStoreView::open(bytes.as_bytes()).unwrap();
/// assert_eq!(view.fingerprint(), 0xFEED);
/// assert_eq!(view.len(), store.len());
/// let seeds = [NodeId::new(1)];
/// assert_eq!(view.estimate(&seeds), store.estimate(&seeds));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RicStoreView<'a> {
    raw: &'a [u8],
    fingerprint: u64,
    generation: u64,
    node_count: usize,
    community_count: usize,
    total_benefit: f64,
    communities: &'a [u32],
    thresholds: &'a [u32],
    widths: &'a [u32],
    node_offsets: &'a [u64],
    nodes: &'a [NodeId],
    cover_offsets: &'a [u64],
    cover_words: &'a [u64],
    index_offsets: &'a [u64],
    index_entries: &'a [SampleRef],
}

impl<'a> RicStoreView<'a> {
    /// Opens a view over version-3 snapshot bytes with the cheap
    /// `O(samples + nodes)` structural validation described in the type
    /// docs. The checksum is *not* verified — see the trust model above.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`] / [`UnsupportedVersion`](SnapshotError::UnsupportedVersion)
    /// for non-v3 input, [`Truncated`](SnapshotError::Truncated) for short
    /// buffers, and [`Corrupt`](SnapshotError::Corrupt) for misalignment or
    /// any offset-table inconsistency.
    pub fn open(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        if !cfg!(target_endian = "little") {
            return Err(SnapshotError::Corrupt(
                "zero-copy snapshot views require a little-endian host",
            ));
        }
        if bytes.len() < MAGIC.len() + 1 {
            return Err(SnapshotError::Truncated);
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes[MAGIC.len()] != 3 {
            return Err(SnapshotError::UnsupportedVersion(bytes[MAGIC.len()]));
        }
        if !(bytes.as_ptr() as usize).is_multiple_of(8) {
            return Err(SnapshotError::Corrupt(
                "snapshot buffer is not 8-byte aligned (use SnapshotBytes or a page-aligned map)",
            ));
        }
        if !bytes.len().is_multiple_of(8) {
            return Err(SnapshotError::Corrupt(
                "snapshot length is not a multiple of 8",
            ));
        }
        if bytes.len() < SECTIONS_START + CHECKSUM_LEN {
            return Err(SnapshotError::Truncated);
        }
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let fingerprint = u64_at(8);
        let node_count64 = u64_at(16);
        let community_count = u64_at(24);
        let total_benefit = f64::from_bits(u64_at(32));
        let generation = u64_at(40);
        let sample_count = u64_at(48);
        let entry_count = u64_at(56);
        if node_count64 > u64::from(u32::MAX) {
            return Err(SnapshotError::Corrupt("node count exceeds u32 range"));
        }
        if !total_benefit.is_finite() || total_benefit < 0.0 {
            return Err(SnapshotError::Corrupt(
                "total benefit is not a finite non-negative number",
            ));
        }
        let body_len = (bytes.len() - CHECKSUM_LEN) as u64;
        // Coarse count bounds: every later `usize` length computation fits
        // without overflow once each count is at most the body length.
        if sample_count.saturating_mul(4) > body_len
            || entry_count.saturating_mul(4) > body_len
            || node_count64.saturating_mul(8) > body_len
        {
            return Err(SnapshotError::Corrupt(
                "header counts imply more data than the file holds",
            ));
        }
        let s = sample_count as usize;
        let n = entry_count as usize;
        let node_count = node_count64 as usize;
        let expected_lens: [Option<usize>; SECTION_COUNT] = [
            Some(s * 4),                // communities
            Some(s * 4),                // thresholds
            Some(s * 4),                // widths
            Some((s + 1) * 8),          // node_offsets
            Some(n * 4),                // nodes
            Some((s + 1) * 8),          // cover_offsets
            None,                       // cover_words: any multiple of 8
            Some((node_count + 1) * 8), // index_offsets
            Some(n * 8),                // index_entries
        ];
        let mut offs = [0usize; SECTION_COUNT];
        let mut lens = [0usize; SECTION_COUNT];
        let mut at = SECTIONS_START;
        for i in 0..SECTION_COUNT {
            let off = u64_at(HEADER_LEN_V3 + i * 16);
            let len = u64_at(HEADER_LEN_V3 + i * 16 + 8);
            if off > body_len || len > body_len - off {
                return Err(SnapshotError::Truncated);
            }
            // Sections must sit exactly where the canonical writer puts
            // them: back to back from SECTIONS_START, each aligned up to 8.
            if off as usize != at {
                return Err(SnapshotError::Corrupt(
                    "section table offsets are not canonical",
                ));
            }
            match expected_lens[i] {
                Some(want) if len as usize != want => {
                    return Err(SnapshotError::Corrupt(
                        "section length disagrees with header counts",
                    ));
                }
                None if len % 8 != 0 => {
                    return Err(SnapshotError::Corrupt(
                        "cover-words section length is not a multiple of 8",
                    ));
                }
                _ => {}
            }
            offs[i] = off as usize;
            lens[i] = len as usize;
            at = align8(at + len as usize);
        }
        if at as u64 != body_len {
            return Err(SnapshotError::Corrupt("trailing bytes after last section"));
        }
        let sec = |i: usize| &bytes[offs[i]..offs[i] + lens[i]];
        const MISALIGNED: SnapshotError =
            SnapshotError::Corrupt("section not aligned for its element type");
        let view = RicStoreView {
            raw: bytes,
            fingerprint,
            generation,
            node_count,
            community_count: community_count as usize,
            total_benefit,
            communities: cast::u32s(sec(0)).ok_or(MISALIGNED)?,
            thresholds: cast::u32s(sec(1)).ok_or(MISALIGNED)?,
            widths: cast::u32s(sec(2)).ok_or(MISALIGNED)?,
            node_offsets: cast::u64s(sec(3)).ok_or(MISALIGNED)?,
            nodes: cast::node_ids(sec(4)).ok_or(MISALIGNED)?,
            cover_offsets: cast::u64s(sec(5)).ok_or(MISALIGNED)?,
            cover_words: cast::u64s(sec(6)).ok_or(MISALIGNED)?,
            index_offsets: cast::u64s(sec(7)).ok_or(MISALIGNED)?,
            index_entries: cast::sample_refs(sec(8)).ok_or(MISALIGNED)?,
        };
        // CSR offset validation — after this every slice the accessors
        // take is in bounds: node/cover offsets are monotone and span
        // their sections, and cover offsets agree with each sample's node
        // count × limb width.
        if view.node_offsets.first() != Some(&0) || view.node_offsets.last() != Some(&entry_count) {
            return Err(SnapshotError::Corrupt(
                "node offsets do not span the node section",
            ));
        }
        let w_total = (lens[6] / 8) as u64;
        if view.cover_offsets.first() != Some(&0) || view.cover_offsets.last() != Some(&w_total) {
            return Err(SnapshotError::Corrupt(
                "cover offsets do not span the cover-words section",
            ));
        }
        for si in 0..s {
            let n_si = view.node_offsets[si + 1]
                .checked_sub(view.node_offsets[si])
                .ok_or(SnapshotError::Corrupt("node offsets are not monotone"))?;
            let limbs = limbs_for(view.widths[si]) as u64;
            if view.cover_offsets[si + 1]
                != view.cover_offsets[si].saturating_add(n_si.saturating_mul(limbs))
            {
                return Err(SnapshotError::Corrupt(
                    "cover offsets disagree with node counts and widths",
                ));
            }
            check_meta(view.communities[si], view.thresholds[si], community_count)?;
        }
        if view.index_offsets.first() != Some(&0) || view.index_offsets.last() != Some(&entry_count)
        {
            return Err(SnapshotError::Corrupt(
                "index offsets do not span the entry section",
            ));
        }
        let mut prev = 0u64;
        for &o in view.index_offsets {
            if o < prev {
                return Err(SnapshotError::Corrupt("index offsets are not monotone"));
            }
            prev = o;
        }
        Ok(view)
    }

    /// Opens a view and immediately runs the full [`verify`](Self::verify)
    /// pass (checksum + complete structural walk) — for untrusted bytes.
    pub fn open_verified(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        let view = Self::open(bytes)?;
        view.verify()?;
        Ok(view)
    }

    /// Verifies everything [`open`](Self::open) skipped: the trailing
    /// checksum, per-sample node ordering and range, cover padding bits,
    /// and that the persisted inverted index is *exactly* the one
    /// `RicStore::rebuild_index` would produce.
    ///
    /// The index proof is by bijection: every persisted entry under node
    /// `v` is checked to point back at `v` (so each per-node list is a
    /// subset of the true one), per-node lists are strictly ascending (so
    /// entries are distinct), and the offsets already force the total
    /// entry count to equal the node-arena length — subsets of equal total
    /// size must be equal.
    pub fn verify(&self) -> Result<(), SnapshotError> {
        let (body, tail) = self.raw.split_at(self.raw.len() - CHECKSUM_LEN);
        let declared = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if fnv1a(body) != declared {
            return Err(SnapshotError::ChecksumMismatch);
        }
        for si in 0..self.communities.len() {
            let nodes = self.sample_nodes(si);
            let mut prev: Option<u32> = None;
            for v in nodes {
                let v = v.raw();
                if v as usize >= self.node_count {
                    return Err(SnapshotError::Corrupt("sample node id out of range"));
                }
                if prev.is_some_and(|p| p >= v) {
                    return Err(SnapshotError::Corrupt(
                        "sample nodes not strictly ascending",
                    ));
                }
                prev = Some(v);
            }
            let width = self.widths[si];
            let limbs = limbs_for(width);
            let used_in_top = width as usize - (limbs - 1) * 64;
            let top_mask = if used_in_top == 64 {
                u64::MAX
            } else {
                (1u64 << used_in_top) - 1
            };
            for pos in 0..nodes.len() {
                let words = self.cover_words(si, pos);
                if words[limbs - 1] & !top_mask != 0 {
                    return Err(SnapshotError::Corrupt(
                        "cover set has bits beyond community size",
                    ));
                }
            }
        }
        let s = self.communities.len();
        for v in 0..self.node_count {
            let lo = self.index_offsets[v] as usize;
            let hi = self.index_offsets[v + 1] as usize;
            let mut prev: Option<(u32, u32)> = None;
            for r in &self.index_entries[lo..hi] {
                let si = r.sample as usize;
                if si >= s {
                    return Err(SnapshotError::Corrupt(
                        "index entry references an out-of-range sample",
                    ));
                }
                let start = self.node_offsets[si] as usize;
                let n_si = self.node_offsets[si + 1] as usize - start;
                if r.pos as usize >= n_si {
                    return Err(SnapshotError::Corrupt("index entry position out of range"));
                }
                if self.nodes[start + r.pos as usize].raw() != v as u32 {
                    return Err(SnapshotError::Corrupt(
                        "index entry does not point back at its node",
                    ));
                }
                if prev.is_some_and(|p| p >= (r.sample, r.pos)) {
                    return Err(SnapshotError::Corrupt(
                        "index entries not strictly ascending",
                    ));
                }
                prev = Some((r.sample, r.pos));
            }
        }
        Ok(())
    }

    /// Fingerprint of the instance the samples were drawn from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Generation counter the publisher stamped.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The raw snapshot bytes this view borrows from.
    pub fn raw_bytes(&self) -> &'a [u8] {
        self.raw
    }

    /// Materializes an owned [`RicStore`] by copying the columns — no
    /// index rebuild, since the persisted index is adopted verbatim. Run
    /// [`verify`](Self::verify) first when the bytes are untrusted.
    pub fn to_store(&self) -> RicStore {
        RicStore::from_raw_columns(
            self.node_count,
            self.community_count,
            self.total_benefit,
            self.communities
                .iter()
                .map(|&c| CommunityId::new(c))
                .collect(),
            self.thresholds.to_vec(),
            self.widths.to_vec(),
            self.node_offsets.iter().map(|&o| o as usize).collect(),
            self.nodes.to_vec(),
            self.cover_offsets.iter().map(|&o| o as usize).collect(),
            self.cover_words.to_vec(),
            self.index_offsets.iter().map(|&o| o as usize).collect(),
            self.index_entries.to_vec(),
        )
    }
}

impl RicSamples for RicStoreView<'_> {
    fn len(&self) -> usize {
        self.communities.len()
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn community_count(&self) -> usize {
        self.community_count
    }

    fn total_benefit(&self) -> f64 {
        self.total_benefit
    }

    fn sample_community(&self, si: usize) -> CommunityId {
        CommunityId::new(self.communities[si])
    }

    fn sample_threshold(&self, si: usize) -> u32 {
        self.thresholds[si]
    }

    fn sample_width(&self, si: usize) -> u32 {
        self.widths[si]
    }

    fn sample_nodes(&self, si: usize) -> &[NodeId] {
        &self.nodes[self.node_offsets[si] as usize..self.node_offsets[si + 1] as usize]
    }

    fn cover_words(&self, si: usize, pos: usize) -> &[u64] {
        let limbs = limbs_for(self.widths[si]);
        let start = self.cover_offsets[si] as usize + pos * limbs;
        &self.cover_words[start..start + limbs]
    }

    fn touched_by(&self, v: NodeId) -> &[SampleRef] {
        &self.index_entries
            [self.index_offsets[v.index()] as usize..self.index_offsets[v.index() + 1] as usize]
    }
}

/// Owned snapshot bytes in an 8-byte-aligned arena.
///
/// `Vec<u8>` (what [`std::fs::read`] returns) makes no alignment promise,
/// and [`RicStoreView`] needs its buffer 8-byte aligned to reinterpret the
/// `u64` sections in place. `SnapshotBytes` stores the file in a `u64`
/// arena, guaranteeing alignment without platform mmap code.
#[derive(Debug, Clone)]
pub struct SnapshotBytes {
    words: Box<[u64]>,
    len: usize,
}

impl SnapshotBytes {
    /// Copies `bytes` into a fresh 8-aligned arena.
    pub fn copy_from(bytes: &[u8]) -> Self {
        let mut words = vec![0u64; bytes.len().div_ceil(8)].into_boxed_slice();
        cast::u64s_as_bytes_mut(&mut words)[..bytes.len()].copy_from_slice(bytes);
        SnapshotBytes {
            words,
            len: bytes.len(),
        }
    }

    /// Reads a file into an aligned arena.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    pub fn read_from(path: &Path) -> Result<Self, SnapshotError> {
        Ok(Self::copy_from(&std::fs::read(path)?))
    }

    /// The stored bytes (8-byte aligned, original length).
    pub fn as_bytes(&self) -> &[u8] {
        &cast::u64s_as_bytes(&self.words)[..self.len]
    }

    /// Opens a [`RicStoreView`] over the stored bytes.
    ///
    /// # Errors
    ///
    /// Everything [`RicStoreView::open`] can raise.
    pub fn view(&self) -> Result<RicStoreView<'_>, SnapshotError> {
        RicStoreView::open(self.as_bytes())
    }
}

/// Rewrites any readable snapshot as the current version 3, preserving the
/// recorded fingerprint and generation. Upgrading an already-v3 snapshot
/// is a validated fixpoint: the output bytes equal the input bytes.
///
/// ```
/// use imc_core::snapshot::{self, FORMAT_VERSION};
/// use imc_core::{CoverSet, RicSample, RicStore};
/// use imc_community::CommunityId;
/// use imc_graph::NodeId;
///
/// let mut cover = CoverSet::new(2);
/// cover.set(1);
/// let sample = RicSample {
///     community: CommunityId::new(0),
///     threshold: 1,
///     community_size: 2,
///     nodes: vec![NodeId::new(0)],
///     covers: vec![cover],
/// };
/// let store = RicStore::from_samples(2, 1, 1.0, [&sample]).unwrap();
///
/// let old = snapshot::encode_v2(&store, 42, 5);
/// assert_eq!(old[7], 2);
/// let new = snapshot::upgrade(&old).unwrap();
/// assert_eq!(new[7], FORMAT_VERSION);
/// let data = snapshot::decode(&new).unwrap();
/// assert_eq!((data.fingerprint, data.generation), (42, 5));
/// assert_eq!(data.collection, store);
/// // Upgrading is idempotent: v3 input re-encodes to identical bytes.
/// assert_eq!(snapshot::upgrade(&new).unwrap(), new);
/// ```
///
/// # Errors
///
/// Everything [`decode`] can raise.
pub fn upgrade(bytes: &[u8]) -> Result<Vec<u8>, SnapshotError> {
    let data = decode(bytes)?;
    Ok(encode(&data.collection, data.fingerprint, data.generation))
}

/// Writes a snapshot to `path` (atomically where the filesystem allows:
/// write to `<path>.tmp`, then rename over the destination).
///
/// # Errors
///
/// [`SnapshotError::Io`] on filesystem failure.
pub fn save<C: RicSamples>(
    path: &Path,
    collection: &C,
    fingerprint: u64,
    generation: u64,
) -> Result<(), SnapshotError> {
    let bytes = encode(collection, fingerprint, generation);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and decodes a snapshot from `path` without fingerprint checking.
///
/// # Errors
///
/// Any [`SnapshotError`] except `FingerprintMismatch`.
pub fn load(path: &Path) -> Result<SnapshotData, SnapshotError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes)
}

/// Reads a snapshot and verifies it was sampled from `instance`'s exact
/// graph and community structure.
///
/// # Errors
///
/// [`SnapshotError::FingerprintMismatch`] when the snapshot came from a
/// different instance, plus every error [`load`] can raise.
pub fn load_for_instance(
    path: &Path,
    instance: &crate::ImcInstance,
) -> Result<SnapshotData, SnapshotError> {
    let expected = instance_fingerprint(instance.graph(), instance.communities());
    let data = load(path)?;
    if data.fingerprint != expected {
        return Err(SnapshotError::FingerprintMismatch {
            expected,
            found: data.fingerprint,
        });
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, RicCollection, RicSample, RicSampler};
    use imc_community::CommunitySet;
    use imc_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_collection() -> (Graph, CommunitySet, RicStore) {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(3, 4, 0.9).unwrap();
        let g = b.build().unwrap();
        let cs = CommunitySet::from_parts(
            6,
            vec![
                (vec![NodeId::new(1), NodeId::new(2)], 1, 2.0),
                (vec![NodeId::new(4), NodeId::new(5)], 2, 3.0),
            ],
        )
        .unwrap();
        let sampler = RicSampler::new(&g, &cs);
        let mut col = RicStore::for_sampler(&sampler);
        col.extend_with(&sampler, 200, &mut StdRng::seed_from_u64(11));
        (g, cs, col)
    }

    /// Writes the legacy row-major version-1 byte format, reproducing the
    /// pre-columnar encoder for compatibility tests.
    fn encode_v1<C: RicSamples>(collection: &C, fingerprint: u64, generation: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(1u8);
        out.extend_from_slice(&fingerprint.to_le_bytes());
        out.extend_from_slice(&(collection.node_count() as u64).to_le_bytes());
        out.extend_from_slice(&(collection.community_count() as u64).to_le_bytes());
        out.extend_from_slice(&collection.total_benefit().to_bits().to_le_bytes());
        out.extend_from_slice(&generation.to_le_bytes());
        out.extend_from_slice(&(collection.len() as u64).to_le_bytes());
        for si in 0..collection.len() {
            out.extend_from_slice(&collection.sample_community(si).raw().to_le_bytes());
            out.extend_from_slice(&collection.sample_threshold(si).to_le_bytes());
            out.extend_from_slice(&collection.sample_width(si).to_le_bytes());
            let nodes = collection.sample_nodes(si);
            out.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
            for &v in nodes {
                out.extend_from_slice(&v.raw().to_le_bytes());
            }
            for pos in 0..nodes.len() {
                for &w in collection.cover_words(si, pos) {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    #[test]
    fn round_trip_preserves_samples_and_header() {
        let (g, cs, col) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        let bytes = encode(&col, fp, 7);
        let data = decode(&bytes).unwrap();
        assert_eq!(data.fingerprint, fp);
        assert_eq!(data.generation, 7);
        assert_eq!(data.collection, col);
        // Rebuilt inverted index answers identically.
        for v in 0..6 {
            assert_eq!(
                data.collection.touched_by(NodeId::new(v)),
                col.touched_by(NodeId::new(v))
            );
        }
    }

    #[test]
    fn v1_row_major_bytes_decode_identically() {
        let (g, cs, col) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        let old = decode(&encode_v1(&col, fp, 5)).unwrap();
        let new = decode(&encode(&col, fp, 5)).unwrap();
        assert_eq!(old.fingerprint, new.fingerprint);
        assert_eq!(old.generation, 5);
        assert_eq!(old.collection, new.collection);
        assert_eq!(old.collection, col);
    }

    #[test]
    fn legacy_collection_backend_encodes_identically() {
        // `encode` over a `RicCollection` must produce the same bytes as
        // over the equivalent `RicStore` — the trait accessors hide the
        // backend entirely.
        let (g, cs, col) = tiny_collection();
        let legacy: RicCollection = col.to_collection();
        let fp = instance_fingerprint(&g, &cs);
        assert_eq!(encode(&legacy, fp, 9), encode(&col, fp, 9));
    }

    #[test]
    fn estimates_survive_round_trip() {
        let (g, cs, col) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        let data = decode(&encode(&col, fp, 0)).unwrap();
        for seeds in [vec![NodeId::new(0)], vec![NodeId::new(0), NodeId::new(3)]] {
            assert_eq!(data.collection.estimate(&seeds), col.estimate(&seeds));
            assert_eq!(data.collection.nu_estimate(&seeds), col.nu_estimate(&seeds));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let (g, cs, col) = tiny_collection();
        let mut bytes = encode(&col, instance_fingerprint(&g, &cs), 0);
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn future_version_rejected() {
        let (g, cs, col) = tiny_collection();
        let mut bytes = encode(&col, instance_fingerprint(&g, &cs), 0);
        bytes[7] = FORMAT_VERSION + 1;
        assert!(matches!(
            decode(&bytes),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        bytes[7] = 0;
        assert!(matches!(
            decode(&bytes),
            Err(SnapshotError::UnsupportedVersion(0))
        ));
    }

    #[test]
    fn every_truncation_point_rejected() {
        let (g, cs, col) = tiny_collection();
        let bytes = encode(&col, instance_fingerprint(&g, &cs), 0);
        // Cutting anywhere must fail loudly — never yield a collection.
        for cut in [
            0,
            3,
            8,
            HEADER_LEN - 1,
            HEADER_LEN,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn bit_flip_anywhere_is_caught_by_checksum() {
        let (g, cs, col) = tiny_collection();
        let bytes = encode(&col, instance_fingerprint(&g, &cs), 0);
        for &at in &[8usize, 20, HEADER_LEN + 3, bytes.len() - 12] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at {at} accepted");
        }
    }

    #[test]
    fn fingerprint_mismatch_detected() {
        let (g, cs, col) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        let dir = std::env::temp_dir().join(format!("imc-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.snap");
        save(&path, &col, fp ^ 1, 0).unwrap();
        let inst = crate::ImcInstance::new(g, cs).unwrap();
        assert!(matches!(
            load_for_instance(&path, &inst),
            Err(SnapshotError::FingerprintMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_load_file_round_trip() {
        let (g, cs, col) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        let dir = std::env::temp_dir().join(format!("imc-snap-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("col.snap");
        save(&path, &col, fp, 3).unwrap();
        let inst = crate::ImcInstance::new(g, cs).unwrap();
        let data = load_for_instance(&path, &inst).unwrap();
        assert_eq!(data.generation, 3);
        assert_eq!(data.collection, col);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_sensitive_to_structure() {
        let (g, cs, _) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        // Different weight → different fingerprint.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0.7).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(3, 4, 0.9).unwrap();
        let g2 = b.build().unwrap();
        assert_ne!(fp, instance_fingerprint(&g2, &cs));
        // Different threshold → different fingerprint.
        let cs2 = CommunitySet::from_parts(
            6,
            vec![
                (vec![NodeId::new(1), NodeId::new(2)], 2, 2.0),
                (vec![NodeId::new(4), NodeId::new(5)], 2, 3.0),
            ],
        )
        .unwrap();
        assert_ne!(fp, instance_fingerprint(&g, &cs2));
    }

    /// Rewrites the trailing checksum so structural validators (not the
    /// checksum) must catch a deliberate corruption.
    fn restamp(mut b: Vec<u8>) -> Vec<u8> {
        let n = b.len();
        let sum = fnv1a(&b[..n - 8]);
        b[n - 8..].copy_from_slice(&sum.to_le_bytes());
        b
    }

    /// Reads section `i`'s (offset, byte_len) from a v3 file's table.
    fn v3_section(bytes: &[u8], i: usize) -> (usize, usize) {
        let at = HEADER_LEN_V3 + i * 16;
        let off = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
        (off as usize, len as usize)
    }

    #[test]
    fn corrupt_structural_fields_rejected_with_fixed_checksum() {
        // Legacy layouts: the first sample's community/threshold sit at the
        // same offsets in v1 and v2 (v2's metadata block starts where v1's
        // first sample did).
        let (g, cs, col) = tiny_collection();
        let bytes = encode_v2(&col, instance_fingerprint(&g, &cs), 0);
        // Out-of-range community id in the first sample.
        let mut bad = bytes.clone();
        bad[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode(&restamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));
        // Zero threshold.
        let mut bad = bytes.clone();
        bad[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode(&restamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));
        // Absurd sample count.
        let mut bad = bytes.clone();
        bad[48..56].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode(&restamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_v3_fields_rejected_with_fixed_checksum() {
        let (g, cs, col) = tiny_collection();
        let bytes = encode(&col, instance_fingerprint(&g, &cs), 0);
        // Out-of-range community id in the first sample (section 0).
        let (communities_off, _) = v3_section(&bytes, 0);
        let mut bad = bytes.clone();
        bad[communities_off..communities_off + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode(&restamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));
        // Zero threshold (section 1).
        let (thresholds_off, _) = v3_section(&bytes, 1);
        let mut bad = bytes.clone();
        bad[thresholds_off..thresholds_off + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode(&restamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));
        // Absurd sample count breaks the section-length cross-check.
        let mut bad = bytes.clone();
        bad[48..56].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode(&restamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));
        // Non-canonical section offset.
        let mut bad = bytes.clone();
        let (off0, _) = v3_section(&bytes, 0);
        bad[HEADER_LEN_V3..HEADER_LEN_V3 + 8].copy_from_slice(&((off0 + 8) as u64).to_le_bytes());
        assert!(matches!(
            decode(&restamp(bad)),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_v3_index_rejected_by_bijection_check() {
        let (g, cs, col) = tiny_collection();
        let bytes = encode(&col, instance_fingerprint(&g, &cs), 0);
        let (entries_off, entries_len) = v3_section(&bytes, 8);
        assert!(entries_len >= 16, "fixture should have several entries");
        // Swap the first entry's sample for the second entry's: the entry
        // no longer points back at its node (or breaks ordering) — either
        // way the bijection walk must reject it even with a valid checksum.
        let mut bad = bytes.clone();
        bad.copy_within(entries_off + 8..entries_off + 16, entries_off);
        let bad = restamp(bad);
        assert!(matches!(decode(&bad), Err(SnapshotError::Corrupt(_))));
        // The cheap open() accepts it (offsets are untouched)...
        let arena = SnapshotBytes::copy_from(&bad);
        assert!(arena.view().is_ok());
        // ...and verify() is what catches it.
        assert!(matches!(
            arena.view().unwrap().verify(),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn view_matches_owned_store_everywhere() {
        let (g, cs, col) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        let arena = SnapshotBytes::copy_from(&encode(&col, fp, 2));
        let view = RicStoreView::open_verified(arena.as_bytes()).unwrap();
        assert_eq!(view.fingerprint(), fp);
        assert_eq!(view.generation(), 2);
        assert_eq!(view.len(), col.len());
        assert_eq!(view.node_count(), col.node_count());
        assert_eq!(view.community_count(), col.community_count());
        assert_eq!(
            view.total_benefit().to_bits(),
            col.total_benefit().to_bits()
        );
        for si in 0..col.len() {
            assert_eq!(view.sample_community(si), col.sample_community(si));
            assert_eq!(view.sample_threshold(si), col.sample_threshold(si));
            assert_eq!(view.sample_width(si), col.sample_width(si));
            assert_eq!(view.sample_nodes(si), col.sample_nodes(si));
            for pos in 0..col.sample_nodes(si).len() {
                assert_eq!(view.cover_words(si, pos), col.cover_words(si, pos));
            }
        }
        for v in 0..6 {
            assert_eq!(
                view.touched_by(NodeId::new(v)),
                col.touched_by(NodeId::new(v))
            );
        }
        // Estimators are bitwise identical through the trait.
        for seeds in [
            vec![],
            vec![NodeId::new(1)],
            vec![NodeId::new(0), NodeId::new(3)],
        ] {
            assert_eq!(
                view.estimate(&seeds).to_bits(),
                col.estimate(&seeds).to_bits()
            );
            assert_eq!(
                view.nu_estimate(&seeds).to_bits(),
                col.nu_estimate(&seeds).to_bits()
            );
        }
        // Materializing copies the persisted index verbatim.
        assert_eq!(view.to_store(), col);
    }

    #[test]
    fn view_rejects_misaligned_buffers() {
        let (g, cs, col) = tiny_collection();
        let bytes = encode(&col, instance_fingerprint(&g, &cs), 0);
        // Prepend one byte so the snapshot starts at an odd address.
        let mut shifted = vec![0u8; 1];
        shifted.extend_from_slice(&bytes);
        assert!(matches!(
            RicStoreView::open(&shifted[1..]),
            Err(SnapshotError::Corrupt(_))
        ));
        // The owned decode path copies into an aligned arena and succeeds.
        assert_eq!(decode(&shifted[1..]).unwrap().collection, col);
    }

    #[test]
    fn v3_encode_is_a_decode_fixpoint() {
        // decode(encode(x)) re-encodes to the identical bytes: the basis of
        // the fixture bitwise-stability guarantee and of `upgrade`'s
        // idempotence.
        let (g, cs, col) = tiny_collection();
        let bytes = encode(&col, instance_fingerprint(&g, &cs), 4);
        let data = decode(&bytes).unwrap();
        assert_eq!(
            encode(&data.collection, data.fingerprint, data.generation),
            bytes
        );
    }

    #[test]
    fn upgrade_lifts_v1_and_v2_to_identical_v3_bytes() {
        let (g, cs, col) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        let v1 = encode_v1(&col, fp, 6);
        let v2 = encode_v2(&col, fp, 6);
        let v3 = encode(&col, fp, 6);
        assert_eq!(upgrade(&v1).unwrap(), v3);
        assert_eq!(upgrade(&v2).unwrap(), v3);
        assert_eq!(upgrade(&v3).unwrap(), v3);
    }

    #[test]
    fn v2_columnar_bytes_decode_identically() {
        let (g, cs, col) = tiny_collection();
        let fp = instance_fingerprint(&g, &cs);
        let old = decode(&encode_v2(&col, fp, 5)).unwrap();
        assert_eq!(old.fingerprint, fp);
        assert_eq!(old.generation, 5);
        assert_eq!(old.collection, col);
    }

    #[test]
    fn empty_collection_round_trips_through_v3() {
        let col = RicStore::new(3, 2, 5.0);
        let bytes = encode(&col, 1, 0);
        let data = decode(&bytes).unwrap();
        assert_eq!(data.collection, col);
        let arena = SnapshotBytes::copy_from(&bytes);
        let view = arena.view().unwrap();
        assert_eq!(view.len(), 0);
        assert!(view.is_empty());
        assert_eq!(view.estimate(&[NodeId::new(0)]), 0.0);
    }

    #[test]
    fn threshold_above_community_size_round_trips() {
        // `ThresholdPolicy::Constant` does not clamp, so a singleton
        // community with the default threshold 2 is a legal sample.
        let mut col = RicCollection::new(3, 1, 1.0);
        let mut cover = CoverSet::new(1);
        cover.set(0);
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 2,
            community_size: 1,
            nodes: vec![NodeId::new(2)],
            covers: vec![cover],
        });
        let decoded = decode(&encode(&col, 7, 0)).unwrap();
        assert_eq!(decoded.collection, RicStore::from_collection(&col).unwrap());
    }

    #[test]
    fn large_cover_sets_round_trip() {
        // Hand-build a collection whose community is wider than 64 members.
        let width = 130u32;
        let mut col = RicCollection::new(4, 1, 1.0);
        let mut c0 = CoverSet::new(width as usize);
        c0.set(0);
        c0.set(64);
        c0.set(129);
        let mut c1 = CoverSet::new(width as usize);
        c1.set(70);
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 2,
            community_size: width,
            nodes: vec![NodeId::new(1), NodeId::new(3)],
            covers: vec![c0, c1],
        });
        let data = decode(&encode(&col, 42, 1)).unwrap();
        assert_eq!(data.collection, RicStore::from_collection(&col).unwrap());
    }
}
