//! Empirical diagnostics for the shape of the MAXR objective.
//!
//! The paper's central structural claim is that `ĉ_R` is **neither
//! submodular nor supermodular** (Lemma 2 / Fig. 2). This module measures
//! that: it samples random triples `(S, v, w)` and classifies the marginal
//! pattern, quantifying *how* non-submodular a given instance is — the
//! quantity that governs when the UBG sandwich is tight (Fig. 8) and when
//! plain greedy is safe.

use crate::RicCollection;
use imc_graph::NodeId;
use rand::Rng;

/// Counts of marginal-gain patterns observed by [`probe_submodularity`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmodularityReport {
    /// Trials where `gain(v | S ∪ {w}) ≤ gain(v | S)` (submodular-like).
    pub diminishing: u64,
    /// Trials where `gain(v | S ∪ {w}) > gain(v | S)` — submodularity
    /// violations (supermodular behavior).
    pub increasing: u64,
    /// Trials skipped because `v ∈ S ∪ {w}` after sampling.
    pub skipped: u64,
}

impl SubmodularityReport {
    /// Total non-skipped trials.
    pub fn trials(&self) -> u64 {
        self.diminishing + self.increasing
    }

    /// Fraction of trials violating submodularity (0 when no trials ran).
    pub fn violation_rate(&self) -> f64 {
        let t = self.trials();
        if t == 0 {
            0.0
        } else {
            self.increasing as f64 / t as f64
        }
    }

    /// `true` when at least one violation was observed — a *certificate*
    /// that the objective is not submodular on this collection.
    pub fn is_non_submodular(&self) -> bool {
        self.increasing > 0
    }
}

/// Samples `trials` random triples `(S, v, w)` with `|S| ≤ max_base` and
/// compares `v`'s marginal before and after adding `w` to `S`.
///
/// Submodularity would require the marginal never to increase; every
/// `increasing` count is a concrete counterexample like the paper's
/// Fig. 2.
pub fn probe_submodularity<R: Rng + ?Sized>(
    collection: &RicCollection,
    max_base: usize,
    trials: u64,
    rng: &mut R,
) -> SubmodularityReport {
    let n = collection.node_count() as u32;
    let mut report = SubmodularityReport::default();
    if n < 2 || collection.is_empty() {
        return report;
    }
    for _ in 0..trials {
        let base_size = rng.random_range(0..=max_base);
        let mut base: Vec<NodeId> = (0..base_size)
            .map(|_| NodeId::new(rng.random_range(0..n)))
            .collect();
        base.sort();
        base.dedup();
        let v = NodeId::new(rng.random_range(0..n));
        let w = NodeId::new(rng.random_range(0..n));
        if v == w || base.contains(&v) || base.contains(&w) {
            report.skipped += 1;
            continue;
        }
        let s = collection.influenced_count(&base);
        let mut with_v = base.clone();
        with_v.push(v);
        let sv = collection.influenced_count(&with_v);
        let mut with_w = base.clone();
        with_w.push(w);
        let sw = collection.influenced_count(&with_w);
        let mut with_vw = with_w;
        with_vw.push(v);
        let svw = collection.influenced_count(&with_vw);
        let gain_before = sv - s;
        let gain_after = svw - sw;
        if gain_after > gain_before {
            report.increasing += 1;
        } else {
            report.diminishing += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, RicSample};
    use imc_community::CommunityId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mk(width: usize, bits: &[usize]) -> CoverSet {
        let mut c = CoverSet::new(width);
        for &b in bits {
            c.set(b);
        }
        c
    }

    /// The paper's Lemma 2 instance: one sample, two members, each covered
    /// only by itself — the canonical supermodular trap.
    fn lemma2_collection() -> RicCollection {
        let mut col = RicCollection::new(2, 1, 1.0);
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 2,
            community_size: 2,
            nodes: vec![NodeId::new(0), NodeId::new(1)],
            covers: vec![mk(2, &[0]), mk(2, &[1])],
        });
        col
    }

    #[test]
    fn lemma2_violation_detected() {
        let col = lemma2_collection();
        let mut rng = StdRng::seed_from_u64(1);
        let report = probe_submodularity(&col, 1, 500, &mut rng);
        assert!(report.is_non_submodular(), "{report:?}");
        assert!(report.violation_rate() > 0.0);
    }

    #[test]
    fn unit_thresholds_are_submodular() {
        // All h = 1: coverage is a union — genuinely submodular, so no
        // violations can appear.
        let mut col = RicCollection::new(3, 1, 1.0);
        for node in 0..3u32 {
            col.push(RicSample {
                community: CommunityId::new(0),
                threshold: 1,
                community_size: 1,
                nodes: vec![NodeId::new(node)],
                covers: vec![mk(1, &[0])],
            });
        }
        let mut rng = StdRng::seed_from_u64(2);
        let report = probe_submodularity(&col, 2, 2_000, &mut rng);
        assert!(!report.is_non_submodular(), "{report:?}");
        assert!(report.trials() > 0);
    }

    #[test]
    fn empty_collection_reports_nothing() {
        let col = RicCollection::new(5, 1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let report = probe_submodularity(&col, 2, 100, &mut rng);
        assert_eq!(report.trials(), 0);
        assert_eq!(report.violation_rate(), 0.0);
    }

    #[test]
    fn report_accounting_consistent() {
        let col = lemma2_collection();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 300;
        let report = probe_submodularity(&col, 1, trials, &mut rng);
        assert_eq!(
            report.diminishing + report.increasing + report.skipped,
            trials
        );
    }
}
