//! The shared solve engine: strategy-aware greedy selection over RIC
//! samples, combining CELF lazy evaluation with a deterministic scoped
//! thread pool for parallel marginal-gain evaluation.
//!
//! Every strategy returns **bitwise-identical seed sets**:
//!
//! * [`SolveStrategy::Sequential`] is the reference — a full re-scan of
//!   every candidate per round, exactly the paper's greedy loops.
//! * [`SolveStrategy::Lazy`] prunes evaluations with a priority queue.
//!   For the submodular `ν_R` (Lemma 3) this is classic CELF on cached
//!   gains. `ĉ_R` is **non-submodular** (Lemma 2), so cached gains are
//!   not upper bounds there; instead the queue is keyed by the node's
//!   *potential* — the number of still-uninfluenced samples it touches —
//!   which only shrinks as seeds are added and always dominates the
//!   gain. Both queues break ties toward the smaller [`NodeId`] and a
//!   round ends only when no queued entry can beat the verified best, so
//!   the pick equals the sequential argmax every round.
//! * [`SolveStrategy::Parallel`] evaluates queue batches on scoped worker
//!   threads. Work is split into fixed-width shards whose boundaries
//!   depend only on the item count, each shard's results are written back
//!   in shard order, and the argmax reduction runs over that fixed order
//!   under a total order on `(gain, node)` — so the outcome is identical
//!   for *any* thread count, including 1.

use crate::maxr::telemetry::{EngineTelemetry, IterationRecord, MapStats};
use crate::{CoverageState, RicSamples};
use imc_graph::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;
use std::time::Instant;

/// How a solver schedules marginal-gain evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveStrategy {
    /// Full re-scan of every candidate per round, single-threaded — the
    /// reference semantics every other strategy reproduces exactly.
    Sequential,
    /// CELF lazy evaluation, single-threaded (the default).
    #[default]
    Lazy,
    /// CELF lazy evaluation with gains computed on scoped worker threads.
    Parallel {
        /// Worker threads (clamped to ≥ 1; `1` behaves like [`Lazy`](Self::Lazy)).
        threads: usize,
    },
}

impl SolveStrategy {
    /// Number of evaluation threads this strategy uses.
    pub fn threads(self) -> usize {
        match self {
            SolveStrategy::Sequential | SolveStrategy::Lazy => 1,
            SolveStrategy::Parallel { threads } => threads.max(1),
        }
    }

    /// Stable label used in reports and the service protocol.
    pub fn label(self) -> &'static str {
        match self {
            SolveStrategy::Sequential => "sequential",
            SolveStrategy::Lazy => "lazy",
            SolveStrategy::Parallel { .. } => "parallel",
        }
    }

    /// The strategy a thread-count knob maps to: `Lazy` for ≤ 1 thread,
    /// `Parallel` otherwise.
    pub fn with_threads(threads: usize) -> Self {
        if threads > 1 {
            SolveStrategy::Parallel { threads }
        } else {
            SolveStrategy::Lazy
        }
    }
}

/// Outcome of one engine greedy run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedyRun {
    /// Selected seeds, in pick order, padded to exactly `min(k, n)`.
    pub seeds: Vec<NodeId>,
    /// Marginal-gain evaluations performed — the engine's work measure.
    /// Deterministic for a fixed strategy; lazy strategies report fewer.
    pub evaluations: u64,
}

/// Fixed shard width. Work is split into `⌈len/SHARD⌉` chunks whose
/// boundaries depend only on the item count — never on the thread count —
/// so the concatenated result equals the sequential map exactly.
const SHARD: usize = 256;

/// Below this many items the spawn overhead outweighs the parallelism and
/// the map runs inline.
const MIN_PARALLEL_ITEMS: usize = 192;

/// Maps `eval` over `0..len`, fanning shards out to `threads` scoped
/// workers, and returns the results in index order — bit-identical to
/// `(0..len).map(eval).collect()` for any thread count.
pub(crate) fn shard_map<T, F>(len: usize, threads: usize, eval: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    shard_map_stats(len, threads, eval).0
}

/// [`shard_map`] plus per-shard wall times and per-worker busy fractions
/// for the engine telemetry. The timing never influences the result: the
/// value vector stays bit-identical to the sequential map.
pub(crate) fn shard_map_stats<T, F>(len: usize, threads: usize, eval: F) -> (Vec<T>, MapStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    shard_map_chunks_stats(len, threads, |lo, hi| (lo..hi).map(&eval).collect())
}

/// Chunk-granular [`shard_map_stats`]: the closure computes the results
/// for a whole shard range `[lo, hi)` at once instead of one item at a
/// time. Shard boundaries and result order are identical to the per-item
/// map, so a chunk closure that evaluates its range in ascending order is
/// bit-identical to `shard_map_stats` — while paying closure dispatch once
/// per 256-candidate shard rather than once per candidate. This is how
/// [`LocalSource`] serves a whole CELF shard from one sweep of the
/// inverted index (see `docs/KERNELS.md`).
pub(crate) fn shard_map_chunks_stats<T, F>(
    len: usize,
    threads: usize,
    eval: F,
) -> (Vec<T>, MapStats)
where
    T: Send,
    F: Fn(usize, usize) -> Vec<T> + Sync,
{
    if threads <= 1 || len < MIN_PARALLEL_ITEMS {
        let start = Instant::now();
        let vals = eval(0, len);
        debug_assert_eq!(vals.len(), len, "chunk evaluator length mismatch");
        let stats = MapStats {
            shard_seconds: vec![start.elapsed().as_secs_f64()],
            busy_fractions: Vec::new(),
        };
        return (vals, stats);
    }
    let shards = len.div_ceil(SHARD);
    let workers = threads.min(shards);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Vec<T>, f64)>> = Mutex::new(Vec::with_capacity(shards));
    let busy: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(workers));
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut my_busy = 0.0;
                loop {
                    let s = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                    if s >= shards {
                        break;
                    }
                    let shard_start = Instant::now();
                    let lo = s * SHARD;
                    let hi = ((s + 1) * SHARD).min(len);
                    let vals = eval(lo, hi);
                    debug_assert_eq!(vals.len(), hi - lo, "chunk evaluator length mismatch");
                    let secs = shard_start.elapsed().as_secs_f64();
                    my_busy += secs;
                    collected
                        .lock()
                        .expect("shard results poisoned")
                        .push((s, vals, secs));
                }
                busy.lock().expect("busy seconds poisoned").push(my_busy);
            });
        }
    });
    let wall_secs = wall.elapsed().as_secs_f64().max(1e-12);
    let mut groups = collected.into_inner().expect("shard results poisoned");
    groups.sort_unstable_by_key(|&(s, _, _)| s);
    let mut out = Vec::with_capacity(len);
    let mut shard_seconds = Vec::with_capacity(groups.len());
    for (_, vals, secs) in groups {
        out.extend(vals);
        shard_seconds.push(secs);
    }
    let busy_fractions = busy
        .into_inner()
        .expect("busy seconds poisoned")
        .into_iter()
        .map(|b| (b / wall_secs).min(1.0))
        .collect();
    (
        out,
        MapStats {
            shard_seconds,
            busy_fractions,
        },
    )
}

/// Entries popped per evaluation batch: classic one-at-a-time CELF when
/// single-threaded, a thread-scaled batch when parallel. Evaluating a
/// slightly larger superset of candidates never changes the argmax.
fn batch_cap(threads: usize) -> usize {
    if threads <= 1 {
        1
    } else {
        threads * 64
    }
}

/// Within one popped batch, evaluations run in chunks of this many items
/// per worker thread; after each chunk the round's best-so-far is
/// re-checked against the cached keys of the still-unevaluated remainder.
const CHUNK_PER_THREAD: usize = 16;

/// Evaluation chunk width for the best-so-far re-check. Single-threaded
/// strategies already pop one entry at a time, so chunking is a no-op
/// there.
fn eval_chunk(threads: usize) -> usize {
    if threads <= 1 {
        1
    } else {
        threads * CHUNK_PER_THREAD
    }
}

/// A marginal-gain oracle the greedy loops run against.
///
/// The engine keeps the CELF queues, batching, tie-breaks and evaluation
/// accounting to itself; a source only answers gain queries against the
/// seed set committed so far. Two implementations exist:
///
/// * [`LocalSource`] — a [`CoverageState`] over an in-process
///   [`RicSamples`] backend, the classic single-node path;
/// * the scatter-gather coordinator in `imc-cluster`, which fans each
///   batch out to shard daemons owning disjoint partitions of the sample
///   store and reduces the partial answers.
///
/// Any source whose answers are bitwise equal to a [`LocalSource`] over
/// the concatenation of its data produces bitwise-identical seed sets
/// *and* evaluation counts, because all control flow lives in the engine.
pub trait GainSource {
    /// Node count of the underlying graph — the candidate id space.
    fn node_count(&self) -> usize;

    /// Number of samples node `v` appears in: the initial ĉ potential,
    /// the candidate filter, and the padding key.
    fn appearance_count(&self, v: u32) -> usize;

    /// `(gain, potential)` for each node of `nodes` under the current
    /// seed set — the ĉ_R marginal gain and the number of
    /// still-uninfluenced samples the node touches (see
    /// [`CoverageState::marginal_influenced_with_potential`]).
    fn eval_c_batch(&mut self, nodes: &[u32]) -> (Vec<(usize, usize)>, MapStats);

    /// ν_R marginal gain for each node of `nodes` under the current seed
    /// set (see [`CoverageState::marginal_fraction`]). Values must be
    /// bitwise-identical to a local evaluation over the full collection.
    fn eval_nu_batch(&mut self, nodes: &[u32]) -> (Vec<f64>, MapStats);

    /// Commits `v` as a seed; every later batch sees the updated state.
    fn add_seed(&mut self, v: u32);

    /// Pads `seeds` to `min(k, node_count)` with unused nodes, highest
    /// appearance count first, ties to the smallest id — the same rule as
    /// the single-node `pad_to_k`.
    fn pad_seeds(&self, seeds: &mut Vec<NodeId>, k: usize) {
        let k = k.min(self.node_count());
        if seeds.len() >= k {
            seeds.truncate(k);
            return;
        }
        let mut used = vec![false; self.node_count()];
        for s in seeds.iter() {
            used[s.index()] = true;
        }
        let mut rest: Vec<(usize, u32)> = (0..self.node_count() as u32)
            .filter(|&v| !used[v as usize])
            .map(|v| (self.appearance_count(v), v))
            .collect();
        // Highest appearance first; ties by smallest id for determinism.
        rest.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, v) in rest {
            if seeds.len() >= k {
                break;
            }
            seeds.push(NodeId::new(v));
        }
    }
}

/// [`GainSource`] over an in-process [`RicSamples`] backend: a
/// [`CoverageState`] plus the worker count used to fan each evaluation
/// batch out through the deterministic shard map.
#[derive(Debug)]
pub struct LocalSource<C: RicSamples> {
    state: CoverageState<C>,
    threads: usize,
}

impl<C: RicSamples> LocalSource<C> {
    /// Wraps `collection` (owned or borrowed — see [`CoverageState`]) for
    /// evaluation with `threads` workers per batch.
    pub fn new(collection: C, threads: usize) -> Self {
        LocalSource {
            state: CoverageState::new(collection),
            threads: threads.max(1),
        }
    }

    /// The coverage state accumulated so far.
    pub fn state(&self) -> &CoverageState<C> {
        &self.state
    }
}

impl<C: RicSamples> GainSource for LocalSource<C> {
    fn node_count(&self) -> usize {
        self.state.collection().node_count()
    }

    fn appearance_count(&self, v: u32) -> usize {
        self.state.collection().appearance_count(NodeId::new(v))
    }

    fn eval_c_batch(&mut self, nodes: &[u32]) -> (Vec<(usize, usize)>, MapStats) {
        let state = &self.state;
        shard_map_chunks_stats(nodes.len(), self.threads, |lo, hi| {
            let mut out = Vec::with_capacity(hi - lo);
            state.eval_c_shard(&nodes[lo..hi], &mut out);
            out
        })
    }

    fn eval_nu_batch(&mut self, nodes: &[u32]) -> (Vec<f64>, MapStats) {
        let state = &self.state;
        shard_map_chunks_stats(nodes.len(), self.threads, |lo, hi| {
            let mut out = Vec::with_capacity(hi - lo);
            state.eval_nu_shard(&nodes[lo..hi], &mut out);
            out
        })
    }

    fn add_seed(&mut self, v: u32) {
        self.state.add_seed(NodeId::new(v));
    }
}

/// Strategy-aware greedy on `ĉ_R` (the number of influenced samples).
///
/// All strategies return the seed set of the paper's plain re-evaluating
/// greedy: per round the argmax of the marginal gain, ties to the
/// smallest node id, stopping (then padding) once no gain is positive.
pub fn greedy_c_with<C: RicSamples>(
    collection: &C,
    k: usize,
    strategy: SolveStrategy,
) -> GreedyRun {
    greedy_c_with_telemetry(collection, k, strategy).0
}

/// [`greedy_c_with`] that also returns the run's [`EngineTelemetry`].
///
/// Either entry point publishes the telemetry into the `imc_engine_*`
/// metric families and the trace stream; this one additionally hands the
/// structured records back for benches and tests.
pub fn greedy_c_with_telemetry<C: RicSamples>(
    collection: &C,
    k: usize,
    strategy: SolveStrategy,
) -> (GreedyRun, EngineTelemetry) {
    let mut source = LocalSource::new(collection, strategy.threads());
    let (run, telemetry) = greedy_c_over(&mut source, k, strategy);
    telemetry.publish();
    (run, telemetry)
}

/// [`greedy_c_with`] over an arbitrary [`GainSource`] — the engine entry
/// point the cluster coordinator shares with the local solvers. Returns
/// the run and its telemetry *without* publishing; the caller decides
/// where the telemetry goes.
pub fn greedy_c_over<S: GainSource>(
    source: &mut S,
    k: usize,
    strategy: SolveStrategy,
) -> (GreedyRun, EngineTelemetry) {
    match strategy {
        SolveStrategy::Sequential => greedy_c_sequential(source, k),
        SolveStrategy::Lazy | SolveStrategy::Parallel { .. } => greedy_c_lazy(source, k, strategy),
    }
}

/// Strategy-aware CELF greedy on the submodular upper bound `ν_R`.
///
/// All strategies return the seed set of plain greedy on `ν_R`: per round
/// the argmax of the fractional gain under `f64::total_cmp`, ties to the
/// smallest node id, stopping once the best gain is ≤ `1e-15`.
pub fn greedy_nu_with<C: RicSamples>(
    collection: &C,
    k: usize,
    strategy: SolveStrategy,
) -> GreedyRun {
    greedy_nu_with_telemetry(collection, k, strategy).0
}

/// [`greedy_nu_with`] that also returns the run's [`EngineTelemetry`].
///
/// Either entry point publishes the telemetry into the `imc_engine_*`
/// metric families and the trace stream; this one additionally hands the
/// structured records back for benches and tests.
pub fn greedy_nu_with_telemetry<C: RicSamples>(
    collection: &C,
    k: usize,
    strategy: SolveStrategy,
) -> (GreedyRun, EngineTelemetry) {
    let mut source = LocalSource::new(collection, strategy.threads());
    let (run, telemetry) = greedy_nu_over(&mut source, k, strategy);
    telemetry.publish();
    (run, telemetry)
}

/// [`greedy_nu_with`] over an arbitrary [`GainSource`] — see
/// [`greedy_c_over`]. Telemetry is returned unpublished.
pub fn greedy_nu_over<S: GainSource>(
    source: &mut S,
    k: usize,
    strategy: SolveStrategy,
) -> (GreedyRun, EngineTelemetry) {
    match strategy {
        SolveStrategy::Sequential => greedy_nu_sequential(source, k),
        SolveStrategy::Lazy | SolveStrategy::Parallel { .. } => greedy_nu_lazy(source, k, strategy),
    }
}

fn greedy_c_sequential<S: GainSource>(source: &mut S, k: usize) -> (GreedyRun, EngineTelemetry) {
    let wall = Instant::now();
    let mut telemetry = EngineTelemetry::new("c_hat", "sequential", 1);
    let k = k.min(source.node_count());
    let candidates: Vec<u32> = (0..source.node_count() as u32)
        .filter(|&v| source.appearance_count(v) > 0)
        .collect();
    let mut used = vec![false; source.node_count()];
    let mut remaining = candidates.len();
    let mut seeds = Vec::with_capacity(k);
    let mut evaluations = 0u64;
    let mut alive: Vec<u32> = Vec::with_capacity(candidates.len());
    for round in 0..k {
        let round_start = Instant::now();
        let mut rec = IterationRecord::begin(round as u32, remaining);
        alive.clear();
        alive.extend(candidates.iter().copied().filter(|&v| !used[v as usize]));
        // One batch per round: the state is fixed within a round, so the
        // batched gains equal a per-candidate ascending scan exactly.
        let (gains, stats) = source.eval_c_batch(&alive);
        rec.absorb(&stats);
        telemetry.absorb(stats);
        evaluations += alive.len() as u64;
        rec.evaluations += alive.len() as u64;
        let mut best: Option<(usize, u32)> = None;
        for (&v, &(gain, _)) in alive.iter().zip(&gains) {
            let better = match best {
                None => gain > 0,
                Some((bg, bv)) => gain > bg || (gain == bg && gain > 0 && v < bv),
            };
            if better {
                best = Some((gain, v));
            }
        }
        rec.pops = rec.evaluations;
        match best {
            Some((gain, v)) => {
                source.add_seed(v);
                used[v as usize] = true;
                remaining -= 1;
                seeds.push(NodeId::new(v));
                rec.finish(gain as f64, true, round_start);
                telemetry.rounds.push(rec);
            }
            None => {
                rec.finish(0.0, false, round_start);
                telemetry.rounds.push(rec);
                break;
            }
        }
    }
    source.pad_seeds(&mut seeds, k);
    telemetry.wall_seconds = wall.elapsed().as_secs_f64();
    (GreedyRun { seeds, evaluations }, telemetry)
}

/// Lazy-queue entry for `ĉ_R`: keyed by the node's *potential* (samples it
/// touches that are not yet influenced), which upper-bounds every future
/// gain even though `ĉ_R` is non-submodular.
#[derive(Debug, PartialEq, Eq)]
struct UbEntry {
    ub: usize,
    node: u32,
}

impl Ord for UbEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.ub
            .cmp(&other.ub)
            .then_with(|| other.node.cmp(&self.node)) // prefer smaller id on tie
    }
}

impl PartialOrd for UbEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn greedy_c_lazy<S: GainSource>(
    source: &mut S,
    k: usize,
    strategy: SolveStrategy,
) -> (GreedyRun, EngineTelemetry) {
    let threads = strategy.threads();
    let wall = Instant::now();
    let mut telemetry = EngineTelemetry::new("c_hat", strategy.label(), threads);
    let k = k.min(source.node_count());
    // Initial potential = appearance count (no sample is influenced yet).
    let mut heap: BinaryHeap<UbEntry> = (0..source.node_count() as u32)
        .filter_map(|v| {
            let ub = source.appearance_count(v);
            (ub > 0).then_some(UbEntry { ub, node: v })
        })
        .collect();
    let cap = batch_cap(threads);
    let chunk = eval_chunk(threads);
    let mut seeds = Vec::with_capacity(k);
    let mut evaluations = 0u64;
    let mut round_idx = 0u32;
    let mut batch: Vec<UbEntry> = Vec::new();
    let mut evaluated: Vec<UbEntry> = Vec::new();
    while seeds.len() < k {
        let round_start = Instant::now();
        let mut rec = IterationRecord::begin(round_idx, heap.len());
        let mut best: Option<(usize, u32)> = None;
        evaluated.clear();
        loop {
            batch.clear();
            while batch.len() < cap {
                let viable = match (heap.peek(), best) {
                    (None, _) => false,
                    (Some(top), None) => top.ub > 0,
                    (Some(top), Some((bg, bv))) => top.ub > bg || (top.ub == bg && top.node < bv),
                };
                if !viable {
                    break;
                }
                batch.push(heap.pop().expect("peeked entry"));
            }
            if batch.is_empty() {
                break;
            }
            rec.batches += 1;
            rec.pops += batch.len() as u64;
            // Evaluate the batch in chunks; between chunks, entries whose
            // cached upper bound can no longer beat the updated best go
            // back to the queue *unevaluated*. Pops arrive in the queue's
            // total order, so the first non-viable entry marks the cut.
            let mut idx = 0;
            while idx < batch.len() {
                let hi = (idx + chunk).min(batch.len());
                let ids: Vec<u32> = batch[idx..hi].iter().map(|e| e.node).collect();
                let (gains, stats) = source.eval_c_batch(&ids);
                rec.absorb(&stats);
                telemetry.absorb(stats);
                evaluations += (hi - idx) as u64;
                rec.evaluations += (hi - idx) as u64;
                rec.stale_rechecks += (hi - idx) as u64;
                for (e, &(gain, potential)) in batch[idx..hi].iter().zip(&gains) {
                    let better = match best {
                        None => gain > 0,
                        Some((bg, bv)) => gain > bg || (gain == bg && gain > 0 && e.node < bv),
                    };
                    if better {
                        best = Some((gain, e.node));
                    }
                    evaluated.push(UbEntry {
                        ub: potential,
                        node: e.node,
                    });
                }
                idx = hi;
                if idx < batch.len() {
                    if let Some((bg, bv)) = best {
                        let cut = batch[idx..]
                            .iter()
                            .position(|e| !(e.ub > bg || (e.ub == bg && e.node < bv)))
                            .map_or(batch.len(), |p| idx + p);
                        if cut < batch.len() {
                            rec.saved_evaluations += (batch.len() - cut) as u64;
                            for e in batch.drain(cut..) {
                                heap.push(e);
                            }
                        }
                    }
                }
            }
        }
        match best {
            Some((gain, v)) => {
                source.add_seed(v);
                seeds.push(NodeId::new(v));
                // Non-winners return with their freshly measured potential
                // (still an upper bound after the new seed: potentials only
                // shrink). Zero-potential nodes can never gain again.
                for e in evaluated.drain(..) {
                    if e.node != v && e.ub > 0 {
                        heap.push(e);
                    }
                }
                rec.finish(gain as f64, true, round_start);
                telemetry.rounds.push(rec);
            }
            None => {
                rec.finish(0.0, false, round_start);
                telemetry.rounds.push(rec);
                break;
            }
        }
        round_idx += 1;
    }
    source.pad_seeds(&mut seeds, k);
    telemetry.wall_seconds = wall.elapsed().as_secs_f64();
    (GreedyRun { seeds, evaluations }, telemetry)
}

/// A gain below this is treated as zero for `ν_R` (matches the historical
/// CELF cut-off).
const NU_EPS: f64 = 1e-15;

fn greedy_nu_sequential<S: GainSource>(source: &mut S, k: usize) -> (GreedyRun, EngineTelemetry) {
    let wall = Instant::now();
    let mut telemetry = EngineTelemetry::new("nu", "sequential", 1);
    let k = k.min(source.node_count());
    let candidates: Vec<u32> = (0..source.node_count() as u32)
        .filter(|&v| source.appearance_count(v) > 0)
        .collect();
    let mut used = vec![false; source.node_count()];
    let mut remaining = candidates.len();
    let mut seeds = Vec::with_capacity(k);
    let mut evaluations = 0u64;
    let mut alive: Vec<u32> = Vec::with_capacity(candidates.len());
    for round in 0..k {
        let round_start = Instant::now();
        let mut rec = IterationRecord::begin(round as u32, remaining);
        alive.clear();
        alive.extend(candidates.iter().copied().filter(|&v| !used[v as usize]));
        let (gains, stats) = source.eval_nu_batch(&alive);
        rec.absorb(&stats);
        telemetry.absorb(stats);
        evaluations += alive.len() as u64;
        rec.evaluations += alive.len() as u64;
        let mut best: Option<(f64, u32)> = None;
        for (&v, &gain) in alive.iter().zip(&gains) {
            // Ascending scan keeps the smallest id on exact ties.
            let better = match best {
                None => gain > NU_EPS,
                Some((bg, _)) => gain.total_cmp(&bg) == Ordering::Greater,
            };
            if better {
                best = Some((gain, v));
            }
        }
        rec.pops = rec.evaluations;
        match best {
            Some((gain, v)) => {
                source.add_seed(v);
                used[v as usize] = true;
                remaining -= 1;
                seeds.push(NodeId::new(v));
                rec.finish(gain, true, round_start);
                telemetry.rounds.push(rec);
            }
            None => {
                rec.finish(0.0, false, round_start);
                telemetry.rounds.push(rec);
                break;
            }
        }
    }
    source.pad_seeds(&mut seeds, k);
    telemetry.wall_seconds = wall.elapsed().as_secs_f64();
    (GreedyRun { seeds, evaluations }, telemetry)
}

/// CELF entry for `ν_R`: cached gain with a staleness stamp.
#[derive(Debug, PartialEq)]
struct NuEntry {
    gain: f64,
    node: u32,
    stamp: u32,
}

impl Eq for NuEntry {}

impl Ord for NuEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.node.cmp(&self.node)) // prefer smaller id on tie
    }
}

impl PartialOrd for NuEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn greedy_nu_lazy<S: GainSource>(
    source: &mut S,
    k: usize,
    strategy: SolveStrategy,
) -> (GreedyRun, EngineTelemetry) {
    let threads = strategy.threads();
    let wall = Instant::now();
    let mut telemetry = EngineTelemetry::new("nu", strategy.label(), threads);
    let k = k.min(source.node_count());
    let candidates: Vec<u32> = (0..source.node_count() as u32)
        .filter(|&v| source.appearance_count(v) > 0)
        .collect();
    // The initial full gain scan is the single biggest evaluation wave —
    // fan it out across the workers.
    let (initial, scan_stats) = source.eval_nu_batch(&candidates);
    telemetry.absorb(scan_stats);
    telemetry.initial_evaluations = candidates.len() as u64;
    let mut evaluations = candidates.len() as u64;
    let mut heap: BinaryHeap<NuEntry> = candidates
        .iter()
        .zip(&initial)
        .map(|(&v, &g)| NuEntry {
            gain: g,
            node: v,
            stamp: 0,
        })
        .collect();
    let cap = batch_cap(threads);
    let chunk = eval_chunk(threads);
    let mut seeds = Vec::with_capacity(k);
    let mut round = 0u32;
    let mut stale: Vec<NuEntry> = Vec::new();
    let mut evaluated: Vec<(f64, u32)> = Vec::new();
    while seeds.len() < k {
        let round_start = Instant::now();
        let mut rec = IterationRecord::begin(round, heap.len());
        let mut best: Option<(f64, u32)> = None;
        evaluated.clear();
        loop {
            stale.clear();
            let mut popped_fresh = false;
            while stale.len() < cap {
                let viable = match (heap.peek(), best) {
                    (None, _) => false,
                    (Some(top), None) => top.gain > NU_EPS,
                    (Some(top), Some((bg, bv))) => match top.gain.total_cmp(&bg) {
                        Ordering::Greater => true,
                        Ordering::Equal => top.node < bv,
                        Ordering::Less => false,
                    },
                };
                if !viable {
                    break;
                }
                let e = heap.pop().expect("peeked entry");
                rec.pops += 1;
                if e.stamp == round {
                    // Gain is exact under the current seed set: contends
                    // for the argmax without re-evaluation.
                    let better = match best {
                        None => e.gain > NU_EPS,
                        Some((bg, bv)) => match e.gain.total_cmp(&bg) {
                            Ordering::Greater => true,
                            Ordering::Equal => e.node < bv,
                            Ordering::Less => false,
                        },
                    };
                    if better {
                        best = Some((e.gain, e.node));
                    }
                    evaluated.push((e.gain, e.node));
                    rec.fresh_hits += 1;
                    popped_fresh = true;
                } else {
                    stale.push(e);
                }
            }
            if stale.is_empty() {
                if popped_fresh {
                    continue;
                }
                break;
            }
            rec.batches += 1;
            // Re-evaluate the stale pops in chunks; between chunks, stale
            // entries whose cached (upper-bound) gain can no longer beat
            // the updated best go back to the queue unevaluated. Pops
            // arrive in the queue's total order, so the first non-viable
            // entry marks the cut.
            let mut idx = 0;
            while idx < stale.len() {
                let hi = (idx + chunk).min(stale.len());
                let ids: Vec<u32> = stale[idx..hi].iter().map(|e| e.node).collect();
                let (gains, stats) = source.eval_nu_batch(&ids);
                rec.absorb(&stats);
                telemetry.absorb(stats);
                evaluations += (hi - idx) as u64;
                rec.evaluations += (hi - idx) as u64;
                rec.stale_rechecks += (hi - idx) as u64;
                for (e, &gain) in stale[idx..hi].iter().zip(&gains) {
                    let better = match best {
                        None => gain > NU_EPS,
                        Some((bg, bv)) => match gain.total_cmp(&bg) {
                            Ordering::Greater => true,
                            Ordering::Equal => e.node < bv,
                            Ordering::Less => false,
                        },
                    };
                    if better {
                        best = Some((gain, e.node));
                    }
                    evaluated.push((gain, e.node));
                }
                idx = hi;
                if idx < stale.len() {
                    if let Some((bg, bv)) = best {
                        let cut = stale[idx..]
                            .iter()
                            .position(|e| match e.gain.total_cmp(&bg) {
                                Ordering::Greater => false,
                                Ordering::Equal => e.node >= bv,
                                Ordering::Less => true,
                            })
                            .map_or(stale.len(), |p| idx + p);
                        if cut < stale.len() {
                            rec.saved_evaluations += (stale.len() - cut) as u64;
                            for e in stale.drain(cut..) {
                                heap.push(e);
                            }
                        }
                    }
                }
            }
        }
        match best {
            Some((gain, v)) => {
                source.add_seed(v);
                seeds.push(NodeId::new(v));
                // Re-queue the non-winners with their freshly measured
                // gains, stamped with the round they were measured in; the
                // round bump below marks them stale. Submodularity lets
                // exhausted (≤ ε) entries drop out for good.
                for &(g, node) in &evaluated {
                    if node != v && g > NU_EPS {
                        heap.push(NuEntry {
                            gain: g,
                            node,
                            stamp: round,
                        });
                    }
                }
                round += 1;
                rec.finish(gain, true, round_start);
                telemetry.rounds.push(rec);
            }
            None => {
                rec.finish(0.0, false, round_start);
                telemetry.rounds.push(rec);
                break;
            }
        }
    }
    source.pad_seeds(&mut seeds, k);
    telemetry.wall_seconds = wall.elapsed().as_secs_f64();
    (GreedyRun { seeds, evaluations }, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, RicCollection, RicSample};
    use imc_community::CommunityId;

    const ALL_STRATEGIES: [SolveStrategy; 6] = [
        SolveStrategy::Sequential,
        SolveStrategy::Lazy,
        SolveStrategy::Parallel { threads: 1 },
        SolveStrategy::Parallel { threads: 2 },
        SolveStrategy::Parallel { threads: 4 },
        SolveStrategy::Parallel { threads: 8 },
    ];

    fn mk_cover(width: usize, bits: &[usize]) -> CoverSet {
        let mut c = CoverSet::new(width);
        for &b in bits {
            c.set(b);
        }
        c
    }

    /// A pseudo-random collection large and irregular enough to exercise
    /// staleness, ties, and the padding path.
    fn scrambled_collection(nodes: u32, samples: usize, salt: u64) -> RicCollection {
        let mut col = RicCollection::new(nodes as usize, 3, samples as f64);
        let mut x = salt | 1;
        let mut next = |m: u64| {
            // xorshift64 — deterministic, no external RNG in unit tests.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m
        };
        for _ in 0..samples {
            let width = 1 + next(3) as usize;
            let threshold = 1 + next(width.min(2) as u64) as u32;
            let n = 1 + next(4) as usize;
            let mut ids: Vec<u32> = (0..n).map(|_| next(u64::from(nodes)) as u32).collect();
            ids.sort_unstable();
            ids.dedup();
            let entries: Vec<(NodeId, CoverSet)> = ids
                .iter()
                .map(|&v| {
                    let bit = next(width as u64) as usize;
                    (NodeId::new(v), mk_cover(width, &[bit]))
                })
                .collect();
            col.push(RicSample {
                community: CommunityId::new(next(3) as u32),
                threshold,
                community_size: width as u32,
                nodes: entries.iter().map(|e| e.0).collect(),
                covers: entries.into_iter().map(|e| e.1).collect(),
            });
        }
        col
    }

    #[test]
    fn all_strategies_agree_on_c_greedy() {
        for salt in [1u64, 7, 42, 1234] {
            let col = scrambled_collection(40, 120, salt);
            for k in [1usize, 3, 7, 40] {
                let reference = greedy_c_with(&col, k, SolveStrategy::Sequential);
                for strategy in ALL_STRATEGIES {
                    let run = greedy_c_with(&col, k, strategy);
                    assert_eq!(
                        run.seeds, reference.seeds,
                        "ĉ diverged for salt={salt} k={k} {strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_strategies_agree_on_nu_greedy() {
        for salt in [1u64, 7, 42, 1234] {
            let col = scrambled_collection(40, 120, salt);
            for k in [1usize, 3, 7, 40] {
                let reference = greedy_nu_with(&col, k, SolveStrategy::Sequential);
                for strategy in ALL_STRATEGIES {
                    let run = greedy_nu_with(&col, k, strategy);
                    assert_eq!(
                        run.seeds, reference.seeds,
                        "ν diverged for salt={salt} k={k} {strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn lazy_evaluates_no_more_than_sequential() {
        let col = scrambled_collection(60, 300, 5);
        let k = 10;
        let sequential = greedy_c_with(&col, k, SolveStrategy::Sequential);
        let lazy = greedy_c_with(&col, k, SolveStrategy::Lazy);
        assert!(
            lazy.evaluations <= sequential.evaluations,
            "lazy {} > sequential {}",
            lazy.evaluations,
            sequential.evaluations
        );
        let nu_seq = greedy_nu_with(&col, k, SolveStrategy::Sequential);
        let nu_lazy = greedy_nu_with(&col, k, SolveStrategy::Lazy);
        assert!(nu_lazy.evaluations <= nu_seq.evaluations);
    }

    /// CELF soundness: every lazy pick must be the true argmax of *fresh*
    /// gains — a stale cached gain winning a round would show up here as a
    /// pick whose freshly recomputed gain is below some other candidate's.
    #[test]
    fn celf_queue_never_returns_a_stale_gain() {
        for salt in [3u64, 9, 77] {
            let col = scrambled_collection(30, 90, salt);
            let run = greedy_nu_with(&col, 8, SolveStrategy::Lazy);
            let mut state = CoverageState::new(&col);
            let mut used = vec![false; RicSamples::node_count(&col)];
            for &picked in &run.seeds {
                let fresh_picked = state.marginal_fraction(picked);
                if fresh_picked <= NU_EPS {
                    break; // padding region — no more greedy picks
                }
                for v in 0..RicSamples::node_count(&col) as u32 {
                    if used[v as usize] {
                        continue;
                    }
                    let fresh = state.marginal_fraction(NodeId::new(v));
                    assert!(
                        fresh.total_cmp(&fresh_picked) != Ordering::Greater,
                        "salt={salt}: pick {picked} (gain {fresh_picked}) \
                         beaten by fresh gain {fresh} of node {v}"
                    );
                    if fresh.total_cmp(&fresh_picked) == Ordering::Equal {
                        assert!(
                            picked.index() as u32 <= v,
                            "salt={salt}: tie broken away from smaller id"
                        );
                    }
                }
                used[picked.index()] = true;
                state.add_seed(picked);
            }
        }
    }

    /// Same soundness check for the potential-keyed ĉ queue.
    #[test]
    fn lazy_c_queue_never_returns_a_stale_gain() {
        for salt in [3u64, 9, 77] {
            let col = scrambled_collection(30, 90, salt);
            let run = greedy_c_with(&col, 8, SolveStrategy::Lazy);
            let mut state = CoverageState::new(&col);
            let mut used = vec![false; RicSamples::node_count(&col)];
            for &picked in &run.seeds {
                let fresh_picked = state.marginal_influenced(picked);
                if fresh_picked == 0 {
                    break; // padding region
                }
                for v in 0..RicSamples::node_count(&col) as u32 {
                    if used[v as usize] {
                        continue;
                    }
                    let fresh = state.marginal_influenced(NodeId::new(v));
                    assert!(
                        fresh <= fresh_picked,
                        "salt={salt}: pick {picked} (gain {fresh_picked}) \
                         beaten by fresh gain {fresh} of node {v}"
                    );
                }
                used[picked.index()] = true;
                state.add_seed(picked);
            }
        }
    }

    #[test]
    fn telemetry_accounts_for_every_evaluation() {
        let col = scrambled_collection(60, 300, 11);
        let k = 8;
        for strategy in ALL_STRATEGIES {
            let (run, telemetry) = greedy_nu_with_telemetry(&col, k, strategy);
            assert_eq!(
                telemetry.evaluations(),
                run.evaluations,
                "ν telemetry evaluation total diverged for {strategy:?}"
            );
            assert_eq!(telemetry.objective, "nu");
            assert_eq!(telemetry.strategy, strategy.label());
            assert_eq!(telemetry.threads, strategy.threads());
            let picked = telemetry.rounds.iter().filter(|r| r.picked).count();
            assert!(picked <= k);
            assert!(telemetry.rounds.len() <= k + 1);
            // Queue depth at round start can never be below what is left
            // to pop that round.
            for rec in &telemetry.rounds {
                assert!(rec.pops <= rec.queue_depth as u64 + rec.saved_evaluations);
                assert!(rec.wasted_evaluations <= rec.evaluations);
            }
            assert!(telemetry.wall_seconds >= 0.0);

            let (c_run, c_telemetry) = greedy_c_with_telemetry(&col, k, strategy);
            assert_eq!(
                c_telemetry.evaluations(),
                c_run.evaluations,
                "ĉ telemetry evaluation total diverged for {strategy:?}"
            );
            assert_eq!(c_telemetry.objective, "c_hat");
            if strategy != SolveStrategy::Sequential {
                // Every queue-based ĉ evaluation re-checks a bound-only key.
                assert_eq!(c_telemetry.stale_rechecks(), c_run.evaluations);
            }
        }
    }

    #[test]
    fn parallel_run_records_shard_timings() {
        // 400 candidates push the initial ν scan over MIN_PARALLEL_ITEMS,
        // so the parallel path must report per-shard wall times and
        // per-worker busy fractions.
        let col = scrambled_collection(400, 1200, 21);
        let (_, telemetry) =
            greedy_nu_with_telemetry(&col, 6, SolveStrategy::Parallel { threads: 4 });
        assert!(
            !telemetry.shard_seconds.is_empty(),
            "no shard timings recorded"
        );
        assert!(
            !telemetry.busy_fractions.is_empty(),
            "no busy fractions recorded"
        );
        for &b in &telemetry.busy_fractions {
            assert!((0.0..=1.0).contains(&b), "busy fraction {b} out of range");
        }
        for &s in &telemetry.shard_seconds {
            assert!(s >= 0.0);
        }
    }

    /// The thread-scaling fix: a wide parallel batch must push part of its
    /// popped entries back unevaluated once the best-so-far proves they
    /// cannot win — with seeds still bitwise identical to sequential.
    #[test]
    fn chunked_recheck_saves_evaluations_without_changing_seeds() {
        let col = scrambled_collection(400, 1200, 21);
        let k = 6;
        let reference_nu = greedy_nu_with(&col, k, SolveStrategy::Sequential);
        let reference_c = greedy_c_with(&col, k, SolveStrategy::Sequential);
        let strategy = SolveStrategy::Parallel { threads: 8 };
        let (nu_run, nu_telemetry) = greedy_nu_with_telemetry(&col, k, strategy);
        let (c_run, c_telemetry) = greedy_c_with_telemetry(&col, k, strategy);
        assert_eq!(nu_run.seeds, reference_nu.seeds);
        assert_eq!(c_run.seeds, reference_c.seeds);
        assert!(
            nu_telemetry.saved_evaluations() > 0,
            "ν saved no evaluations: {} pops, {} evaluations",
            nu_telemetry.rounds.iter().map(|r| r.pops).sum::<u64>(),
            nu_telemetry.evaluations(),
        );
        assert!(
            c_telemetry.saved_evaluations() > 0,
            "ĉ saved no evaluations: {} pops, {} evaluations",
            c_telemetry.rounds.iter().map(|r| r.pops).sum::<u64>(),
            c_telemetry.evaluations(),
        );
        // Single-threaded CELF pops one entry at a time — nothing to save.
        let (_, lazy_telemetry) = greedy_nu_with_telemetry(&col, k, SolveStrategy::Lazy);
        assert_eq!(lazy_telemetry.saved_evaluations(), 0);
    }

    #[test]
    fn shard_map_matches_sequential_map_for_every_thread_count() {
        let data: Vec<u64> = (0..1000u64).map(|i| i * i % 977).collect();
        let expect: Vec<u64> = data.iter().map(|&v| v * 3 + 1).collect();
        for threads in [1usize, 2, 3, 4, 8, 16] {
            let got = shard_map(data.len(), threads, |i| data[i] * 3 + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn chunked_shard_map_matches_per_item_map_for_every_thread_count() {
        let data: Vec<u64> = (0..1000u64).map(|i| i * 7 % 613).collect();
        let expect: Vec<u64> = data.iter().map(|&v| v ^ 0x5a).collect();
        for threads in [1usize, 2, 3, 4, 8, 16] {
            let (got, _) = shard_map_chunks_stats(data.len(), threads, |lo, hi| {
                data[lo..hi].iter().map(|&v| v ^ 0x5a).collect()
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_oversized_budgets_pad() {
        let col = RicCollection::new(5, 1, 1.0);
        for strategy in ALL_STRATEGIES {
            assert_eq!(greedy_c_with(&col, 2, strategy).seeds.len(), 2);
            assert_eq!(greedy_nu_with(&col, 2, strategy).seeds.len(), 2);
            assert_eq!(greedy_c_with(&col, 100, strategy).seeds.len(), 5);
        }
    }

    #[test]
    fn strategy_labels_and_threads() {
        assert_eq!(SolveStrategy::Sequential.threads(), 1);
        assert_eq!(SolveStrategy::Lazy.threads(), 1);
        assert_eq!(SolveStrategy::Parallel { threads: 0 }.threads(), 1);
        assert_eq!(SolveStrategy::Parallel { threads: 4 }.threads(), 4);
        assert_eq!(SolveStrategy::with_threads(1), SolveStrategy::Lazy);
        assert_eq!(
            SolveStrategy::with_threads(4),
            SolveStrategy::Parallel { threads: 4 }
        );
        assert_eq!(SolveStrategy::default().label(), "lazy");
        assert_eq!(SolveStrategy::Sequential.label(), "sequential");
        assert_eq!(SolveStrategy::Parallel { threads: 2 }.label(), "parallel");
    }
}
