//! Exact MAXR by exhaustive enumeration — for tiny instances only.
//!
//! MAXR is NP-hard, so this solver exists for *measurement*: tests and
//! ablations compare the approximate solvers against the true optimum on
//! brute-forceable collections, turning the paper's worst-case ratios
//! (Theorems 3–5) into checkable assertions.

use crate::{CoverageState, RicSamples};
use imc_graph::NodeId;

/// Result of an exhaustive solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    /// An optimal seed set (lexicographically smallest among optima).
    pub seeds: Vec<NodeId>,
    /// Number of samples it influences.
    pub influenced_samples: usize,
    /// How many candidate subsets were evaluated.
    pub subsets_evaluated: u64,
}

/// Enumerates all `k`-subsets of the nodes that appear in at least one
/// sample (other nodes can never help) and returns an optimum.
///
/// # Panics
///
/// Panics if the search space `C(candidates, k)` exceeds `2^32` subsets —
/// use the approximate solvers for anything bigger.
pub fn exhaustive<C: RicSamples>(collection: &C, k: usize) -> ExactSolution {
    let candidates: Vec<NodeId> = (0..collection.node_count() as u32)
        .map(NodeId::new)
        .filter(|&v| collection.appearance_count(v) > 0)
        .collect();
    let k = k.min(candidates.len().max(1));
    if candidates.is_empty() {
        return ExactSolution {
            seeds: Vec::new(),
            influenced_samples: 0,
            subsets_evaluated: 1,
        };
    }
    let space = binomial_capped(candidates.len() as u64, k as u64, 1 << 32);
    assert!(
        space < 1 << 32,
        "search space too large for exhaustive MAXR"
    );

    let mut best_seeds: Vec<NodeId> = Vec::new();
    let mut best_score = 0usize;
    let mut evaluated = 0u64;

    // DFS over combinations with incremental CoverageState would need
    // removal support; evaluate each combination from scratch instead
    // (fine at this scale), but prune: a prefix already influencing every
    // sample cannot be beaten.
    let total = collection.len();
    let mut indices: Vec<usize> = (0..k).collect();
    loop {
        evaluated += 1;
        let subset: Vec<NodeId> = indices.iter().map(|&i| candidates[i]).collect();
        let score = collection.influenced_count(&subset);
        if score > best_score || (score == best_score && best_seeds.is_empty()) {
            best_score = score;
            best_seeds = subset;
            if best_score == total {
                break; // cannot improve
            }
        }
        // Next combination in lexicographic order.
        let mut i = k;
        loop {
            if i == 0 {
                return ExactSolution {
                    seeds: best_seeds,
                    influenced_samples: best_score,
                    subsets_evaluated: evaluated,
                };
            }
            i -= 1;
            if indices[i] != i + candidates.len() - k {
                indices[i] += 1;
                for j in (i + 1)..k {
                    indices[j] = indices[j - 1] + 1;
                }
                break;
            }
        }
    }
    ExactSolution {
        seeds: best_seeds,
        influenced_samples: best_score,
        subsets_evaluated: evaluated,
    }
}

/// `C(n, k)` capped at `cap` to avoid overflow.
fn binomial_capped(n: u64, k: u64, cap: u64) -> u64 {
    let k = k.min(n - k.min(n));
    let mut acc: u64 = 1;
    for i in 1..=k {
        acc = acc.saturating_mul(n - k + i) / i;
        if acc >= cap {
            return cap;
        }
    }
    acc
}

/// Empirical approximation ratio of a solver's seed set against the exact
/// optimum (1.0 when the optimum influences nothing).
pub fn empirical_ratio<C: RicSamples>(collection: &C, seeds: &[NodeId], k: usize) -> f64 {
    let opt = exhaustive(collection, k);
    if opt.influenced_samples == 0 {
        return 1.0;
    }
    collection.influenced_count(seeds) as f64 / opt.influenced_samples as f64
}

/// Convenience used by diagnostics: evaluates a seed set via a fresh
/// [`CoverageState`] (exercising the incremental path).
pub fn incremental_score<C: RicSamples>(collection: &C, seeds: &[NodeId]) -> usize {
    let mut st = CoverageState::new(collection);
    for &s in seeds {
        st.add_seed(s);
    }
    st.influenced_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, RicCollection, RicSample};
    use imc_community::CommunityId;

    fn mk(width: usize, bits: &[usize]) -> CoverSet {
        let mut c = CoverSet::new(width);
        for &b in bits {
            c.set(b);
        }
        c
    }

    fn trap_collection() -> RicCollection {
        // Sample 0 (h=2) needs {0,1}; sample 1 (h=1) taken by 2; sample 2
        // (h=1) taken by 2.
        let mut col = RicCollection::new(4, 2, 3.0);
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 2,
            community_size: 2,
            nodes: vec![NodeId::new(0), NodeId::new(1)],
            covers: vec![mk(2, &[0]), mk(2, &[1])],
        });
        for _ in 0..2 {
            col.push(RicSample {
                community: CommunityId::new(1),
                threshold: 1,
                community_size: 1,
                nodes: vec![NodeId::new(2)],
                covers: vec![mk(1, &[0])],
            });
        }
        col
    }

    #[test]
    fn finds_true_optimum() {
        let col = trap_collection();
        // k=2: {2, anything} gets 2; {0,1} gets 1 → optimum is 2.
        let sol = exhaustive(&col, 2);
        assert_eq!(sol.influenced_samples, 2);
        assert!(sol.seeds.contains(&NodeId::new(2)));
        // k=3: {0,1,2} gets all 3.
        let sol = exhaustive(&col, 3);
        assert_eq!(sol.influenced_samples, 3);
    }

    #[test]
    fn early_exit_when_everything_influenced() {
        let col = trap_collection();
        let sol = exhaustive(&col, 3);
        // Only one 3-subset exists; evaluated counter small.
        assert_eq!(sol.subsets_evaluated, 1);
    }

    #[test]
    fn empirical_ratio_of_optimal_is_one() {
        let col = trap_collection();
        let sol = exhaustive(&col, 2);
        assert_eq!(empirical_ratio(&col, &sol.seeds, 2), 1.0);
    }

    #[test]
    fn greedy_ratio_measurable() {
        let col = trap_collection();
        let greedy =
            crate::maxr::engine::greedy_c_with(&col, 2, crate::maxr::SolveStrategy::Lazy).seeds;
        let ratio = empirical_ratio(&col, &greedy, 2);
        assert!(ratio > 0.0 && ratio <= 1.0);
    }

    #[test]
    fn incremental_score_matches_batch() {
        let col = trap_collection();
        let seeds = [NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        assert_eq!(
            incremental_score(&col, &seeds),
            col.influenced_count(&seeds)
        );
    }

    #[test]
    fn empty_collection() {
        let col = RicCollection::new(3, 1, 1.0);
        let sol = exhaustive(&col, 2);
        assert_eq!(sol.influenced_samples, 0);
        assert!(sol.seeds.is_empty());
    }

    #[test]
    fn k_exceeding_candidates_clamps() {
        let col = trap_collection();
        let sol = exhaustive(&col, 50);
        assert_eq!(sol.influenced_samples, 3);
    }

    #[test]
    fn binomial_capped_values() {
        assert_eq!(binomial_capped(5, 2, 1000), 10);
        assert_eq!(binomial_capped(60, 30, 1 << 20), 1 << 20); // capped
    }
}
