//! Solvers for the MAXR problem (Definition 3): given a collection `R` of
//! RIC samples, pick `k` seeds maximizing the number of influenced samples.
//!
//! | Solver | Ratio (paper) | Requires |
//! |---|---|---|
//! | [`greedy`] (plain, on `ĉ_R`) | none (non-submodular) | — |
//! | [`ubg`] (sandwich on `ν_R`)  | `(ĉ(S_ν)/ν(S_ν))·(1−1/e)` (Thm. 2) | — |
//! | [`maf`] (most-appearance)    | `⌊k/h⌋ / r` (Thm. 3) | — |
//! | [`bt`]  (bounded threshold)  | `(1−1/e)/k` (Thm. 4), `(1−1/e)/k^{d−1}` for BT^(d) | `h_i ≤ d` |
//! | [`mb`]  (MAF ∨ BT)           | `Θ(√((1−1/e)/r))` (Thm. 5) | `h_i ≤ 2` |
//!
//! All of them run on the shared [`engine`] (CELF lazy evaluation plus
//! deterministic sharded parallelism, selected by [`SolveStrategy`]) and
//! are exposed uniformly through the [`solver`] module's [`MaxrSolver`]
//! trait; [`MaxrAlgorithm::solve`] is the single dispatch entry point.

pub mod bt;
pub mod engine;
pub mod exhaustive;
pub mod greedy;
pub mod maf;
pub mod mb;
pub mod solver;
pub mod telemetry;
pub mod ubg;

pub use engine::{GainSource, GreedyRun, LocalSource, SolveStrategy};
pub use solver::{
    BtSolver, GreedySolver, MafSolver, MaxrSolver, MbSolver, SolveReport, SolveRequest,
    SolverExtras, UbgSolver,
};
pub use telemetry::{EngineTelemetry, IterationRecord, MapStats};

use crate::{ImcError, ImcInstance, Result, RicSamples};
use imc_graph::NodeId;

/// Which MAXR solver the framework should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxrAlgorithm {
    /// Plain greedy on `ĉ_R` — no guarantee (non-submodular), strong in
    /// practice.
    Greedy,
    /// Upper Bound Greedy (Alg. 2): sandwich with the submodular `ν_R`.
    Ubg,
    /// Most Appearance First (Alg. 3).
    Maf,
    /// Bounded-threshold algorithm (Alg. 4), thresholds ≤ 2.
    Bt,
    /// Recursive extension `BT^(d)`, thresholds ≤ `d` (`d ≥ 2`).
    Btd(u32),
    /// MB = best of MAF and BT (Theorem 5), thresholds ≤ 2.
    Mb,
}

/// Former name of [`SolveReport`]. The fields `seeds`,
/// `influenced_samples`, and `estimate` carry over unchanged; the report
/// adds `evaluations`, `elapsed`, and per-solver `extras`.
#[deprecated(note = "renamed to `SolveReport`")]
pub type MaxrSolution = SolveReport;

impl MaxrAlgorithm {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            MaxrAlgorithm::Greedy => "GREEDY",
            MaxrAlgorithm::Ubg => "UBG",
            MaxrAlgorithm::Maf => "MAF",
            MaxrAlgorithm::Bt => "BT",
            MaxrAlgorithm::Btd(_) => "BT^d",
            MaxrAlgorithm::Mb => "MB",
        }
    }

    /// The approximation ratio `α` the paper proves for this solver, used
    /// to size the sample bound `Ψ` (eq. 22).
    ///
    /// For solvers without a universal guarantee (plain greedy) and for UBG
    /// (whose SSA integration optimizes the submodular `ν`, §V-B) this is
    /// `1 − 1/e`. MAF's ratio is clamped below by `1/(r·h)` so `Ψ` stays
    /// finite when `k < h`.
    pub fn approximation_ratio(&self, r: usize, h: u32, k: usize) -> f64 {
        let r = r.max(1) as f64;
        let one_minus_inv_e = 1.0 - 1.0 / std::f64::consts::E;
        match self {
            MaxrAlgorithm::Greedy | MaxrAlgorithm::Ubg => one_minus_inv_e,
            MaxrAlgorithm::Maf => {
                let ratio = (k as f64 / h.max(1) as f64).floor().max(1.0) / r;
                ratio.min(1.0)
            }
            MaxrAlgorithm::Bt => one_minus_inv_e / k.max(1) as f64,
            MaxrAlgorithm::Btd(d) => {
                one_minus_inv_e / (k.max(1) as f64).powi(d.saturating_sub(1).max(1) as i32)
            }
            MaxrAlgorithm::Mb => {
                let half = ((k / 2).max(1)) as f64 / k.max(1) as f64;
                (one_minus_inv_e / r * half).sqrt().min(1.0)
            }
        }
    }

    /// Runs the solver on a sample collection — either storage backend
    /// ([`RicCollection`](crate::RicCollection) or
    /// [`RicStore`](crate::RicStore)); the seed sets are identical for
    /// identical collections and for every [`SolveStrategy`].
    ///
    /// This is the single dispatch entry point over the unified
    /// [`MaxrSolver`] API: it applies the instance-level budget check, the
    /// per-algorithm threshold bounds, and records the `maxr_solve` metric,
    /// then delegates to the matching solver struct. `req.seed` drives
    /// MAF's random member picks (the only randomized solver);
    /// `req.depth` is the `d` of BT^(d) (forced to the variant's `d` for
    /// [`MaxrAlgorithm::Btd`], and to 2 nowhere — MB checks thresholds ≤ 2
    /// directly).
    ///
    /// # Errors
    ///
    /// * [`ImcError::InvalidBudget`] for `req.k == 0` or `req.k > n`.
    /// * [`ImcError::InvalidParameter`] for a BT depth below 2.
    /// * [`ImcError::ThresholdTooLarge`] when BT/BT^(d)/MB run on an
    ///   instance whose thresholds exceed their bound.
    ///
    /// ```
    /// use imc_community::CommunitySet;
    /// use imc_core::{ImcInstance, MaxrAlgorithm, RicSampler, RicStore, SolveRequest};
    /// use imc_graph::{GraphBuilder, NodeId};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = GraphBuilder::new(3);
    /// b.add_edge(0, 1, 1.0)?;
    /// let graph = b.build()?;
    /// let communities =
    ///     CommunitySet::from_parts(3, vec![(vec![NodeId::new(1)], 1, 2.0)])?;
    /// let instance = ImcInstance::new(graph, communities)?;
    /// let sampler = instance.sampler();
    /// let mut store = RicStore::for_sampler(&sampler);
    /// store.extend_parallel_with_workers(&sampler, 500, 7, 2);
    /// let report =
    ///     MaxrAlgorithm::Ubg.solve(&instance, &store, &SolveRequest::new(1).with_seed(42))?;
    /// // Node 0 reaches the member through a certain edge and tops node 1
    /// // (both influence everything; smaller id wins the tie).
    /// assert_eq!(report.seeds, vec![NodeId::new(0)]);
    /// assert_eq!(report.influenced_samples, 500);
    /// assert!(report.evaluations > 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn solve<C: RicSamples>(
        &self,
        instance: &ImcInstance,
        collection: &C,
        req: &SolveRequest,
    ) -> Result<SolveReport> {
        instance.validate_budget(req.k)?;
        let start = std::time::Instant::now();
        let max_h = instance.max_threshold();
        let report = {
            let _select_span = imc_obs::Span::enter_with("maxr_select", self.name());
            match self {
                MaxrAlgorithm::Greedy => GreedySolver.solve(collection, req),
                MaxrAlgorithm::Ubg => UbgSolver.solve(collection, req),
                MaxrAlgorithm::Maf => MafSolver::new(instance.communities()).solve(collection, req),
                MaxrAlgorithm::Bt => {
                    require_bounded(max_h, req.depth)?;
                    BtSolver::default().solve(collection, req)
                }
                MaxrAlgorithm::Btd(d) => {
                    if *d < 2 {
                        return Err(ImcError::InvalidParameter { name: "bt depth" });
                    }
                    require_bounded(max_h, *d)?;
                    let sub = req.with_depth(*d);
                    BtSolver::default().solve(collection, &sub)
                }
                MaxrAlgorithm::Mb => {
                    require_bounded(max_h, 2)?;
                    MbSolver::new(instance.communities()).solve(collection, req)
                }
            }?
        };
        crate::obs::record_maxr_solve(
            self.name(),
            start.elapsed(),
            report.influenced_samples,
            collection.len(),
        );
        Ok(report)
    }
}

fn require_bounded(max_threshold: u32, bound: u32) -> Result<()> {
    if max_threshold > bound {
        Err(ImcError::ThresholdTooLarge {
            bound,
            max_threshold,
        })
    } else {
        Ok(())
    }
}

/// Pads `seeds` up to `k` with the unused nodes that appear in the most
/// samples (extra seeds never hurt the objective). Shared by all solvers so
/// every algorithm returns exactly `min(k, n)` seeds, matching how the
/// paper compares fixed-budget solutions.
pub(crate) fn pad_to_k<C: RicSamples>(collection: &C, seeds: &mut Vec<NodeId>, k: usize) {
    let k = k.min(collection.node_count());
    if seeds.len() >= k {
        seeds.truncate(k);
        return;
    }
    let mut used = vec![false; collection.node_count()];
    for s in seeds.iter() {
        used[s.index()] = true;
    }
    let mut rest: Vec<(usize, u32)> = (0..collection.node_count() as u32)
        .filter(|&v| !used[v as usize])
        .map(|v| (collection.appearance_count(NodeId::new(v)), v))
        .collect();
    // Highest appearance first; ties by smallest id for determinism.
    rest.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for (_, v) in rest {
        if seeds.len() >= k {
            break;
        }
        seeds.push(NodeId::new(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let algos = [
            MaxrAlgorithm::Greedy,
            MaxrAlgorithm::Ubg,
            MaxrAlgorithm::Maf,
            MaxrAlgorithm::Bt,
            MaxrAlgorithm::Mb,
        ];
        let names: std::collections::HashSet<&str> = algos.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), algos.len());
    }

    #[test]
    fn ratios_are_probabilities() {
        for algo in [
            MaxrAlgorithm::Greedy,
            MaxrAlgorithm::Ubg,
            MaxrAlgorithm::Maf,
            MaxrAlgorithm::Bt,
            MaxrAlgorithm::Btd(3),
            MaxrAlgorithm::Mb,
        ] {
            for (r, h, k) in [(1usize, 1u32, 1usize), (10, 2, 5), (100, 4, 50)] {
                let a = algo.approximation_ratio(r, h, k);
                assert!(
                    a > 0.0 && a <= 1.0,
                    "{algo:?} ratio {a} for r={r} h={h} k={k}"
                );
            }
        }
    }

    #[test]
    fn maf_ratio_matches_theorem3() {
        // ⌊k/h⌋ / r with k=10, h=2, r=5 → 5/5 = 1 (clamped to 1).
        assert_eq!(MaxrAlgorithm::Maf.approximation_ratio(5, 2, 10), 1.0);
        // k=4, h=2, r=10 → 2/10.
        assert!((MaxrAlgorithm::Maf.approximation_ratio(10, 2, 4) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn bt_ratio_matches_theorem4() {
        let e = std::f64::consts::E;
        let expect = (1.0 - 1.0 / e) / 7.0;
        assert!((MaxrAlgorithm::Bt.approximation_ratio(3, 2, 7) - expect).abs() < 1e-12);
        // BT^(3) divides by k².
        let expect3 = (1.0 - 1.0 / e) / 49.0;
        assert!((MaxrAlgorithm::Btd(3).approximation_ratio(3, 3, 7) - expect3).abs() < 1e-12);
    }

    #[test]
    fn mb_ratio_matches_theorem5_shape() {
        // Θ(√((1−1/e)/r)) up to the ⌊k/2⌋/k factor.
        let a = MaxrAlgorithm::Mb.approximation_ratio(100, 2, 10);
        let e = std::f64::consts::E;
        let expect = ((1.0 - 1.0 / e) / 100.0 * 0.5).sqrt();
        assert!((a - expect).abs() < 1e-12);
    }
}
