//! Deprecated free-function entry points for greedy seed selection.
//!
//! The selection logic lives in the shared [`engine`](crate::maxr::engine)
//! module, which adds CELF lazy evaluation and deterministic parallel
//! gain computation behind [`SolveStrategy`]. These shims keep the
//! original signatures compiling; new code should go through
//! [`GreedySolver`](crate::maxr::solver::GreedySolver) /
//! [`MaxrAlgorithm::solve`](crate::MaxrAlgorithm::solve) or call the
//! engine directly (see `docs/SOLVER_API.md`).

use crate::maxr::engine::{greedy_c_with, greedy_nu_with, SolveStrategy};
use crate::RicSamples;
use imc_graph::NodeId;

/// Greedy on the number of influenced samples (`ĉ_R`).
///
/// Returns exactly `min(k, n)` seeds: once no candidate has positive gain
/// the remainder is padded with the most-appearing unused nodes. Backend-
/// and strategy-independent: [`RicCollection`](crate::RicCollection) and
/// [`RicStore`](crate::RicStore) produce identical seed sets.
#[deprecated(note = "use `GreedySolver` or `MaxrAlgorithm::Greedy.solve` (see docs/SOLVER_API.md)")]
pub fn greedy_c<C: RicSamples>(collection: &C, k: usize) -> Vec<NodeId> {
    greedy_c_with(collection, k, SolveStrategy::Lazy).seeds
}

/// Greedy on the fractional objective `ν_R` (CELF lazy evaluation).
///
/// Returns exactly `min(k, n)` seeds (padded like [`greedy_c`]).
#[deprecated(note = "use `UbgSolver` / `engine::greedy_nu_with` (see docs/SOLVER_API.md)")]
pub fn greedy_nu<C: RicSamples>(collection: &C, k: usize) -> Vec<NodeId> {
    greedy_nu_with(collection, k, SolveStrategy::Lazy).seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, CoverageState, RicCollection, RicSample};
    use imc_community::CommunityId;

    fn mk_cover(width: usize, bits: &[usize]) -> CoverSet {
        let mut c = CoverSet::new(width);
        for &b in bits {
            c.set(b);
        }
        c
    }

    /// Collection where the non-submodular trap is visible: sample needs
    /// BOTH nodes 0 and 1 (h=2); node 2 alone influences a different
    /// sample.
    fn trap_collection() -> RicCollection {
        let mut col = RicCollection::new(4, 2, 2.0);
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 2,
            community_size: 2,
            nodes: vec![NodeId::new(0), NodeId::new(1)],
            covers: vec![mk_cover(2, &[0]), mk_cover(2, &[1])],
        });
        col.push(RicSample {
            community: CommunityId::new(1),
            threshold: 1,
            community_size: 1,
            nodes: vec![NodeId::new(2)],
            covers: vec![mk_cover(1, &[0])],
        });
        col
    }

    fn c(col: &RicCollection, k: usize) -> Vec<NodeId> {
        greedy_c_with(col, k, SolveStrategy::Lazy).seeds
    }

    fn nu(col: &RicCollection, k: usize) -> Vec<NodeId> {
        greedy_nu_with(col, k, SolveStrategy::Lazy).seeds
    }

    #[test]
    fn greedy_c_returns_k_seeds() {
        let col = trap_collection();
        let s = c(&col, 3);
        assert_eq!(s.len(), 3);
        // All seeds distinct.
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn greedy_c_first_pick_is_the_zero_marginal_trap() {
        // With k=1 no single node influences sample 0; node 2 influences
        // sample 1 → greedy must pick node 2 first.
        let col = trap_collection();
        let s = c(&col, 1);
        assert_eq!(s, vec![NodeId::new(2)]);
    }

    #[test]
    fn greedy_c_k3_covers_both_samples() {
        let col = trap_collection();
        let s = c(&col, 3);
        assert_eq!(col.influenced_count(&s), 2);
    }

    #[test]
    fn greedy_nu_sees_through_the_trap() {
        // ν gain of node 0 or 1 is 1/2 > 0, so greedy_nu picks them even
        // though their ĉ gain is 0 — the whole point of the sandwich.
        let col = trap_collection();
        let s = nu(&col, 3);
        assert_eq!(col.influenced_count(&s), 2);
        assert!(s.contains(&NodeId::new(0)) && s.contains(&NodeId::new(1)));
    }

    #[test]
    fn greedy_nu_matches_brute_force_on_small_instance() {
        // ν_R is submodular; CELF must equal plain greedy on ν.
        let col = trap_collection();
        let celf = nu(&col, 2);
        // Plain greedy on ν:
        let mut state = CoverageState::new(&col);
        let mut plain = Vec::new();
        for _ in 0..2 {
            let best = (0..4u32)
                .map(NodeId::new)
                .max_by(|&a, &b| {
                    state
                        .marginal_fraction(a)
                        .total_cmp(&state.marginal_fraction(b))
                        .then(b.cmp(&a))
                })
                .unwrap();
            state.add_seed(best);
            plain.push(best);
        }
        assert_eq!(col.nu_estimate(&celf), col.nu_estimate(&plain));
    }

    #[test]
    fn empty_collection_pads_with_arbitrary_nodes() {
        let col = RicCollection::new(5, 1, 1.0);
        let s = c(&col, 2);
        assert_eq!(s.len(), 2);
        let s = nu(&col, 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let col = trap_collection();
        let s = c(&col, 100);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn deterministic() {
        let col = trap_collection();
        assert_eq!(c(&col, 3), c(&col, 3));
        assert_eq!(nu(&col, 3), nu(&col, 3));
    }

    /// The deprecated shims must stay behaviourally pinned to the engine.
    #[test]
    #[allow(deprecated)]
    fn shims_match_engine() {
        let col = trap_collection();
        for k in 1..=4 {
            assert_eq!(greedy_c(&col, k), c(&col, k));
            assert_eq!(greedy_nu(&col, k), nu(&col, k));
        }
    }
}
