//! Greedy seed selection over RIC collections.
//!
//! Two variants, matching the two objectives UBG sandwiches:
//!
//! * [`greedy_c`] — plain greedy on `ĉ_R`. Because `ĉ_R` is
//!   **non-submodular** (Lemma 2), lazy (CELF) pruning is unsound here:
//!   marginal gains can *increase* as seeds are added, so every round
//!   re-evaluates all candidates.
//! * [`greedy_nu`] — CELF lazy greedy on the submodular upper bound `ν_R`
//!   (Lemma 3 makes laziness sound), giving the usual `1 − 1/e` guarantee
//!   for `S_ν`.

use crate::maxr::pad_to_k;
use crate::{CoverageState, RicSamples};
use imc_graph::NodeId;
use std::cmp::Ordering;

/// Plain (re-evaluating) greedy on the number of influenced samples.
///
/// Returns exactly `min(k, n)` seeds: once no candidate has positive gain
/// the remainder is padded with the most-appearing unused nodes.
///
/// Generic over the storage backend; iteration order (node-id ascending
/// candidates, smallest-id tie-breaks) is backend-independent, so
/// [`RicCollection`](crate::RicCollection) and
/// [`RicStore`](crate::RicStore) produce identical seed sets.
pub fn greedy_c<C: RicSamples>(collection: &C, k: usize) -> Vec<NodeId> {
    let k = k.min(collection.node_count());
    let mut state = CoverageState::new(collection);
    let candidates: Vec<NodeId> = (0..collection.node_count() as u32)
        .map(NodeId::new)
        .filter(|&v| collection.appearance_count(v) > 0)
        .collect();
    let mut used = vec![false; collection.node_count()];
    let mut seeds = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best: Option<(usize, NodeId)> = None;
        for &v in &candidates {
            if used[v.index()] {
                continue;
            }
            let gain = state.marginal_influenced(v);
            let better = match best {
                None => gain > 0,
                Some((bg, bv)) => gain > bg || (gain == bg && gain > 0 && v < bv),
            };
            if better {
                best = Some((gain, v));
            }
        }
        match best {
            Some((_, v)) => {
                state.add_seed(v);
                used[v.index()] = true;
                seeds.push(v);
            }
            None => break,
        }
    }
    pad_to_k(collection, &mut seeds, k);
    seeds
}

/// Heap entry for CELF: gain with a staleness stamp.
#[derive(Debug, PartialEq)]
struct Entry {
    gain: f64,
    node: u32,
    stamp: u32,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.node.cmp(&self.node)) // prefer smaller id on tie
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// CELF lazy greedy on the fractional objective `ν_R`.
///
/// Returns exactly `min(k, n)` seeds (padded like [`greedy_c`]).
pub fn greedy_nu<C: RicSamples>(collection: &C, k: usize) -> Vec<NodeId> {
    let k = k.min(collection.node_count());
    let mut state = CoverageState::new(collection);
    let mut heap: std::collections::BinaryHeap<Entry> = (0..collection.node_count() as u32)
        .filter(|&v| collection.appearance_count(NodeId::new(v)) > 0)
        .map(|v| Entry {
            gain: state.marginal_fraction(NodeId::new(v)),
            node: v,
            stamp: 0,
        })
        .collect();
    let mut seeds = Vec::with_capacity(k);
    let mut round = 0u32;
    while seeds.len() < k {
        match heap.pop() {
            None => break,
            Some(e) => {
                if e.gain <= 1e-15 {
                    break;
                }
                if e.stamp == round {
                    let v = NodeId::new(e.node);
                    state.add_seed(v);
                    seeds.push(v);
                    round += 1;
                } else {
                    heap.push(Entry {
                        gain: state.marginal_fraction(NodeId::new(e.node)),
                        node: e.node,
                        stamp: round,
                    });
                }
            }
        }
    }
    pad_to_k(collection, &mut seeds, k);
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, RicCollection, RicSample};
    use imc_community::CommunityId;

    fn mk_cover(width: usize, bits: &[usize]) -> CoverSet {
        let mut c = CoverSet::new(width);
        for &b in bits {
            c.set(b);
        }
        c
    }

    /// Collection where the non-submodular trap is visible: sample needs
    /// BOTH nodes 0 and 1 (h=2); node 2 alone influences a different
    /// sample.
    fn trap_collection() -> RicCollection {
        let mut col = RicCollection::new(4, 2, 2.0);
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 2,
            community_size: 2,
            nodes: vec![NodeId::new(0), NodeId::new(1)],
            covers: vec![mk_cover(2, &[0]), mk_cover(2, &[1])],
        });
        col.push(RicSample {
            community: CommunityId::new(1),
            threshold: 1,
            community_size: 1,
            nodes: vec![NodeId::new(2)],
            covers: vec![mk_cover(1, &[0])],
        });
        col
    }

    #[test]
    fn greedy_c_returns_k_seeds() {
        let col = trap_collection();
        let s = greedy_c(&col, 3);
        assert_eq!(s.len(), 3);
        // All seeds distinct.
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn greedy_c_first_pick_is_the_zero_marginal_trap() {
        // With k=1 no single node influences sample 0; node 2 influences
        // sample 1 → greedy must pick node 2 first.
        let col = trap_collection();
        let s = greedy_c(&col, 1);
        assert_eq!(s, vec![NodeId::new(2)]);
    }

    #[test]
    fn greedy_c_k3_covers_both_samples() {
        let col = trap_collection();
        let s = greedy_c(&col, 3);
        assert_eq!(col.influenced_count(&s), 2);
    }

    #[test]
    fn greedy_nu_sees_through_the_trap() {
        // ν gain of node 0 or 1 is 1/2 > 0, so greedy_nu picks them even
        // though their ĉ gain is 0 — the whole point of the sandwich.
        let col = trap_collection();
        let s = greedy_nu(&col, 3);
        assert_eq!(col.influenced_count(&s), 2);
        assert!(s.contains(&NodeId::new(0)) && s.contains(&NodeId::new(1)));
    }

    #[test]
    fn greedy_nu_matches_brute_force_on_small_instance() {
        // ν_R is submodular; CELF must equal plain greedy on ν.
        let col = trap_collection();
        let celf = greedy_nu(&col, 2);
        // Plain greedy on ν:
        let mut state = CoverageState::new(&col);
        let mut plain = Vec::new();
        for _ in 0..2 {
            let best = (0..4u32)
                .map(NodeId::new)
                .max_by(|&a, &b| {
                    state
                        .marginal_fraction(a)
                        .total_cmp(&state.marginal_fraction(b))
                        .then(b.cmp(&a))
                })
                .unwrap();
            state.add_seed(best);
            plain.push(best);
        }
        assert_eq!(col.nu_estimate(&celf), col.nu_estimate(&plain));
    }

    #[test]
    fn empty_collection_pads_with_arbitrary_nodes() {
        let col = RicCollection::new(5, 1, 1.0);
        let s = greedy_c(&col, 2);
        assert_eq!(s.len(), 2);
        let s = greedy_nu(&col, 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let col = trap_collection();
        let s = greedy_c(&col, 100);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn deterministic() {
        let col = trap_collection();
        assert_eq!(greedy_c(&col, 3), greedy_c(&col, 3));
        assert_eq!(greedy_nu(&col, 3), greedy_nu(&col, 3));
    }
}
