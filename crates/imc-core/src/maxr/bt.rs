//! Bounded-Threshold algorithm (Algorithm 4) and its recursive `BT^(d)`
//! extension.
//!
//! For every pivot node `u`, BT restricts attention to the samples `u`
//! touches (`G_R(u)`), *removes* from each the members `u` already reaches
//! and lowers the threshold accordingly (lines 3–7 of Alg. 4). With
//! thresholds originally `≤ 2` the residual thresholds are `≤ 1`, so a
//! plain greedy max-coverage finds `k − 1` helpers `T` with a `1 − 1/e`
//! guarantee; `K(u) = {u} ∪ T`. The answer is the `K(u)` maximizing
//! `|D_R(K(u), u)|` — the influenced samples among those `u` touches
//! (Theorem 4: `(1 − 1/e)/k`-approximate).
//!
//! `BT^(d)` (thresholds `≤ d`) replaces the inner greedy with a recursive
//! `BT^(d−1)` call on the reduced collection, giving `(1 − 1/e)/k^{d−1}`.
//!
//! BT solves `O(|V|)` subproblems, which the paper's Fig. 7 shows (and our
//! benches confirm) is orders of magnitude slower than UBG/MAF —
//! [`BtConfig::candidate_limit`] optionally restricts pivots to the
//! most-appearing nodes for an ablation-grade speedup.

use crate::maxr::engine::{greedy_c_with, shard_map, SolveStrategy};
use crate::maxr::pad_to_k;
use crate::samples::limbs_for_width;
use crate::{RicSamples, RicStore};
use imc_graph::NodeId;

/// Configuration for [`bt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtConfig {
    /// Threshold bound `d ≥ 2`; samples must have `h_g ≤ d`.
    pub depth: u32,
    /// When set, only the `limit` most-appearing nodes are tried as pivots
    /// (paper-faithful behaviour is `None`: all nodes).
    pub candidate_limit: Option<usize>,
}

impl Default for BtConfig {
    fn default() -> Self {
        BtConfig {
            depth: 2,
            candidate_limit: None,
        }
    }
}

/// Output of [`bt`].
#[derive(Debug, Clone, PartialEq)]
pub struct BtOutcome {
    /// The winning seed set `K(u*)`, padded to `k`.
    pub seeds: Vec<NodeId>,
    /// The winning pivot `u*` (`None` when no node touches any sample).
    pub pivot: Option<NodeId>,
    /// `|D_R(K(u*), u*)|` — influenced samples among those the pivot
    /// touches.
    pub pivot_score: usize,
}

/// Runs BT (or `BT^(d)` for `config.depth > 2`) on a collection.
///
/// # Panics
///
/// Panics if `config.depth < 2` or any sample's threshold exceeds
/// `config.depth` (the enum wrapper
/// [`MaxrAlgorithm`](crate::MaxrAlgorithm) checks this fallibly).
#[deprecated(note = "use `BtSolver` or `MaxrAlgorithm::Bt.solve` (see docs/SOLVER_API.md)")]
pub fn bt<C: RicSamples>(collection: &C, k: usize, config: &BtConfig) -> BtOutcome {
    bt_with(
        collection,
        k,
        config.depth,
        config.candidate_limit,
        SolveStrategy::Lazy,
    )
    .0
}

/// Strategy-aware BT core used by [`BtSolver`](crate::maxr::solver::BtSolver)
/// and the deprecated [`bt`] shim. The per-pivot subproblems are independent,
/// so they are sharded across workers via the engine; the reduce below walks
/// results in candidate order, which keeps the winning pivot (ties broken by
/// smaller pivot id) identical for any thread count. Inner greedy/recursive
/// calls always run single-threaded — the outer pivot loop is where the
/// parallelism pays. Returns the outcome plus the total number of objective
/// evaluations (one `pivot_score` per candidate plus all inner-greedy gains).
///
/// # Panics
///
/// Panics if `depth < 2` or any sample's threshold exceeds `depth`.
pub(crate) fn bt_with<C: RicSamples>(
    collection: &C,
    k: usize,
    depth: u32,
    candidate_limit: Option<usize>,
    strategy: SolveStrategy,
) -> (BtOutcome, u64) {
    assert!(depth >= 2, "BT depth must be at least 2");
    assert!(
        (0..collection.len()).all(|si| collection.sample_threshold(si) <= depth),
        "BT^{depth}: a sample exceeds the threshold bound"
    );
    let k = k.min(collection.node_count()).max(1);
    let candidates = pivot_candidates(collection, candidate_limit);

    let runs = shard_map(candidates.len(), strategy.threads(), |i| {
        let u = candidates[i];
        let (kset, inner_evals) = seeds_for_pivot(collection, u, k, depth);
        let score = pivot_score(collection, u, &kset);
        (score, kset, inner_evals)
    });

    let mut evaluations = candidates.len() as u64;
    let mut best: Option<(usize, NodeId, Vec<NodeId>)> = None;
    for (i, (score, kset, inner_evals)) in runs.into_iter().enumerate() {
        evaluations += inner_evals;
        let u = candidates[i];
        let better = match &best {
            None => true,
            Some((bs, bu, _)) => score > *bs || (score == *bs && u < *bu),
        };
        if better {
            best = Some((score, u, kset));
        }
    }
    let outcome = match best {
        Some((score, u, mut seeds)) => {
            pad_to_k(collection, &mut seeds, k);
            BtOutcome {
                seeds,
                pivot: Some(u),
                pivot_score: score,
            }
        }
        None => {
            // Nothing touches any sample; fall back to padding.
            let mut seeds = Vec::new();
            pad_to_k(collection, &mut seeds, k);
            BtOutcome {
                seeds,
                pivot: None,
                pivot_score: 0,
            }
        }
    };
    (outcome, evaluations)
}

/// Nodes worth trying as pivots, most-appearing first.
pub fn pivot_candidates<C: RicSamples>(collection: &C, limit: Option<usize>) -> Vec<NodeId> {
    let mut nodes: Vec<(usize, u32)> = (0..collection.node_count() as u32)
        .filter_map(|v| {
            let c = collection.appearance_count(NodeId::new(v));
            (c > 0).then_some((c, v))
        })
        .collect();
    nodes.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let take = limit.unwrap_or(nodes.len());
    nodes
        .into_iter()
        .take(take)
        .map(|(_, v)| NodeId::new(v))
        .collect()
}

/// Builds `K(u)`: `{u}` plus `k − 1` helpers chosen on the reduced
/// collection (greedy for residual thresholds ≤ 1, recursive BT otherwise).
/// Returns the helper set plus the inner evaluation count.
fn seeds_for_pivot<C: RicSamples>(
    collection: &C,
    u: NodeId,
    k: usize,
    depth: u32,
) -> (Vec<NodeId>, u64) {
    let mut kset = vec![u];
    if k == 1 {
        return (kset, 0);
    }
    let reduced = reduce_for_pivot(collection, u);
    let (helpers, inner_evals) =
        if depth <= 2 || (0..reduced.len()).all(|si| reduced.sample_threshold(si) <= 1) {
            let run = greedy_c_with(&reduced, k - 1, SolveStrategy::Lazy);
            (run.seeds, run.evaluations)
        } else {
            let (out, evals) = bt_with(&reduced, k - 1, depth - 1, None, SolveStrategy::Lazy);
            (out.seeds, evals)
        };
    for h in helpers {
        if h != u && kset.len() < k {
            kset.push(h);
        }
    }
    (kset, inner_evals)
}

/// Lines 2–7 of Alg. 4: copy the samples `u` touches, remove the members
/// `u` reaches, lower thresholds. Samples `u` alone already influences
/// (residual threshold 0) are dropped — they are won regardless of `T` and
/// are counted by [`pivot_score`] directly.
pub fn reduce_for_pivot<C: RicSamples>(collection: &C, u: NodeId) -> RicStore {
    let mut reduced = RicStore::new(
        collection.node_count(),
        collection.community_count(),
        collection.total_benefit(),
    );
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut words: Vec<u64> = Vec::new();
    for r in collection.touched_by(u) {
        let si = r.sample as usize;
        let threshold = collection.sample_threshold(si);
        let cu = collection.cover_words(si, r.pos as usize);
        let covered: u32 = cu.iter().map(|w| w.count_ones()).sum();
        if covered >= threshold {
            continue; // already influenced by u alone
        }
        let residual_threshold = threshold - covered;
        let width = collection.sample_width(si);
        let limbs = limbs_for_width(width);
        nodes.clear();
        words.clear();
        for (i, v) in collection.sample_nodes(si).iter().enumerate() {
            let cover = collection.cover_words(si, i);
            if cover.iter().zip(cu).any(|(a, b)| a & !b != 0) {
                nodes.push(*v);
                words.extend(cover.iter().zip(cu).map(|(a, b)| a & !b));
            }
        }
        debug_assert_eq!(words.len(), nodes.len() * limbs);
        reduced.push_raw(
            collection.sample_community(si),
            residual_threshold,
            width,
            &nodes,
            &words,
        );
    }
    reduced.rebuild_index();
    reduced
}

/// `|D_R(K, u)|`: samples touched by `u` and influenced by `K`.
pub fn pivot_score<C: RicSamples>(collection: &C, u: NodeId, kset: &[NodeId]) -> usize {
    collection
        .touched_by(u)
        .iter()
        .filter(|r| collection.sample_influenced(r.sample as usize, kset))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, RicCollection, RicSample};
    use imc_community::CommunityId;

    fn mk_cover(width: usize, bits: &[usize]) -> CoverSet {
        let mut c = CoverSet::new(width);
        for &b in bits {
            c.set(b);
        }
        c
    }

    fn sample(
        community: u32,
        threshold: u32,
        width: usize,
        entries: &[(u32, &[usize])],
    ) -> RicSample {
        RicSample {
            community: CommunityId::new(community),
            threshold,
            community_size: width as u32,
            nodes: entries.iter().map(|&(v, _)| NodeId::new(v)).collect(),
            covers: entries
                .iter()
                .map(|&(_, bits)| mk_cover(width, bits))
                .collect(),
        }
    }

    fn run(col: &RicCollection, k: usize, config: &BtConfig) -> BtOutcome {
        bt_with(
            col,
            k,
            config.depth,
            config.candidate_limit,
            SolveStrategy::Lazy,
        )
        .0
    }

    /// Node 0 touches all three h=2 samples covering member 0; nodes 1, 2,
    /// 3 each complete one sample.
    fn hub_collection() -> RicCollection {
        let mut col = RicCollection::new(5, 3, 3.0);
        col.push(sample(0, 2, 2, &[(0, &[0]), (1, &[1])]));
        col.push(sample(1, 2, 2, &[(0, &[0]), (2, &[1])]));
        col.push(sample(2, 2, 2, &[(0, &[0]), (3, &[1])]));
        col
    }

    #[test]
    fn bt_picks_hub_pivot_and_completers() {
        let col = hub_collection();
        let out = run(&col, 3, &BtConfig::default());
        assert_eq!(out.pivot, Some(NodeId::new(0)));
        // {0} + 2 completers influence 2 samples.
        assert_eq!(out.pivot_score, 2);
        assert_eq!(col.influenced_count(&out.seeds), 2);
        assert!(out.seeds.contains(&NodeId::new(0)));
    }

    #[test]
    fn bt_k4_wins_everything() {
        let col = hub_collection();
        let out = run(&col, 4, &BtConfig::default());
        assert_eq!(col.influenced_count(&out.seeds), 3);
        assert_eq!(out.pivot_score, 3);
    }

    #[test]
    fn k1_pivot_score_counts_solo_wins() {
        // Node 4 covers both members of one sample alone.
        let mut col = hub_collection();
        col.push(sample(0, 2, 2, &[(4, &[0, 1])]));
        let out = run(&col, 1, &BtConfig::default());
        assert_eq!(out.pivot, Some(NodeId::new(4)));
        assert_eq!(out.pivot_score, 1);
        assert_eq!(out.seeds, vec![NodeId::new(4)]);
    }

    #[test]
    fn reduction_removes_covered_members() {
        let col = hub_collection();
        let reduced = reduce_for_pivot(&col, NodeId::new(0));
        assert_eq!(reduced.len(), 3);
        for si in 0..reduced.len() {
            let s = reduced.view(si);
            assert_eq!(s.threshold(), 1); // 2 - 1 covered by pivot
            assert_eq!(s.nodes().len(), 1); // pivot's own entry dropped
        }
    }

    #[test]
    fn reduction_drops_solo_influenced_samples() {
        let mut col = hub_collection();
        col.push(sample(0, 2, 2, &[(0, &[0, 1])]));
        let reduced = reduce_for_pivot(&col, NodeId::new(0));
        assert_eq!(reduced.len(), 3); // the new sample is already won
    }

    #[test]
    fn candidate_limit_restricts_pivots() {
        let col = hub_collection();
        let limited = run(
            &col,
            3,
            &BtConfig {
                depth: 2,
                candidate_limit: Some(1),
            },
        );
        // Node 0 is the most-appearing node, so the limit of 1 still finds
        // the right pivot.
        assert_eq!(limited.pivot, Some(NodeId::new(0)));
    }

    #[test]
    fn btd_depth3_handles_threshold3() {
        // One sample with h=3: members covered by nodes 1, 2, 3; pivot 1
        // reduces to h=2, recursion finds the rest.
        let mut col = RicCollection::new(5, 1, 1.0);
        col.push(sample(0, 3, 3, &[(1, &[0]), (2, &[1]), (3, &[2])]));
        let out = run(
            &col,
            3,
            &BtConfig {
                depth: 3,
                candidate_limit: None,
            },
        );
        assert_eq!(col.influenced_count(&out.seeds), 1);
        assert_eq!(out.pivot_score, 1);
    }

    #[test]
    #[should_panic(expected = "threshold bound")]
    fn depth2_rejects_threshold3_samples() {
        let mut col = RicCollection::new(5, 1, 1.0);
        col.push(sample(0, 3, 3, &[(1, &[0]), (2, &[1]), (3, &[2])]));
        let _ = run(&col, 2, &BtConfig::default());
    }

    #[test]
    fn empty_collection_falls_back_to_padding() {
        let col = RicCollection::new(4, 1, 1.0);
        let out = run(&col, 2, &BtConfig::default());
        assert_eq!(out.pivot, None);
        assert_eq!(out.seeds.len(), 2);
    }

    #[test]
    fn theorem4_bound_sanity() {
        // ĉ(S_BT) ≥ (1−1/e)/k · ĉ(S_OPT) must hold on the hub instance:
        // OPT(k=3) = 2 (e.g. {0,1,2}), bound = (1−1/e)/3 · 2 ≈ 0.42.
        let col = hub_collection();
        let out = run(&col, 3, &BtConfig::default());
        let bound = (1.0 - 1.0 / std::f64::consts::E) / 3.0 * 2.0;
        assert!(col.influenced_count(&out.seeds) as f64 >= bound);
    }

    #[test]
    fn deterministic() {
        let col = hub_collection();
        assert_eq!(
            run(&col, 3, &BtConfig::default()),
            run(&col, 3, &BtConfig::default())
        );
    }

    /// The deprecated shim must stay behaviourally pinned to `bt_with`.
    #[test]
    #[allow(deprecated)]
    fn shim_matches_core() {
        let col = hub_collection();
        let config = BtConfig::default();
        assert_eq!(bt(&col, 3, &config), run(&col, 3, &config));
    }
}
