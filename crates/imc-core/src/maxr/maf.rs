//! Most Appearance First (Algorithm 3).
//!
//! Builds two candidate seed sets from appearance statistics over `R`:
//!
//! * `S1` — walk communities in descending order of how often they are the
//!   *source* of a sample; for each, spend `h` budget on `h` of its members
//!   (chosen uniformly at random, as the paper specifies) while the budget
//!   allows. Theorem 3 gives `S1` the `⌊k/h⌋/r` guarantee.
//! * `S2` — the `k` nodes appearing in the most samples. No guarantee (the
//!   paper exhibits a counterexample) but strong in practice.
//!
//! MAF returns whichever influences more samples.

use crate::maxr::pad_to_k;
use crate::RicSamples;
use imc_community::CommunitySet;
use imc_graph::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Output of [`maf`], exposing both candidate sets.
#[derive(Debug, Clone, PartialEq)]
pub struct MafOutcome {
    /// The chosen seed set (better of `s1` / `s2` under `ĉ_R`).
    pub seeds: Vec<NodeId>,
    /// Community-frequency seeds (Theorem 3 carrier).
    pub s1: Vec<NodeId>,
    /// Node-appearance seeds.
    pub s2: Vec<NodeId>,
    /// `true` when `s1` won.
    pub chose_s1: bool,
}

/// Runs MAF over either storage backend. `seed` drives the uniform member
/// picks inside communities.
#[deprecated(note = "use `MafSolver` or `MaxrAlgorithm::Maf.solve` (see docs/SOLVER_API.md)")]
pub fn maf<C: RicSamples>(
    communities: &CommunitySet,
    collection: &C,
    k: usize,
    seed: u64,
) -> MafOutcome {
    maf_with(communities, collection, k, seed).0
}

/// MAF core used by [`MafSolver`](crate::maxr::solver::MafSolver) and the
/// deprecated [`maf`] shim. MAF never computes marginal gains — its two
/// objective evaluations are the final `ĉ_R` comparisons of `S1` vs `S2` —
/// so the second tuple element is always 2.
pub(crate) fn maf_with<C: RicSamples>(
    communities: &CommunitySet,
    collection: &C,
    k: usize,
    seed: u64,
) -> (MafOutcome, u64) {
    let k = k.min(collection.node_count());
    let mut rng = StdRng::seed_from_u64(seed);

    // --- S1: most frequent source communities, h members each. ---
    let freq = collection.community_frequencies();
    let mut order: Vec<usize> = (0..freq.len()).collect();
    // Descending frequency; ties by community id for determinism.
    order.sort_by(|&a, &b| freq[b].cmp(&freq[a]).then(a.cmp(&b)));
    let mut s1: Vec<NodeId> = Vec::with_capacity(k);
    for ci in order {
        let community = communities.get(imc_community::CommunityId::new(ci as u32));
        let h = community.threshold as usize;
        // Skip unsatisfiable communities (h > population) — they can never
        // be influenced, so budget spent there is wasted.
        if h > community.population() || s1.len() + h > k {
            continue;
        }
        let mut members = community.members.clone();
        members.shuffle(&mut rng);
        s1.extend(members.into_iter().take(h));
        if s1.len() == k {
            break;
        }
    }
    pad_to_k(collection, &mut s1, k);

    // --- S2: top-k nodes by appearance count. ---
    let counts = collection.node_appearance_counts();
    let mut nodes: Vec<u32> = (0..collection.node_count() as u32).collect();
    nodes.sort_by(|&a, &b| counts[b as usize].cmp(&counts[a as usize]).then(a.cmp(&b)));
    let s2: Vec<NodeId> = nodes.into_iter().take(k).map(NodeId::new).collect();

    let c1 = collection.influenced_count(&s1);
    let c2 = collection.influenced_count(&s2);
    let chose_s1 = c1 >= c2;
    (
        MafOutcome {
            seeds: if chose_s1 { s1.clone() } else { s2.clone() },
            s1,
            s2,
            chose_s1,
        },
        2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, RicCollection, RicSample};
    use imc_community::CommunityId;

    fn mk_cover(width: usize, bits: &[usize]) -> CoverSet {
        let mut c = CoverSet::new(width);
        for &b in bits {
            c.set(b);
        }
        c
    }

    fn run<C: crate::RicSamples>(cs: &CommunitySet, col: &C, k: usize, seed: u64) -> MafOutcome {
        maf_with(cs, col, k, seed).0
    }

    /// Community 0 = {0, 1} (h=2), community 1 = {2, 3} (h=2). Community 0
    /// sources 3 samples, community 1 sources 1. Each member covers itself
    /// in its community's samples.
    fn setup() -> (CommunitySet, RicCollection) {
        let cs = CommunitySet::from_parts(
            6,
            vec![
                (vec![NodeId::new(0), NodeId::new(1)], 2, 2.0),
                (vec![NodeId::new(2), NodeId::new(3)], 2, 2.0),
            ],
        )
        .unwrap();
        let mut col = RicCollection::new(6, 2, 4.0);
        for _ in 0..3 {
            col.push(RicSample {
                community: CommunityId::new(0),
                threshold: 2,
                community_size: 2,
                nodes: vec![NodeId::new(0), NodeId::new(1)],
                covers: vec![mk_cover(2, &[0]), mk_cover(2, &[1])],
            });
        }
        col.push(RicSample {
            community: CommunityId::new(1),
            threshold: 2,
            community_size: 2,
            nodes: vec![NodeId::new(2), NodeId::new(3)],
            covers: vec![mk_cover(2, &[0]), mk_cover(2, &[1])],
        });
        (cs, col)
    }

    #[test]
    fn s1_targets_most_frequent_community() {
        let (cs, col) = setup();
        let out = run(&cs, &col, 2, 7);
        // Budget 2 = h of community 0; S1 must be exactly its two members.
        let mut s1 = out.s1.clone();
        s1.sort();
        assert_eq!(s1, vec![NodeId::new(0), NodeId::new(1)]);
        // That influences the 3 samples of community 0.
        assert_eq!(col.influenced_count(&out.s1), 3);
    }

    #[test]
    fn k4_takes_both_communities() {
        let (cs, col) = setup();
        let out = run(&cs, &col, 4, 7);
        assert_eq!(col.influenced_count(&out.seeds), 4);
    }

    #[test]
    fn seeds_are_k_and_distinct() {
        let (cs, col) = setup();
        for k in 1..=5 {
            let out = run(&cs, &col, k, 3);
            assert_eq!(out.seeds.len(), k);
            let uniq: std::collections::HashSet<_> = out.seeds.iter().collect();
            assert_eq!(uniq.len(), k, "duplicates at k={k}");
        }
    }

    #[test]
    fn s2_is_top_appearance() {
        let (cs, col) = setup();
        let out = run(&cs, &col, 2, 7);
        // Nodes 0,1 appear in 3 samples each; 2,3 in 1 each.
        let mut s2 = out.s2.clone();
        s2.sort();
        assert_eq!(s2, vec![NodeId::new(0), NodeId::new(1)]);
    }

    /// The deprecated shim must stay behaviourally pinned to `maf_with`.
    #[test]
    #[allow(deprecated)]
    fn shim_matches_core() {
        let (cs, col) = setup();
        assert_eq!(maf(&cs, &col, 3, 11), run(&cs, &col, 3, 11));
    }

    #[test]
    fn deterministic_under_seed() {
        let (cs, col) = setup();
        assert_eq!(run(&cs, &col, 3, 11), run(&cs, &col, 3, 11));
    }

    #[test]
    fn unsatisfiable_community_skipped() {
        // Community with h=3 but 1 member can never be influenced; MAF
        // must not waste budget on it.
        let cs = CommunitySet::from_parts(
            4,
            vec![
                (vec![NodeId::new(0)], 3, 10.0),
                (vec![NodeId::new(1), NodeId::new(2)], 2, 1.0),
            ],
        )
        .unwrap();
        let mut col = RicCollection::new(4, 2, 11.0);
        // Unsatisfiable community sources many samples.
        for _ in 0..5 {
            col.push(RicSample {
                community: CommunityId::new(0),
                threshold: 3,
                community_size: 1,
                nodes: vec![NodeId::new(0)],
                covers: vec![mk_cover(1, &[0])],
            });
        }
        col.push(RicSample {
            community: CommunityId::new(1),
            threshold: 2,
            community_size: 2,
            nodes: vec![NodeId::new(1), NodeId::new(2)],
            covers: vec![mk_cover(2, &[0]), mk_cover(2, &[1])],
        });
        let out = run(&cs, &col, 2, 5);
        assert_eq!(col.influenced_count(&out.seeds), 1);
        let mut s = out.seeds.clone();
        s.sort();
        assert_eq!(s, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn theorem3_bound_holds_on_setup() {
        // ĉ(S_MAF) ≥ ⌊k/h⌋/r · ĉ(S_OPT). Here r=2, h=2, k=2 → bound = 1/2
        // of optimum. Optimum with k=2 influences 3 samples; MAF achieves 3.
        let (cs, col) = setup();
        let out = run(&cs, &col, 2, 1);
        let opt = 3.0;
        assert!(col.influenced_count(&out.seeds) as f64 >= 0.5 * opt);
    }
}
