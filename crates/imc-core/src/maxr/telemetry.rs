//! Per-iteration solve-engine telemetry: what the CELF queue did, what
//! the shard pool cost, and where every marginal-gain evaluation went.
//!
//! The greedy loops in [`engine`](crate::maxr::engine) assemble one
//! [`EngineTelemetry`] per run — one [`IterationRecord`] per greedy round
//! plus shard/worker timing of every parallel map. Publishing feeds the
//! `imc_engine_*` metric families (see `docs/METRICS.md`) and, when a
//! trace sink is installed, emits one `engine_iteration` JSONL event per
//! round plus an `engine_solve` summary — all from the coordinating
//! thread, so the events join the surrounding request's
//! [`TraceCtx`](imc_obs::trace::TraceCtx) span tree.
//!
//! This is the instrumentation that turned the committed
//! `BENCH_solver.json` 8-thread regression into a diagnosable number:
//! `wasted_evaluations` counts batch-popped candidates whose evaluation
//! bought nothing, `saved_evaluations` counts the ones the chunked
//! best-so-far re-check pushed back unevaluated (see
//! `docs/BENCHMARKS.md`).

use std::time::Instant;

/// What one greedy round did, recorded by every strategy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IterationRecord {
    /// Zero-based greedy round (= seeds picked so far at round start).
    pub round: u32,
    /// CELF queue depth (or live candidate count for the sequential
    /// strategy) when the round started.
    pub queue_depth: usize,
    /// Entries taken off the queue this round (every candidate, for the
    /// sequential strategy).
    pub pops: u64,
    /// ν only: pops whose cached gain was stamped fresh for this round
    /// and contended for the argmax without re-evaluation.
    pub fresh_hits: u64,
    /// Evaluations that re-checked a queue entry popped with a stale or
    /// bound-only key (for `ĉ_R` every evaluation is such a re-check —
    /// its potential key is never an exact gain).
    pub stale_rechecks: u64,
    /// Marginal-gain evaluations performed this round.
    pub evaluations: u64,
    /// Evaluations whose result was discarded — everything this round
    /// evaluated except the winning pick.
    pub wasted_evaluations: u64,
    /// Popped entries pushed back **unevaluated** because the chunked
    /// best-so-far re-check proved their cached upper bound could no
    /// longer win the round.
    pub saved_evaluations: u64,
    /// Queue batches drained this round.
    pub batches: u32,
    /// Evaluation shards executed this round (1 per inline map).
    pub shards: u32,
    /// Total wall-clock seconds across this round's evaluation shards.
    pub shard_seconds_sum: f64,
    /// Slowest single evaluation shard this round, in seconds.
    pub shard_seconds_max: f64,
    /// The winning marginal gain (`ĉ_R` gains are cast from integers);
    /// `0.0` when the round found no positive gain.
    pub best_gain: f64,
    /// Whether the round picked a seed (`false` only for the final
    /// empty round before padding).
    pub picked: bool,
    /// Wall-clock seconds the round took.
    pub seconds: f64,
}

impl IterationRecord {
    /// A fresh record for `round` starting with `queue_depth` entries.
    pub(crate) fn begin(round: u32, queue_depth: usize) -> Self {
        IterationRecord {
            round,
            queue_depth,
            ..IterationRecord::default()
        }
    }

    /// Folds one shard map's timing into the round.
    pub(crate) fn absorb(&mut self, stats: &MapStats) {
        self.shards += stats.shard_seconds.len() as u32;
        for &s in &stats.shard_seconds {
            self.shard_seconds_sum += s;
            self.shard_seconds_max = self.shard_seconds_max.max(s);
        }
    }

    /// Seals the record once the round's argmax is decided.
    pub(crate) fn finish(&mut self, best_gain: f64, picked: bool, started: Instant) {
        self.best_gain = best_gain;
        self.picked = picked;
        self.wasted_evaluations = self.evaluations.saturating_sub(u64::from(picked));
        self.seconds = started.elapsed().as_secs_f64();
    }
}

/// Shard and worker timing of one marginal-gain evaluation batch (one
/// `shard_map_stats` call locally; one scatter-gather RPC round in a
/// cluster [`GainSource`](crate::maxr::GainSource)).
#[derive(Debug, Clone, Default)]
pub struct MapStats {
    /// Wall-clock seconds per executed shard (a single entry when the
    /// map ran inline).
    pub shard_seconds: Vec<f64>,
    /// Per-worker busy fraction (summed shard time / call wall time);
    /// empty when the map ran inline.
    pub busy_fractions: Vec<f64>,
}

/// Full telemetry of one engine greedy run.
#[derive(Debug, Clone)]
pub struct EngineTelemetry {
    /// The timed objective: `"c_hat"` (Alg. 3's influenced-sample count)
    /// or `"nu"` (Alg. 2's submodular upper bound).
    pub objective: &'static str,
    /// The [`SolveStrategy`](crate::SolveStrategy) label that ran.
    pub strategy: &'static str,
    /// Evaluation threads the strategy used.
    pub threads: usize,
    /// Evaluations spent on the initial full gain scan (ν's CELF queue
    /// seeding wave; zero for strategies without one).
    pub initial_evaluations: u64,
    /// One record per greedy round, in pick order.
    pub rounds: Vec<IterationRecord>,
    /// Wall-clock seconds of every evaluation shard executed anywhere in
    /// the run (including the initial scan).
    pub shard_seconds: Vec<f64>,
    /// Busy fraction of every parallel worker over every parallel map in
    /// the run (empty for single-threaded strategies).
    pub busy_fractions: Vec<f64>,
    /// Wall-clock seconds of the whole run.
    pub wall_seconds: f64,
}

impl EngineTelemetry {
    pub(crate) fn new(objective: &'static str, strategy: &'static str, threads: usize) -> Self {
        EngineTelemetry {
            objective,
            strategy,
            threads,
            initial_evaluations: 0,
            rounds: Vec::new(),
            shard_seconds: Vec::new(),
            busy_fractions: Vec::new(),
            wall_seconds: 0.0,
        }
    }

    /// Folds one shard map's timing into the run-level series.
    pub(crate) fn absorb(&mut self, stats: MapStats) {
        self.shard_seconds.extend(stats.shard_seconds);
        self.busy_fractions.extend(stats.busy_fractions);
    }

    /// Total marginal-gain evaluations, initial scan included. Equals
    /// [`GreedyRun::evaluations`](crate::maxr::GreedyRun::evaluations)
    /// for the run that produced this telemetry.
    pub fn evaluations(&self) -> u64 {
        self.initial_evaluations + self.rounds.iter().map(|r| r.evaluations).sum::<u64>()
    }

    /// Total stale-pop re-checks across all rounds.
    pub fn stale_rechecks(&self) -> u64 {
        self.rounds.iter().map(|r| r.stale_rechecks).sum()
    }

    /// Total discarded evaluations across all rounds.
    pub fn wasted_evaluations(&self) -> u64 {
        self.rounds.iter().map(|r| r.wasted_evaluations).sum()
    }

    /// Total evaluations skipped by the chunked best-so-far re-check.
    pub fn saved_evaluations(&self) -> u64 {
        self.rounds.iter().map(|r| r.saved_evaluations).sum()
    }

    /// Publishes the run into the `imc_engine_*` metric families and —
    /// when a trace sink is installed — emits one `engine_iteration`
    /// event per round plus an `engine_solve` summary.
    pub fn publish(&self) {
        crate::obs::record_engine_run(self);
        if !imc_obs::trace::enabled() {
            return;
        }
        use imc_obs::trace::{emit, TraceEvent};
        for rec in &self.rounds {
            emit(
                TraceEvent::new("engine_iteration")
                    .field("objective", self.objective)
                    .field("strategy", self.strategy)
                    .field("threads", self.threads)
                    .field("round", rec.round)
                    .field("queue_depth", rec.queue_depth)
                    .field("pops", rec.pops)
                    .field("fresh_hits", rec.fresh_hits)
                    .field("stale_rechecks", rec.stale_rechecks)
                    .field("evaluations", rec.evaluations)
                    .field("wasted_evaluations", rec.wasted_evaluations)
                    .field("saved_evaluations", rec.saved_evaluations)
                    .field("batches", rec.batches)
                    .field("shards", rec.shards)
                    .field("shard_seconds_sum", rec.shard_seconds_sum)
                    .field("shard_seconds_max", rec.shard_seconds_max)
                    .field("best_gain", rec.best_gain)
                    .field("picked", rec.picked)
                    .field("seconds", rec.seconds),
            );
        }
        // Aggregate the worker utilisation; NaN serializes as null when a
        // single-threaded run recorded no parallel maps.
        let (mut busy_min, mut busy_max, mut busy_sum) = (f64::NAN, f64::NAN, 0.0);
        for &b in &self.busy_fractions {
            busy_min = if busy_min.is_nan() {
                b
            } else {
                busy_min.min(b)
            };
            busy_max = if busy_max.is_nan() {
                b
            } else {
                busy_max.max(b)
            };
            busy_sum += b;
        }
        let busy_mean = if self.busy_fractions.is_empty() {
            f64::NAN
        } else {
            busy_sum / self.busy_fractions.len() as f64
        };
        emit(
            TraceEvent::new("engine_solve")
                .field("objective", self.objective)
                .field("strategy", self.strategy)
                .field("threads", self.threads)
                .field("rounds", self.rounds.len())
                .field("initial_evaluations", self.initial_evaluations)
                .field("evaluations", self.evaluations())
                .field("stale_rechecks", self.stale_rechecks())
                .field("wasted_evaluations", self.wasted_evaluations())
                .field("saved_evaluations", self.saved_evaluations())
                .field("shards", self.shard_seconds.len())
                .field("busy_fraction_min", busy_min)
                .field("busy_fraction_mean", busy_mean)
                .field("busy_fraction_max", busy_max)
                .field("wall_seconds", self.wall_seconds),
        );
    }
}
