//! MB — the combination of MAF and BT (Section IV-C).
//!
//! Runs both algorithms and keeps the seed set influencing more samples.
//! Theorem 5: since `ĉ(S_MB)² ≥ ĉ(S_MAF)·ĉ(S_BT)` and the two ratios
//! multiply to `(1−1/e)/k · ⌊k/2⌋/r`, MB is
//! `Θ(√((1−1/e)/r))`-approximate for thresholds `≤ 2` — tight to the
//! `O(r^{1/2(log log r)^c})` inapproximability of Theorem 1.

use crate::maxr::bt::bt_with;
use crate::maxr::engine::SolveStrategy;
use crate::maxr::maf::maf_with;
use crate::RicSamples;
use imc_community::CommunitySet;
use imc_graph::NodeId;

/// Output of [`mb`].
#[derive(Debug, Clone, PartialEq)]
pub struct MbOutcome {
    /// The winning seed set.
    pub seeds: Vec<NodeId>,
    /// MAF's candidate.
    pub maf_seeds: Vec<NodeId>,
    /// BT's candidate.
    pub bt_seeds: Vec<NodeId>,
    /// `true` when BT won.
    pub chose_bt: bool,
}

/// Runs MB. `seed` drives MAF's random member picks.
///
/// # Panics
///
/// Panics if any sample threshold exceeds 2 (checked fallibly by
/// [`MaxrAlgorithm`](crate::MaxrAlgorithm)).
#[deprecated(note = "use `MbSolver` or `MaxrAlgorithm::Mb.solve` (see docs/SOLVER_API.md)")]
pub fn mb<C: RicSamples>(
    communities: &CommunitySet,
    collection: &C,
    k: usize,
    seed: u64,
) -> MbOutcome {
    mb_with(communities, collection, k, seed, SolveStrategy::Lazy).0
}

/// Strategy-aware MB core used by [`MbSolver`](crate::maxr::solver::MbSolver)
/// and the deprecated [`mb`] shim. The strategy only accelerates the BT
/// half (its pivot loop shards across workers); MAF is already linear-time.
/// Returns the outcome plus the total evaluation count (both halves, plus
/// the two final `ĉ_R` comparisons).
///
/// # Panics
///
/// Panics if any sample threshold exceeds 2 (checked fallibly by
/// [`MaxrAlgorithm`](crate::MaxrAlgorithm)).
pub(crate) fn mb_with<C: RicSamples>(
    communities: &CommunitySet,
    collection: &C,
    k: usize,
    seed: u64,
    strategy: SolveStrategy,
) -> (MbOutcome, u64) {
    let (maf_out, maf_evals) = maf_with(communities, collection, k, seed);
    let (bt_out, bt_evals) = bt_with(collection, k, 2, None, strategy);
    let maf_score = collection.influenced_count(&maf_out.seeds);
    let bt_score = collection.influenced_count(&bt_out.seeds);
    let chose_bt = bt_score > maf_score;
    (
        MbOutcome {
            seeds: if chose_bt {
                bt_out.seeds.clone()
            } else {
                maf_out.seeds.clone()
            },
            maf_seeds: maf_out.seeds,
            bt_seeds: bt_out.seeds,
            chose_bt,
        },
        maf_evals + bt_evals + 2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, RicCollection, RicSample};
    use imc_community::CommunityId;

    fn mk_cover(width: usize, bits: &[usize]) -> CoverSet {
        let mut c = CoverSet::new(width);
        for &b in bits {
            c.set(b);
        }
        c
    }

    fn setup() -> (CommunitySet, RicCollection) {
        let cs = CommunitySet::from_parts(
            6,
            vec![
                (vec![NodeId::new(0), NodeId::new(1)], 2, 2.0),
                (vec![NodeId::new(2), NodeId::new(3)], 2, 2.0),
            ],
        )
        .unwrap();
        let mut col = RicCollection::new(6, 2, 4.0);
        // Hub node 4 covers member 0 in both communities' samples; nodes
        // 0..4 cover themselves.
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 2,
            community_size: 2,
            nodes: vec![NodeId::new(0), NodeId::new(1), NodeId::new(4)],
            covers: vec![mk_cover(2, &[0]), mk_cover(2, &[1]), mk_cover(2, &[0])],
        });
        col.push(RicSample {
            community: CommunityId::new(1),
            threshold: 2,
            community_size: 2,
            nodes: vec![NodeId::new(2), NodeId::new(3), NodeId::new(4)],
            covers: vec![mk_cover(2, &[0]), mk_cover(2, &[1]), mk_cover(2, &[0])],
        });
        (cs, col)
    }

    fn run(cs: &CommunitySet, col: &RicCollection, k: usize, seed: u64) -> MbOutcome {
        mb_with(cs, col, k, seed, SolveStrategy::Lazy).0
    }

    #[test]
    fn mb_at_least_as_good_as_both_parts() {
        let (cs, col) = setup();
        for k in 1..=4 {
            let out = run(&cs, &col, k, 9);
            let score = col.influenced_count(&out.seeds);
            assert!(score >= col.influenced_count(&out.maf_seeds));
            assert!(score >= col.influenced_count(&out.bt_seeds));
        }
    }

    #[test]
    fn mb_k3_uses_hub() {
        // With k=3, {4, 1, 3} influences both samples (hub covers member 0
        // in each). MAF's community strategy can win only one; BT finds the
        // hub.
        let (cs, col) = setup();
        let out = run(&cs, &col, 3, 1);
        assert_eq!(col.influenced_count(&out.seeds), 2);
    }

    #[test]
    fn theorem5_bound_sanity() {
        let (cs, col) = setup();
        let k = 2;
        let out = run(&cs, &col, k, 3);
        let r = cs.len() as f64;
        let bound = ((1.0 - 1.0 / std::f64::consts::E) / r * ((k / 2) as f64 / k as f64)).sqrt();
        // OPT(k=2) influences 1 sample.
        let opt = 1.0;
        assert!(col.influenced_count(&out.seeds) as f64 >= bound * opt);
    }

    #[test]
    fn seeds_sized_k() {
        let (cs, col) = setup();
        let out = run(&cs, &col, 4, 2);
        assert_eq!(out.seeds.len(), 4);
    }

    #[test]
    fn deterministic_under_seed() {
        let (cs, col) = setup();
        assert_eq!(run(&cs, &col, 3, 5), run(&cs, &col, 3, 5));
    }

    /// The deprecated shim must stay behaviourally pinned to `mb_with`.
    #[test]
    #[allow(deprecated)]
    fn shim_matches_core() {
        let (cs, col) = setup();
        assert_eq!(mb(&cs, &col, 3, 5), run(&cs, &col, 3, 5));
    }
}
