//! The unified solver API: every MAXR algorithm behind one
//! [`MaxrSolver`] trait with a shared [`SolveRequest`] / [`SolveReport`]
//! pair.
//!
//! Historically each solver had its own free function with bespoke
//! parameters and return types (`greedy_c` returned a bare `Vec<NodeId>`,
//! `bt` took a `BtConfig`, `maf`/`mb` took the community set, and each
//! returned its own `*Outcome`). This module folds those differences into:
//!
//! * [`SolveRequest`] — budget `k`, RNG seed, BT threshold bound `d`, and
//!   the engine [`SolveStrategy`];
//! * [`SolveReport`] — seeds, influenced-sample count, `ĉ_R` estimate,
//!   evaluation count, wall-clock time, and per-solver [`SolverExtras`];
//! * one solver struct per algorithm ([`GreedySolver`], [`UbgSolver`],
//!   [`MafSolver`], [`BtSolver`], [`MbSolver`]), all implementing
//!   [`MaxrSolver`].
//!
//! [`MaxrAlgorithm::solve`](crate::MaxrAlgorithm::solve) dispatches to
//! these and stays the single entry point; the old free functions remain
//! as thin `#[deprecated]` shims. See `docs/SOLVER_API.md` for the
//! migration guide.

use crate::maxr::engine::{self, SolveStrategy};
use crate::maxr::{bt, maf, mb, ubg};
use crate::{ImcError, Result, RicSamples};
use imc_community::CommunitySet;
use imc_graph::NodeId;
use std::time::{Duration, Instant};

/// Parameters of a MAXR solve, shared by every solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveRequest {
    /// Seed budget `k`.
    pub k: usize,
    /// RNG seed for randomized solvers (MAF's uniform member picks);
    /// deterministic solvers ignore it.
    pub seed: u64,
    /// Threshold bound `d ≥ 2` for BT^(d) (ignored by other solvers; MB
    /// always uses `d = 2`).
    pub depth: u32,
    /// Engine strategy for marginal-gain evaluation.
    pub strategy: SolveStrategy,
}

impl SolveRequest {
    /// A request with budget `k` and defaults everywhere else: seed 1,
    /// depth 2, lazy single-threaded evaluation.
    pub fn new(k: usize) -> Self {
        SolveRequest {
            k,
            seed: 1,
            depth: 2,
            strategy: SolveStrategy::Lazy,
        }
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the BT threshold bound.
    pub fn with_depth(mut self, depth: u32) -> Self {
        self.depth = depth;
        self
    }

    /// Replaces the engine strategy.
    pub fn with_strategy(mut self, strategy: SolveStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the strategy from a thread count (`≤ 1` → lazy, else
    /// lazy+parallel).
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_strategy(SolveStrategy::with_threads(threads))
    }
}

/// Per-solver diagnostic payload attached to a [`SolveReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolverExtras {
    /// No extra diagnostics (plain greedy).
    None,
    /// UBG sandwich details (Alg. 2).
    Ubg {
        /// Greedy solution for the upper bound `ν_R`.
        s_nu: Vec<NodeId>,
        /// Greedy solution for the objective `ĉ_R`.
        s_c: Vec<NodeId>,
        /// `true` when `s_nu` won under `ĉ_R`.
        chose_nu: bool,
        /// `ĉ_R(S_ν) / ν_R(S_ν)` (1.0 when `ν_R(S_ν) = 0`).
        sandwich_ratio: f64,
    },
    /// MAF candidate sets (Alg. 3).
    Maf {
        /// Community-frequency seeds (Theorem 3 carrier).
        s1: Vec<NodeId>,
        /// Node-appearance seeds.
        s2: Vec<NodeId>,
        /// `true` when `s1` won.
        chose_s1: bool,
    },
    /// BT pivot details (Alg. 4).
    Bt {
        /// The winning pivot `u*` (`None` when nothing touches a sample).
        pivot: Option<NodeId>,
        /// `|D_R(K(u*), u*)|` — influenced samples among those `u*`
        /// touches.
        pivot_score: usize,
    },
    /// MB arbitration (Thm. 5).
    Mb {
        /// MAF's candidate seed set.
        maf_seeds: Vec<NodeId>,
        /// BT's candidate seed set.
        bt_seeds: Vec<NodeId>,
        /// `true` when BT won.
        chose_bt: bool,
    },
}

/// Result of a MAXR solve through the unified API.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Chosen seeds, in pick order, exactly `min(k, n)` of them.
    pub seeds: Vec<NodeId>,
    /// Number of samples in the collection influenced by `seeds`.
    pub influenced_samples: usize,
    /// The estimator `ĉ_R(seeds)`.
    pub estimate: f64,
    /// Marginal-gain evaluations the engine performed (work measure;
    /// depends on the strategy, unlike the seeds).
    pub evaluations: u64,
    /// Wall-clock duration of the solve (selection + evaluation).
    pub elapsed: Duration,
    /// Per-solver diagnostics.
    pub extras: SolverExtras,
}

/// A MAXR solver with the uniform `solve(samples, request)` entry point.
///
/// Implementations validate the request (`k = 0` is rejected, `k > n` is
/// clamped — note [`MaxrAlgorithm::solve`](crate::MaxrAlgorithm::solve)
/// additionally enforces the instance-level budget `k ≤ n` strictly),
/// select seeds through the shared engine, and fill in the report's
/// evaluation fields.
pub trait MaxrSolver {
    /// Short name used in reports and trace spans.
    fn name(&self) -> &'static str;

    /// Solves MAXR over `samples` under `req`.
    ///
    /// # Errors
    ///
    /// * [`ImcError::InvalidBudget`] for `req.k == 0`.
    /// * [`ImcError::InvalidParameter`] / [`ImcError::ThresholdTooLarge`]
    ///   for BT/MB depth violations.
    fn solve<C: RicSamples>(&self, samples: &C, req: &SolveRequest) -> Result<SolveReport>;
}

/// Rejects `k == 0`, clamps `k > n`.
fn validate_k<C: RicSamples>(samples: &C, k: usize) -> Result<usize> {
    if k == 0 {
        return Err(ImcError::InvalidBudget {
            k,
            node_count: samples.node_count(),
        });
    }
    Ok(k.min(samples.node_count()))
}

/// Shared report assembly: evaluates the chosen seeds once (under the
/// `maxr_evaluate` span) and stamps timing.
fn finish<C: RicSamples>(
    samples: &C,
    name: &'static str,
    seeds: Vec<NodeId>,
    evaluations: u64,
    started: Instant,
    extras: SolverExtras,
) -> SolveReport {
    let influenced = {
        let _eval_span = imc_obs::Span::enter_with("maxr_evaluate", name);
        samples.influenced_count(&seeds)
    };
    let estimate = samples.estimate(&seeds);
    SolveReport {
        seeds,
        influenced_samples: influenced,
        estimate,
        evaluations,
        elapsed: started.elapsed(),
        extras,
    }
}

/// Checks BT/MB's threshold bound against the samples at hand.
fn require_bounded_samples<C: RicSamples>(samples: &C, bound: u32) -> Result<()> {
    let max_threshold = (0..samples.len())
        .map(|si| samples.sample_threshold(si))
        .max()
        .unwrap_or(0);
    if max_threshold > bound {
        return Err(ImcError::ThresholdTooLarge {
            bound,
            max_threshold,
        });
    }
    Ok(())
}

/// Plain greedy on `ĉ_R` — no guarantee (non-submodular), strong in
/// practice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedySolver;

impl MaxrSolver for GreedySolver {
    fn name(&self) -> &'static str {
        "GREEDY"
    }

    fn solve<C: RicSamples>(&self, samples: &C, req: &SolveRequest) -> Result<SolveReport> {
        let started = Instant::now();
        let k = validate_k(samples, req.k)?;
        let run = engine::greedy_c_with(samples, k, req.strategy);
        Ok(finish(
            samples,
            self.name(),
            run.seeds,
            run.evaluations,
            started,
            SolverExtras::None,
        ))
    }
}

/// Upper Bound Greedy (Alg. 2): sandwich with the submodular `ν_R`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UbgSolver;

impl MaxrSolver for UbgSolver {
    fn name(&self) -> &'static str {
        "UBG"
    }

    fn solve<C: RicSamples>(&self, samples: &C, req: &SolveRequest) -> Result<SolveReport> {
        let started = Instant::now();
        let k = validate_k(samples, req.k)?;
        let (out, evaluations) = ubg::ubg_with(samples, k, req.strategy);
        Ok(finish(
            samples,
            self.name(),
            out.seeds,
            evaluations,
            started,
            SolverExtras::Ubg {
                s_nu: out.s_nu,
                s_c: out.s_c,
                chose_nu: out.chose_nu,
                sandwich_ratio: out.sandwich_ratio,
            },
        ))
    }
}

/// Most Appearance First (Alg. 3). Carries the community set the samples
/// were drawn from (for the `S1` community walk).
#[derive(Debug, Clone, Copy)]
pub struct MafSolver<'a> {
    communities: &'a CommunitySet,
}

impl<'a> MafSolver<'a> {
    /// A MAF solver over `communities`.
    pub fn new(communities: &'a CommunitySet) -> Self {
        MafSolver { communities }
    }
}

impl MaxrSolver for MafSolver<'_> {
    fn name(&self) -> &'static str {
        "MAF"
    }

    fn solve<C: RicSamples>(&self, samples: &C, req: &SolveRequest) -> Result<SolveReport> {
        let started = Instant::now();
        let k = validate_k(samples, req.k)?;
        let (out, evaluations) = maf::maf_with(self.communities, samples, k, req.seed);
        Ok(finish(
            samples,
            self.name(),
            out.seeds,
            evaluations,
            started,
            SolverExtras::Maf {
                s1: out.s1,
                s2: out.s2,
                chose_s1: out.chose_s1,
            },
        ))
    }
}

/// Bounded-threshold algorithm (Alg. 4) / recursive `BT^(d)` for
/// `req.depth > 2`. Requires every sample threshold ≤ `req.depth`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtSolver {
    /// When set, only the `limit` most-appearing nodes are tried as pivots
    /// (paper-faithful behaviour is `None`: all nodes).
    pub candidate_limit: Option<usize>,
}

impl MaxrSolver for BtSolver {
    fn name(&self) -> &'static str {
        "BT"
    }

    fn solve<C: RicSamples>(&self, samples: &C, req: &SolveRequest) -> Result<SolveReport> {
        let started = Instant::now();
        if req.depth < 2 {
            return Err(ImcError::InvalidParameter { name: "bt depth" });
        }
        require_bounded_samples(samples, req.depth)?;
        let k = validate_k(samples, req.k)?;
        let (out, evaluations) =
            bt::bt_with(samples, k, req.depth, self.candidate_limit, req.strategy);
        Ok(finish(
            samples,
            self.name(),
            out.seeds,
            evaluations,
            started,
            SolverExtras::Bt {
                pivot: out.pivot,
                pivot_score: out.pivot_score,
            },
        ))
    }
}

/// MB = best of MAF and BT (Theorem 5); requires thresholds ≤ 2
/// regardless of `req.depth`.
#[derive(Debug, Clone, Copy)]
pub struct MbSolver<'a> {
    communities: &'a CommunitySet,
}

impl<'a> MbSolver<'a> {
    /// An MB solver over `communities`.
    pub fn new(communities: &'a CommunitySet) -> Self {
        MbSolver { communities }
    }
}

impl MaxrSolver for MbSolver<'_> {
    fn name(&self) -> &'static str {
        "MB"
    }

    fn solve<C: RicSamples>(&self, samples: &C, req: &SolveRequest) -> Result<SolveReport> {
        let started = Instant::now();
        require_bounded_samples(samples, 2)?;
        let k = validate_k(samples, req.k)?;
        let (out, evaluations) = mb::mb_with(self.communities, samples, k, req.seed, req.strategy);
        Ok(finish(
            samples,
            self.name(),
            out.seeds,
            evaluations,
            started,
            SolverExtras::Mb {
                maf_seeds: out.maf_seeds,
                bt_seeds: out.bt_seeds,
                chose_bt: out.chose_bt,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, RicCollection, RicSample};
    use imc_community::CommunityId;

    fn mk_cover(width: usize, bits: &[usize]) -> CoverSet {
        let mut c = CoverSet::new(width);
        for &b in bits {
            c.set(b);
        }
        c
    }

    fn fixture() -> (CommunitySet, RicCollection) {
        let cs = CommunitySet::from_parts(
            6,
            vec![
                (vec![NodeId::new(0), NodeId::new(1)], 2, 2.0),
                (vec![NodeId::new(2), NodeId::new(3)], 2, 2.0),
            ],
        )
        .unwrap();
        let mut col = RicCollection::new(6, 2, 4.0);
        for _ in 0..3 {
            col.push(RicSample {
                community: CommunityId::new(0),
                threshold: 2,
                community_size: 2,
                nodes: vec![NodeId::new(0), NodeId::new(1)],
                covers: vec![mk_cover(2, &[0]), mk_cover(2, &[1])],
            });
        }
        col.push(RicSample {
            community: CommunityId::new(1),
            threshold: 1,
            community_size: 1,
            nodes: vec![NodeId::new(2)],
            covers: vec![mk_cover(1, &[0])],
        });
        (cs, col)
    }

    #[test]
    fn every_solver_fills_the_report() {
        let (cs, col) = fixture();
        let req = SolveRequest::new(2).with_seed(7);
        let greedy = GreedySolver.solve(&col, &req).unwrap();
        assert_eq!(greedy.seeds.len(), 2);
        assert!(greedy.evaluations > 0);
        assert!(matches!(greedy.extras, SolverExtras::None));

        let ubg = UbgSolver.solve(&col, &req).unwrap();
        assert_eq!(ubg.seeds.len(), 2);
        assert!(matches!(ubg.extras, SolverExtras::Ubg { .. }));

        let maf = MafSolver::new(&cs).solve(&col, &req).unwrap();
        assert_eq!(maf.seeds.len(), 2);
        assert!(matches!(maf.extras, SolverExtras::Maf { .. }));

        let bt = BtSolver::default().solve(&col, &req).unwrap();
        assert_eq!(bt.seeds.len(), 2);
        assert!(matches!(bt.extras, SolverExtras::Bt { .. }));

        let mb = MbSolver::new(&cs).solve(&col, &req).unwrap();
        assert_eq!(mb.seeds.len(), 2);
        assert!(matches!(mb.extras, SolverExtras::Mb { .. }));
    }

    #[test]
    fn zero_budget_is_rejected_uniformly() {
        let (cs, col) = fixture();
        let req = SolveRequest::new(0);
        assert!(matches!(
            GreedySolver.solve(&col, &req),
            Err(ImcError::InvalidBudget { .. })
        ));
        assert!(matches!(
            UbgSolver.solve(&col, &req),
            Err(ImcError::InvalidBudget { .. })
        ));
        assert!(matches!(
            MafSolver::new(&cs).solve(&col, &req),
            Err(ImcError::InvalidBudget { .. })
        ));
        assert!(matches!(
            BtSolver::default().solve(&col, &req),
            Err(ImcError::InvalidBudget { .. })
        ));
        assert!(matches!(
            MbSolver::new(&cs).solve(&col, &req),
            Err(ImcError::InvalidBudget { .. })
        ));
    }

    #[test]
    fn bt_depth_validation_is_fallible() {
        let (_, col) = fixture();
        assert!(matches!(
            BtSolver::default().solve(&col, &SolveRequest::new(2).with_depth(1)),
            Err(ImcError::InvalidParameter { name: "bt depth" })
        ));
        // A threshold-3 sample under the default depth-2 bound.
        let mut col3 = RicCollection::new(5, 1, 1.0);
        col3.push(RicSample {
            community: CommunityId::new(0),
            threshold: 3,
            community_size: 3,
            nodes: vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            covers: vec![mk_cover(3, &[0]), mk_cover(3, &[1]), mk_cover(3, &[2])],
        });
        assert!(matches!(
            BtSolver::default().solve(&col3, &SolveRequest::new(2)),
            Err(ImcError::ThresholdTooLarge { .. })
        ));
        // Raising the bound to 3 makes it admissible.
        assert!(BtSolver::default()
            .solve(&col3, &SolveRequest::new(2).with_depth(3))
            .is_ok());
    }

    #[test]
    fn strategies_agree_through_the_trait() {
        let (cs, col) = fixture();
        let strategies = [
            SolveStrategy::Sequential,
            SolveStrategy::Lazy,
            SolveStrategy::Parallel { threads: 4 },
        ];
        let baseline: Vec<SolveReport> = strategies
            .iter()
            .map(|&s| {
                UbgSolver
                    .solve(&col, &SolveRequest::new(2).with_strategy(s))
                    .unwrap()
            })
            .collect();
        for w in baseline.windows(2) {
            assert_eq!(w[0].seeds, w[1].seeds);
            assert_eq!(w[0].influenced_samples, w[1].influenced_samples);
            assert_eq!(w[0].estimate, w[1].estimate);
            assert_eq!(w[0].extras, w[1].extras);
        }
        let _ = cs;
    }

    #[test]
    fn request_builders_compose() {
        let req = SolveRequest::new(5)
            .with_seed(9)
            .with_depth(3)
            .with_threads(4);
        assert_eq!(req.k, 5);
        assert_eq!(req.seed, 9);
        assert_eq!(req.depth, 3);
        assert_eq!(req.strategy, SolveStrategy::Parallel { threads: 4 });
        assert_eq!(
            SolveRequest::new(5).with_threads(1).strategy,
            SolveStrategy::Lazy
        );
    }
}
