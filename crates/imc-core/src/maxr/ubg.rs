//! Upper Bound Greedy (Algorithm 2) — the Sandwich Approximation.
//!
//! Runs greedy twice: once on the submodular upper bound `ν_R` (CELF) and
//! once on the true objective `ĉ_R` (plain greedy), then keeps whichever
//! seed set scores higher under `ĉ_R`. By Theorem 2 the winner carries a
//! data-dependent guarantee of `(ĉ_R(S_ν)/ν_R(S_ν))·(1 − 1/e)` — the ratio
//! reported in the paper's Fig. 8.

use crate::maxr::engine::{greedy_c_with, greedy_nu_with, SolveStrategy};
use crate::RicSamples;
use imc_graph::NodeId;

/// Output of [`ubg`], exposing both candidate sets and the sandwich ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct UbgOutcome {
    /// The chosen seed set (the better of [`s_nu`](Self::s_nu) /
    /// [`s_c`](Self::s_c) under `ĉ_R`).
    pub seeds: Vec<NodeId>,
    /// Greedy solution for the upper bound `ν_R`.
    pub s_nu: Vec<NodeId>,
    /// Greedy solution for the objective `ĉ_R`.
    pub s_c: Vec<NodeId>,
    /// `true` when `s_nu` won.
    pub chose_nu: bool,
    /// The sample-based sandwich ratio `ĉ_R(S_ν) / ν_R(S_ν)` (1.0 when
    /// `ν_R(S_ν) = 0`).
    pub sandwich_ratio: f64,
}

/// Runs UBG on a collection (either storage backend).
#[deprecated(note = "use `UbgSolver` or `MaxrAlgorithm::Ubg.solve` (see docs/SOLVER_API.md)")]
pub fn ubg<C: RicSamples>(collection: &C, k: usize) -> UbgOutcome {
    ubg_with(collection, k, SolveStrategy::Lazy).0
}

/// Strategy-aware UBG used by [`UbgSolver`](crate::maxr::solver::UbgSolver)
/// and the deprecated [`ubg`] shim. Both greedy passes route through the
/// shared engine so the sandwich bound uses identical pick logic to every
/// other consumer. Returns the outcome plus the engine's evaluation count.
pub(crate) fn ubg_with<C: RicSamples>(
    collection: &C,
    k: usize,
    strategy: SolveStrategy,
) -> (UbgOutcome, u64) {
    let nu_run = greedy_nu_with(collection, k, strategy);
    let c_run = greedy_c_with(collection, k, strategy);
    let evaluations = nu_run.evaluations + c_run.evaluations;
    let s_nu = nu_run.seeds;
    let s_c = c_run.seeds;
    let c_of_nu = collection.estimate(&s_nu);
    let c_of_c = collection.estimate(&s_c);
    let nu_of_nu = collection.nu_estimate(&s_nu);
    let sandwich_ratio = if nu_of_nu > 0.0 {
        c_of_nu / nu_of_nu
    } else {
        1.0
    };
    let chose_nu = c_of_nu >= c_of_c;
    (
        UbgOutcome {
            seeds: if chose_nu { s_nu.clone() } else { s_c.clone() },
            s_nu,
            s_c,
            chose_nu,
            sandwich_ratio,
        },
        evaluations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, RicCollection, RicSample};
    use imc_community::CommunityId;

    fn mk_cover(width: usize, bits: &[usize]) -> CoverSet {
        let mut c = CoverSet::new(width);
        for &b in bits {
            c.set(b);
        }
        c
    }

    fn run(col: &RicCollection, k: usize) -> UbgOutcome {
        ubg_with(col, k, SolveStrategy::Lazy).0
    }

    /// ĉ-greedy gets trapped: with k = 2, sample 0 (h=2) needs nodes
    /// {0, 1}; node 2 gives an immediate unit gain on sample 1 but wastes
    /// budget. ν-greedy prefers 0/1 (gain 1/2 each on three h=2 samples).
    fn sandwich_collection() -> RicCollection {
        let mut col = RicCollection::new(4, 2, 4.0);
        for _ in 0..3 {
            col.push(RicSample {
                community: CommunityId::new(0),
                threshold: 2,
                community_size: 2,
                nodes: vec![NodeId::new(0), NodeId::new(1)],
                covers: vec![mk_cover(2, &[0]), mk_cover(2, &[1])],
            });
        }
        col.push(RicSample {
            community: CommunityId::new(1),
            threshold: 1,
            community_size: 1,
            nodes: vec![NodeId::new(2)],
            covers: vec![mk_cover(1, &[0])],
        });
        col
    }

    #[test]
    fn ubg_beats_plain_greedy_on_trap() {
        let col = sandwich_collection();
        let out = run(&col, 2);
        // Plain ĉ-greedy picks node 2 first (gain 1), then one of {0,1}:
        // total influenced = 1. ν-greedy picks {0,1}: influenced = 3.
        assert_eq!(col.influenced_count(&out.s_c), 1);
        assert_eq!(col.influenced_count(&out.s_nu), 3);
        assert!(out.chose_nu);
        assert_eq!(col.influenced_count(&out.seeds), 3);
    }

    #[test]
    fn sandwich_ratio_in_unit_interval() {
        let col = sandwich_collection();
        let out = run(&col, 2);
        assert!(out.sandwich_ratio > 0.0 && out.sandwich_ratio <= 1.0 + 1e-12);
    }

    #[test]
    fn ratio_is_one_when_thresholds_are_one() {
        // Lemma 4: with h = 1 everywhere, ĉ_R == ν_R.
        let mut col = RicCollection::new(3, 1, 1.0);
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 1,
            community_size: 2,
            nodes: vec![NodeId::new(0), NodeId::new(1)],
            covers: vec![mk_cover(2, &[0]), mk_cover(2, &[1])],
        });
        let out = run(&col, 1);
        assert!((out.sandwich_ratio - 1.0).abs() < 1e-12);
        assert_eq!(col.estimate(&out.seeds), col.nu_estimate(&out.seeds));
    }

    #[test]
    fn chooses_c_when_it_wins() {
        // One h=1 sample reachable only by node 2; ν and ĉ agree, but make
        // s_c the winner by giving node 2 the only coverage.
        let mut col = RicCollection::new(3, 1, 1.0);
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 1,
            community_size: 1,
            nodes: vec![NodeId::new(2)],
            covers: vec![mk_cover(1, &[0])],
        });
        let out = run(&col, 1);
        assert_eq!(out.seeds, vec![NodeId::new(2)]);
        assert_eq!(col.influenced_count(&out.seeds), 1);
    }

    #[test]
    fn seeds_have_requested_size() {
        let col = sandwich_collection();
        let out = run(&col, 3);
        assert_eq!(out.seeds.len(), 3);
        assert_eq!(out.s_nu.len(), 3);
        assert_eq!(out.s_c.len(), 3);
    }

    #[test]
    fn deterministic() {
        let col = sandwich_collection();
        assert_eq!(run(&col, 2), run(&col, 2));
    }
}
