//! Chunked-popcount coverage kernels.
//!
//! Every solver iteration bottoms out in popcounts over packed `u64` cover
//! bitsets (`ĉ_R`/`ν_R` marginal gains, Alg. 2/5). These kernels are the
//! single implementation of that counting: fixed 8-limb chunks unrolled via
//! [`slice::chunks_exact`] so the compiler autovectorizes the
//! `count_ones` reduction (AVX2 `vpshufb`-popcount or NEON `cnt` on the
//! respective targets) without any platform intrinsics — the crate stays
//! std-only and `#![deny(unsafe_code)]`-clean.
//!
//! Contract (see `docs/KERNELS.md` for the full statement):
//!
//! * Every kernel is an integer-exact popcount — bit-identical to the
//!   obvious scalar loop on every input, for any slice length, including
//!   ragged tails (`len % 8 != 0`) and empty slices.
//! * Paired slices must have equal length; the kernels panic on mismatch
//!   (this mirrors the width invariants of [`crate::CoverSet`]).
//! * Fused variants (`union_count`, `and_not_count`, `or_assign_count`)
//!   make one pass over their operands so a marginal-gain evaluation never
//!   touches a limb twice.
//!
//! Chunk size 8 is deliberate: 8×u64 = 64 bytes = one cache line on
//! x86-64/aarch64, wide enough to fill a 256-bit vector unit twice per
//! chunk while keeping the remainder loop at most 7 limbs.

/// Limbs per unrolled chunk: 64 bytes, one cache line.
pub const CHUNK: usize = 8;

/// Popcount of `words` — `Σ count_ones(w)`.
#[inline]
pub fn count_ones(words: &[u64]) -> u32 {
    let mut chunks = words.chunks_exact(CHUNK);
    let mut total = 0u32;
    for c in &mut chunks {
        // Fixed-size re-borrow lets the compiler fully unroll the chunk.
        let c: &[u64; CHUNK] = c.try_into().unwrap();
        let mut acc = 0u32;
        for &w in c {
            acc += w.count_ones();
        }
        total += acc;
    }
    for &w in chunks.remainder() {
        total += w.count_ones();
    }
    total
}

/// Popcount of the elementwise union: `Σ count_ones(a | b)`.
///
/// # Panics
///
/// Panics when `a.len() != b.len()`.
#[inline]
pub fn union_count(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "kernel operand length mismatch");
    let mut ac = a.chunks_exact(CHUNK);
    let mut bc = b.chunks_exact(CHUNK);
    let mut total = 0u32;
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        let ca: &[u64; CHUNK] = ca.try_into().unwrap();
        let cb: &[u64; CHUNK] = cb.try_into().unwrap();
        let mut acc = 0u32;
        for i in 0..CHUNK {
            acc += (ca[i] | cb[i]).count_ones();
        }
        total += acc;
    }
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        total += (x | y).count_ones();
    }
    total
}

/// Popcount of the elementwise difference: `Σ count_ones(a & !b)`.
///
/// # Panics
///
/// Panics when `a.len() != b.len()`.
#[inline]
pub fn and_not_count(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "kernel operand length mismatch");
    let mut ac = a.chunks_exact(CHUNK);
    let mut bc = b.chunks_exact(CHUNK);
    let mut total = 0u32;
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        let ca: &[u64; CHUNK] = ca.try_into().unwrap();
        let cb: &[u64; CHUNK] = cb.try_into().unwrap();
        let mut acc = 0u32;
        for i in 0..CHUNK {
            acc += (ca[i] & !cb[i]).count_ones();
        }
        total += acc;
    }
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        total += (x & !y).count_ones();
    }
    total
}

/// Fused `acc |= src` + popcount of the result, in one pass.
///
/// Returns `count_ones(acc)` *after* the union — exactly what
/// [`crate::CoverageState::add_seed`] needs, without re-reading `acc`.
///
/// # Panics
///
/// Panics when `acc.len() != src.len()`.
#[inline]
pub fn or_assign_count(acc: &mut [u64], src: &[u64]) -> u32 {
    assert_eq!(acc.len(), src.len(), "kernel operand length mismatch");
    let mut achunks = acc.chunks_exact_mut(CHUNK);
    let mut schunks = src.chunks_exact(CHUNK);
    let mut total = 0u32;
    for (ca, cs) in (&mut achunks).zip(&mut schunks) {
        let ca: &mut [u64; CHUNK] = ca.try_into().unwrap();
        let cs: &[u64; CHUNK] = cs.try_into().unwrap();
        let mut count = 0u32;
        for i in 0..CHUNK {
            let merged = ca[i] | cs[i];
            ca[i] = merged;
            count += merged.count_ones();
        }
        total += count;
    }
    for (x, y) in achunks.into_remainder().iter_mut().zip(schunks.remainder()) {
        let merged = *x | y;
        *x = merged;
        total += merged.count_ones();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scalar_count(words: &[u64]) -> u32 {
        words.iter().map(|w| w.count_ones()).sum()
    }

    #[test]
    fn empty_slices() {
        assert_eq!(count_ones(&[]), 0);
        assert_eq!(union_count(&[], &[]), 0);
        assert_eq!(and_not_count(&[], &[]), 0);
        assert_eq!(or_assign_count(&mut [], &[]), 0);
    }

    #[test]
    fn exact_chunk_and_ragged_tail() {
        // 8 limbs (one exact chunk), then 9 and 23 (ragged tails).
        for len in [1usize, 7, 8, 9, 16, 23] {
            let a: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            assert_eq!(count_ones(&a), scalar_count(&a), "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_length_mismatch_panics() {
        let _ = union_count(&[0], &[0, 0]);
    }

    proptest! {
        #[test]
        fn kernels_match_scalar(
            pairs in proptest::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 0..40)
        ) {
            let a: Vec<u64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<u64> = pairs.iter().map(|p| p.1).collect();
            prop_assert_eq!(count_ones(&a), scalar_count(&a));
            prop_assert_eq!(
                union_count(&a, &b),
                a.iter().zip(&b).map(|(x, y)| (x | y).count_ones()).sum::<u32>()
            );
            prop_assert_eq!(
                and_not_count(&a, &b),
                a.iter().zip(&b).map(|(x, y)| (x & !y).count_ones()).sum::<u32>()
            );
            let mut acc = a.clone();
            let fused = or_assign_count(&mut acc, &b);
            let expected: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x | y).collect();
            prop_assert_eq!(&acc, &expected);
            prop_assert_eq!(fused, scalar_count(&expected));
        }
    }
}
