use crate::samples::{limbs_for_width, RicSamples};
use crate::RicCollection;
use imc_graph::NodeId;

/// Incremental evaluator of the MAXR objectives over any [`RicSamples`]
/// backend ([`RicCollection`] or [`RicStore`](crate::RicStore)).
///
/// Maintains, per sample, the union of cover sets of the seeds added so
/// far — stored as one flat `u64` buffer with per-sample offsets, so a
/// gain evaluation is a linear scan of the node's inverted-index entries
/// with direct word loads. Both greedy solvers drive it:
///
/// * `marginal_influenced(v)` — how many *additional* samples become
///   influenced if `v` is added (the ĉ_R greedy gain; **not** submodular,
///   so the plain greedy re-evaluates candidates every round);
/// * `marginal_fraction(v)` — the increase of
///   `Σ_g min(|I_g|/h_g, 1)` (the ν_R greedy gain; submodular by Lemma 3,
///   so CELF lazy evaluation is sound).
///
/// The backend is held *by value*: pass `&collection` for the usual
/// borrowed use (blanket `RicSamples` impls cover `&T` and `Arc<T>`), or
/// an owned `Arc<RicStore>` when the state must be self-contained — e.g.
/// a cluster shard session that outlives the request that pinned the
/// store.
#[derive(Debug, Clone)]
pub struct CoverageState<C: RicSamples = RicCollection> {
    collection: C,
    union_offsets: Vec<usize>,
    union_words: Vec<u64>,
    counts: Vec<u32>,
    influenced: Vec<bool>,
    influenced_count: usize,
    fraction_sum: f64,
    seeds: Vec<NodeId>,
}

impl<C: RicSamples> CoverageState<C> {
    /// Fresh state with no seeds.
    pub fn new(collection: C) -> Self {
        let mut union_offsets = Vec::with_capacity(collection.len() + 1);
        union_offsets.push(0usize);
        for si in 0..collection.len() {
            union_offsets.push(union_offsets[si] + limbs_for_width(collection.sample_width(si)));
        }
        let total_limbs = *union_offsets.last().unwrap_or(&0);
        let len = collection.len();
        CoverageState {
            collection,
            union_offsets,
            union_words: vec![0u64; total_limbs],
            counts: vec![0; len],
            influenced: vec![false; len],
            influenced_count: 0,
            fraction_sum: 0.0,
            seeds: Vec::new(),
        }
    }

    /// The collection being evaluated.
    pub fn collection(&self) -> &C {
        &self.collection
    }

    /// Seeds added so far, in insertion order.
    pub fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }

    /// Number of samples currently influenced.
    pub fn influenced_count(&self) -> usize {
        self.influenced_count
    }

    /// `|I_g(seeds)|` per sample — covered-member counts in sample order.
    pub fn covered_counts(&self) -> &[u32] {
        &self.counts
    }

    /// Current `ĉ_R(seeds)`.
    pub fn estimate(&self) -> f64 {
        if self.collection.is_empty() {
            return 0.0;
        }
        self.collection.total_benefit() * self.influenced_count as f64
            / self.collection.len() as f64
    }

    /// Current `ν_R(seeds)`.
    pub fn nu_estimate(&self) -> f64 {
        if self.collection.is_empty() {
            return 0.0;
        }
        self.collection.total_benefit() * self.fraction_sum / self.collection.len() as f64
    }

    fn union_of(&self, si: usize) -> &[u64] {
        &self.union_words[self.union_offsets[si]..self.union_offsets[si + 1]]
    }

    /// Number of additional samples influenced if `v` were added.
    pub fn marginal_influenced(&self, v: NodeId) -> usize {
        let mut gain = 0usize;
        for r in self.collection.touched_by(v) {
            let si = r.sample as usize;
            if self.influenced[si] {
                continue;
            }
            let cover = self.collection.cover_words(si, r.pos as usize);
            let union_count: u32 = self
                .union_of(si)
                .iter()
                .zip(cover)
                .map(|(a, b)| (a | b).count_ones())
                .sum();
            if union_count >= self.collection.sample_threshold(si) {
                gain += 1;
            }
        }
        gain
    }

    /// The ĉ_R marginal gain of `v` together with its *potential* — the
    /// number of still-uninfluenced samples `v` touches. The potential is
    /// a monotone non-increasing upper bound on every future gain of `v`,
    /// which is what makes lazy-queue pruning sound for the
    /// non-submodular `ĉ_R`: the gain itself may grow as seeds are added,
    /// the potential never does.
    pub fn marginal_influenced_with_potential(&self, v: NodeId) -> (usize, usize) {
        let mut gain = 0usize;
        let mut potential = 0usize;
        for r in self.collection.touched_by(v) {
            let si = r.sample as usize;
            if self.influenced[si] {
                continue;
            }
            potential += 1;
            let cover = self.collection.cover_words(si, r.pos as usize);
            let union_count: u32 = self
                .union_of(si)
                .iter()
                .zip(cover)
                .map(|(a, b)| (a | b).count_ones())
                .sum();
            if union_count >= self.collection.sample_threshold(si) {
                gain += 1;
            }
        }
        (gain, potential)
    }

    /// Increase of `Σ_g min(|I_g|/h_g, 1)` if `v` were added.
    pub fn marginal_fraction(&self, v: NodeId) -> f64 {
        self.marginal_fraction_from(v, 0.0)
    }

    /// [`marginal_fraction`](Self::marginal_fraction) continuing a fold
    /// started at `acc` instead of `0.0`.
    ///
    /// The ν_R gain is a left fold of `new − cur` terms in ascending
    /// sample order, and f64 addition is not associative — so a cluster
    /// shard holding samples `[lo, hi)` must *continue* the accumulator
    /// handed over from the shard holding `[0, lo)` rather than add its
    /// own partial sum afterwards. Chaining `marginal_fraction_from`
    /// across shards in partition order reproduces the single-node fold
    /// bit for bit; `carry + marginal_fraction(v)` would not.
    pub fn marginal_fraction_from(&self, v: NodeId, acc: f64) -> f64 {
        let mut gain = acc;
        for r in self.collection.touched_by(v) {
            let si = r.sample as usize;
            let h = self.collection.sample_threshold(si) as f64;
            let cur = (self.counts[si] as f64 / h).min(1.0);
            if cur >= 1.0 {
                continue;
            }
            let cover = self.collection.cover_words(si, r.pos as usize);
            let union_count: u32 = self
                .union_of(si)
                .iter()
                .zip(cover)
                .map(|(a, b)| (a | b).count_ones())
                .sum();
            let new = (union_count as f64 / h).min(1.0);
            gain += new - cur;
        }
        gain
    }

    /// Adds `v` as a seed, updating all per-sample state. Adding a
    /// duplicate seed is a no-op for the objective (unions are idempotent)
    /// but still records the seed.
    pub fn add_seed(&mut self, v: NodeId) {
        for r in self.collection.touched_by(v) {
            let si = r.sample as usize;
            let cover = self.collection.cover_words(si, r.pos as usize);
            let h = self.collection.sample_threshold(si) as f64;
            let before = (self.counts[si] as f64 / h).min(1.0);
            let lo = self.union_offsets[si];
            let union = &mut self.union_words[lo..lo + cover.len()];
            let mut count = 0u32;
            for (u, &w) in union.iter_mut().zip(cover) {
                *u |= w;
                count += u.count_ones();
            }
            self.counts[si] = count;
            let after = (count as f64 / h).min(1.0);
            self.fraction_sum += after - before;
            if !self.influenced[si] && count >= self.collection.sample_threshold(si) {
                self.influenced[si] = true;
                self.influenced_count += 1;
            }
        }
        self.seeds.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, RicSample, RicStore};
    use imc_community::CommunityId;

    fn build_collection() -> RicCollection {
        let mut col = RicCollection::new(6, 2, 4.0);
        // Sample 0: community 0, h = 2, members {a, b} (width 2).
        // node 1 covers a, node 2 covers b, node 3 covers both.
        let mk = |bits: &[usize]| {
            let mut c = CoverSet::new(2);
            for &b in bits {
                c.set(b);
            }
            c
        };
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 2,
            community_size: 2,
            nodes: vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            covers: vec![mk(&[0]), mk(&[1]), mk(&[0, 1])],
        });
        // Sample 1: community 1, h = 1; node 2 covers member 0.
        col.push(RicSample {
            community: CommunityId::new(1),
            threshold: 1,
            community_size: 2,
            nodes: vec![NodeId::new(2)],
            covers: vec![mk(&[0])],
        });
        col
    }

    #[test]
    fn marginals_match_brute_force() {
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        for v in [1u32, 2, 3, 4] {
            let v = NodeId::new(v);
            let brute = col.influenced_count(&[v]);
            assert_eq!(st.marginal_influenced(v), brute, "node {v}");
        }
        st.add_seed(NodeId::new(1));
        // After seeding 1 (covers a in sample 0): adding 2 completes
        // sample 0 AND influences sample 1 → gain 2.
        assert_eq!(st.marginal_influenced(NodeId::new(2)), 2);
        assert_eq!(st.marginal_influenced(NodeId::new(3)), 1);
    }

    #[test]
    fn potential_bounds_gain_and_shrinks_monotonically() {
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        let candidates: Vec<NodeId> = (0..6).map(NodeId::new).collect();
        let mut prev: Vec<usize> = candidates
            .iter()
            .map(|&v| {
                let (gain, potential) = st.marginal_influenced_with_potential(v);
                assert_eq!(gain, st.marginal_influenced(v));
                // With no seeds, potential == appearance count.
                assert_eq!(potential, RicSamples::appearance_count(&col, v));
                assert!(gain <= potential);
                potential
            })
            .collect();
        for seed in [2u32, 1, 3] {
            st.add_seed(NodeId::new(seed));
            for (i, &v) in candidates.iter().enumerate() {
                let (gain, potential) = st.marginal_influenced_with_potential(v);
                assert_eq!(gain, st.marginal_influenced(v));
                assert!(gain <= potential);
                assert!(potential <= prev[i], "potential grew for {v}");
                prev[i] = potential;
            }
        }
    }

    #[test]
    fn state_estimate_matches_collection_estimate() {
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        st.add_seed(NodeId::new(2));
        st.add_seed(NodeId::new(1));
        let seeds = [NodeId::new(2), NodeId::new(1)];
        assert_eq!(st.estimate(), col.estimate(&seeds));
        assert!((st.nu_estimate() - col.nu_estimate(&seeds)).abs() < 1e-12);
        assert_eq!(st.influenced_count(), 2);
        assert_eq!(st.covered_counts(), &[2, 1]);
    }

    #[test]
    fn fraction_marginals_are_consistent() {
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        let g3 = st.marginal_fraction(NodeId::new(3));
        // Node 3 covers both members of sample 0: fraction gain = 1.0.
        assert!((g3 - 1.0).abs() < 1e-12);
        let g1 = st.marginal_fraction(NodeId::new(1));
        assert!((g1 - 0.5).abs() < 1e-12);
        st.add_seed(NodeId::new(1));
        // Remaining gain for 3 is only the missing half of sample 0.
        assert!((st.marginal_fraction(NodeId::new(3)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fraction_sum_never_exceeds_sample_count() {
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        for v in [1u32, 2, 3] {
            st.add_seed(NodeId::new(v));
        }
        assert!(st.nu_estimate() <= col.total_benefit() + 1e-12);
        assert_eq!(st.influenced_count(), 2);
    }

    #[test]
    fn duplicate_seed_is_idempotent_for_objective() {
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        st.add_seed(NodeId::new(3));
        let before = st.estimate();
        st.add_seed(NodeId::new(3));
        assert_eq!(st.estimate(), before);
    }

    #[test]
    fn submodularity_of_fraction_gain() {
        // marginal_fraction must be non-increasing as seeds are added
        // (Lemma 3's submodularity), for every candidate.
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        let candidates: Vec<NodeId> = (0..6).map(NodeId::new).collect();
        let before: Vec<f64> = candidates
            .iter()
            .map(|&v| st.marginal_fraction(v))
            .collect();
        st.add_seed(NodeId::new(2));
        for (i, &v) in candidates.iter().enumerate() {
            assert!(
                st.marginal_fraction(v) <= before[i] + 1e-12,
                "gain increased for {v}"
            );
        }
    }

    #[test]
    fn fraction_fold_chains_bitwise_across_partitions() {
        // Splitting the sample list into contiguous partitions and
        // chaining `marginal_fraction_from` in partition order must
        // reproduce the whole-collection fold bit for bit — the cluster
        // coordinator's ν carry-chain depends on this.
        let col = build_collection();
        let full = CoverageState::new(&col);
        // Partition 0 = sample 0, partition 1 = sample 1.
        let mut lo = RicCollection::new(6, 2, 4.0);
        let mut hi = RicCollection::new(6, 2, 4.0);
        for (si, s) in col.samples().iter().enumerate() {
            if si == 0 {
                lo.push(s.clone());
            } else {
                hi.push(s.clone());
            }
        }
        let st_lo = CoverageState::new(&lo);
        let st_hi = CoverageState::new(&hi);
        for v in (0..6).map(NodeId::new) {
            let chained = st_hi.marginal_fraction_from(v, st_lo.marginal_fraction_from(v, 0.0));
            assert_eq!(chained.to_bits(), full.marginal_fraction(v).to_bits());
        }
    }

    #[test]
    fn store_backend_tracks_identical_state() {
        let col = build_collection();
        let store = RicStore::from_collection(&col).unwrap();
        let mut st_col = CoverageState::new(&col);
        let mut st_store = CoverageState::new(&store);
        for v in (0..6).map(NodeId::new) {
            assert_eq!(
                st_col.marginal_influenced(v),
                st_store.marginal_influenced(v)
            );
            assert_eq!(st_col.marginal_fraction(v), st_store.marginal_fraction(v));
        }
        for v in [2u32, 1, 3] {
            st_col.add_seed(NodeId::new(v));
            st_store.add_seed(NodeId::new(v));
            assert_eq!(st_col.estimate(), st_store.estimate());
            assert_eq!(st_col.nu_estimate(), st_store.nu_estimate());
            assert_eq!(st_col.covered_counts(), st_store.covered_counts());
        }
    }
}
