use crate::kernels;
use crate::samples::{limbs_for_width, RicSamples};
use crate::RicCollection;
use imc_graph::NodeId;

/// Incremental evaluator of the MAXR objectives over any [`RicSamples`]
/// backend ([`RicCollection`] or [`RicStore`](crate::RicStore)).
///
/// Maintains, per sample, the union of cover sets of the seeds added so
/// far — stored as one flat `u64` buffer with per-sample offsets, so a
/// gain evaluation is a linear scan of the node's inverted-index entries
/// with direct word loads. Both greedy solvers drive it:
///
/// * `marginal_influenced(v)` — how many *additional* samples become
///   influenced if `v` is added (the ĉ_R greedy gain; **not** submodular,
///   so the plain greedy re-evaluates candidates every round);
/// * `marginal_fraction(v)` — the increase of
///   `Σ_g min(|I_g|/h_g, 1)` (the ν_R greedy gain; submodular by Lemma 3,
///   so CELF lazy evaluation is sound).
///
/// The backend is held *by value*: pass `&collection` for the usual
/// borrowed use (blanket `RicSamples` impls cover `&T` and `Arc<T>`), or
/// an owned `Arc<RicStore>` when the state must be self-contained — e.g.
/// a cluster shard session that outlives the request that pinned the
/// store.
#[derive(Debug, Clone)]
pub struct CoverageState<C: RicSamples = RicCollection> {
    collection: C,
    union_offsets: Vec<usize>,
    union_words: Vec<u64>,
    counts: Vec<u32>,
    influenced: Vec<bool>,
    influenced_count: usize,
    fraction_sum: f64,
    seeds: Vec<NodeId>,
}

impl<C: RicSamples> CoverageState<C> {
    /// Fresh state with no seeds.
    pub fn new(collection: C) -> Self {
        let mut union_offsets = Vec::with_capacity(collection.len() + 1);
        union_offsets.push(0usize);
        for si in 0..collection.len() {
            union_offsets.push(union_offsets[si] + limbs_for_width(collection.sample_width(si)));
        }
        let total_limbs = *union_offsets.last().unwrap_or(&0);
        let len = collection.len();
        CoverageState {
            collection,
            union_offsets,
            union_words: vec![0u64; total_limbs],
            counts: vec![0; len],
            influenced: vec![false; len],
            influenced_count: 0,
            fraction_sum: 0.0,
            seeds: Vec::new(),
        }
    }

    /// The collection being evaluated.
    pub fn collection(&self) -> &C {
        &self.collection
    }

    /// Seeds added so far, in insertion order.
    pub fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }

    /// Number of samples currently influenced.
    pub fn influenced_count(&self) -> usize {
        self.influenced_count
    }

    /// `|I_g(seeds)|` per sample — covered-member counts in sample order.
    pub fn covered_counts(&self) -> &[u32] {
        &self.counts
    }

    /// Current `ĉ_R(seeds)`.
    pub fn estimate(&self) -> f64 {
        if self.collection.is_empty() {
            return 0.0;
        }
        self.collection.total_benefit() * self.influenced_count as f64
            / self.collection.len() as f64
    }

    /// Current `ν_R(seeds)`.
    pub fn nu_estimate(&self) -> f64 {
        if self.collection.is_empty() {
            return 0.0;
        }
        self.collection.total_benefit() * self.fraction_sum / self.collection.len() as f64
    }

    fn union_of(&self, si: usize) -> &[u64] {
        &self.union_words[self.union_offsets[si]..self.union_offsets[si + 1]]
    }

    /// Number of additional samples influenced if `v` were added.
    pub fn marginal_influenced(&self, v: NodeId) -> usize {
        let mut gain = 0usize;
        for r in self.collection.touched_by(v) {
            let si = r.sample as usize;
            if self.influenced[si] {
                continue;
            }
            let cover = self.collection.cover_words(si, r.pos as usize);
            let union_count = kernels::union_count(self.union_of(si), cover);
            if union_count >= self.collection.sample_threshold(si) {
                gain += 1;
            }
        }
        gain
    }

    /// The ĉ_R marginal gain of `v` together with its *potential* — the
    /// number of still-uninfluenced samples `v` touches. The potential is
    /// a monotone non-increasing upper bound on every future gain of `v`,
    /// which is what makes lazy-queue pruning sound for the
    /// non-submodular `ĉ_R`: the gain itself may grow as seeds are added,
    /// the potential never does.
    pub fn marginal_influenced_with_potential(&self, v: NodeId) -> (usize, usize) {
        let mut gain = 0usize;
        let mut potential = 0usize;
        for r in self.collection.touched_by(v) {
            let si = r.sample as usize;
            if self.influenced[si] {
                continue;
            }
            potential += 1;
            let cover = self.collection.cover_words(si, r.pos as usize);
            let union_count = kernels::union_count(self.union_of(si), cover);
            if union_count >= self.collection.sample_threshold(si) {
                gain += 1;
            }
        }
        (gain, potential)
    }

    /// Batched ĉ_R evaluation:
    /// [`marginal_influenced_with_potential`](Self::marginal_influenced_with_potential)
    /// for every candidate of one CELF shard, in slice order.
    ///
    /// One call walks the inverted index for a whole shard of candidates
    /// instead of paying per-candidate dispatch; results are element-wise
    /// identical to the scalar method (see `docs/KERNELS.md`).
    pub fn eval_c_shard(&self, nodes: &[u32], out: &mut Vec<(usize, usize)>) {
        out.reserve(nodes.len());
        for &v in nodes {
            out.push(self.marginal_influenced_with_potential(NodeId::new(v)));
        }
    }

    /// Batched ν_R evaluation: [`marginal_fraction`](Self::marginal_fraction)
    /// for every candidate of one CELF shard, in slice order.
    ///
    /// Each candidate's fold starts at `0.0` and runs in ascending sample
    /// order, exactly like the scalar method, so results are bitwise
    /// identical.
    pub fn eval_nu_shard(&self, nodes: &[u32], out: &mut Vec<f64>) {
        out.reserve(nodes.len());
        for &v in nodes {
            out.push(self.marginal_fraction_from(NodeId::new(v), 0.0));
        }
    }

    /// Increase of `Σ_g min(|I_g|/h_g, 1)` if `v` were added.
    pub fn marginal_fraction(&self, v: NodeId) -> f64 {
        self.marginal_fraction_from(v, 0.0)
    }

    /// [`marginal_fraction`](Self::marginal_fraction) continuing a fold
    /// started at `acc` instead of `0.0`.
    ///
    /// The ν_R gain is a left fold of `new − cur` terms in ascending
    /// sample order, and f64 addition is not associative — so a cluster
    /// shard holding samples `[lo, hi)` must *continue* the accumulator
    /// handed over from the shard holding `[0, lo)` rather than add its
    /// own partial sum afterwards. Chaining `marginal_fraction_from`
    /// across shards in partition order reproduces the single-node fold
    /// bit for bit; `carry + marginal_fraction(v)` would not.
    pub fn marginal_fraction_from(&self, v: NodeId, acc: f64) -> f64 {
        let mut gain = acc;
        for r in self.collection.touched_by(v) {
            let si = r.sample as usize;
            let h = self.collection.sample_threshold(si) as f64;
            let cur = (self.counts[si] as f64 / h).min(1.0);
            if cur >= 1.0 {
                continue;
            }
            let cover = self.collection.cover_words(si, r.pos as usize);
            let union_count = kernels::union_count(self.union_of(si), cover);
            let new = (union_count as f64 / h).min(1.0);
            gain += new - cur;
        }
        gain
    }

    /// Adds `v` as a seed, updating all per-sample state. Adding a
    /// duplicate seed is a no-op for the objective (unions are idempotent)
    /// but still records the seed.
    pub fn add_seed(&mut self, v: NodeId) {
        for r in self.collection.touched_by(v) {
            let si = r.sample as usize;
            let cover = self.collection.cover_words(si, r.pos as usize);
            let h = self.collection.sample_threshold(si) as f64;
            let before = (self.counts[si] as f64 / h).min(1.0);
            let lo = self.union_offsets[si];
            let union = &mut self.union_words[lo..lo + cover.len()];
            let count = kernels::or_assign_count(union, cover);
            self.counts[si] = count;
            let after = (count as f64 / h).min(1.0);
            self.fraction_sum += after - before;
            if !self.influenced[si] && count >= self.collection.sample_threshold(si) {
                self.influenced[si] = true;
                self.influenced_count += 1;
            }
        }
        self.seeds.push(v);
    }
}

/// Reusable whole-seed-set evaluator of `ĉ_R` over any [`RicSamples`]
/// backend.
///
/// [`CoverageState::new`] zero-fills per-sample union buffers for the
/// *entire* collection, which makes one-shot evaluations of many seed sets
/// (benchmarks, baselines, the service's `estimate` op) `O(|R|)` per call
/// regardless of how few samples the seeds touch. `CoverageEvaluator`
/// allocates those buffers once and stamps each sample with an *epoch*:
/// an evaluation bumps the epoch and lazily resets only the samples the
/// seed set actually touches, so each call costs
/// `O(Σ_v |touched_by(v)|)` — typically orders of magnitude below `|R|`.
///
/// Results are exactly [`RicSamples::influenced_count`] — integer popcount
/// against integer thresholds, no floating point involved.
///
/// ```
/// use imc_core::{CoverSet, CoverageEvaluator, RicSample, RicStore};
/// use imc_community::CommunityId;
/// use imc_graph::NodeId;
///
/// let mut cover = CoverSet::new(2);
/// cover.set(0);
/// let sample = RicSample {
///     community: CommunityId::new(0),
///     threshold: 1,
///     community_size: 2,
///     nodes: vec![NodeId::new(1)],
///     covers: vec![cover],
/// };
/// let store = RicStore::from_samples(4, 1, 1.0, [&sample]).unwrap();
/// let mut eval = CoverageEvaluator::new(&store);
/// let seeds = [NodeId::new(1)];
/// assert_eq!(eval.influenced_count(&seeds), store.influenced_count(&seeds));
/// ```
#[derive(Debug, Clone)]
pub struct CoverageEvaluator<C: RicSamples = RicCollection> {
    collection: C,
    union_offsets: Vec<usize>,
    union_words: Vec<u64>,
    counts: Vec<u32>,
    epochs: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
    fused: FusedState,
}

/// Lazily-built fused index for batch evaluation (see
/// [`CoverageEvaluator::influenced_counts`]). `Unsupported` is remembered
/// so a multi-limb collection does not re-attempt the build per call.
#[derive(Debug, Clone)]
enum FusedState {
    Unbuilt,
    Unsupported,
    Ready(FusedIndex),
}

/// A node-major copy of the inverted index with each entry's cover word
/// inlined, for collections whose samples all fit one cover limb
/// (community width ≤ 64 — every size-capped instance in the paper).
///
/// `samples[offsets[v] .. offsets[v+1]]` are the samples node `v`
/// touches, ascending, and `covers[i]` is the cover word `v` contributes
/// to `samples[i]` — so a batched evaluation streams `(sample, cover)`
/// pairs sequentially and never chases a pointer into the cover arena.
#[derive(Debug, Clone)]
struct FusedIndex {
    offsets: Vec<usize>,
    samples: Vec<u32>,
    covers: Vec<u64>,
    /// Per-sample evaluation state; one 16-byte slot per sample keeps the
    /// stamp checks and the union word on a single cache line.
    slots: Vec<Slot>,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Set id that last reset this sample's union (u32::MAX = none).
    started: u32,
    /// The sample's threshold, copied in at build time so an entry
    /// touches exactly one random cache line.
    threshold: u32,
    union: u64,
}

impl FusedIndex {
    /// Builds the fused index with one sample-major sweep of the arena
    /// (sequential reads) scattered through node-count cursors (cache
    /// resident). Returns `None` when any sample needs more than one
    /// cover limb.
    fn build<C: RicSamples>(collection: &C) -> Option<FusedIndex> {
        let s_len = collection.len();
        let node_count = collection.node_count();
        let mut offsets = vec![0usize; node_count + 1];
        for si in 0..s_len {
            if limbs_for_width(collection.sample_width(si)) > 1 {
                return None;
            }
            for &v in collection.sample_nodes(si) {
                offsets[v.index() + 1] += 1;
            }
        }
        for i in 0..node_count {
            offsets[i + 1] += offsets[i];
        }
        let total = offsets[node_count];
        let mut cursor = offsets[..node_count].to_vec();
        let mut samples = vec![0u32; total];
        let mut covers = vec![0u64; total];
        for si in 0..s_len {
            for (pos, &v) in collection.sample_nodes(si).iter().enumerate() {
                let at = cursor[v.index()];
                cursor[v.index()] = at + 1;
                samples[at] = si as u32;
                covers[at] = collection
                    .cover_words(si, pos)
                    .first()
                    .copied()
                    .unwrap_or(0);
            }
        }
        let slots = (0..s_len)
            .map(|si| Slot {
                started: u32::MAX,
                threshold: collection.sample_threshold(si),
                union: 0,
            })
            .collect();
        Some(FusedIndex {
            offsets,
            samples,
            covers,
            slots,
        })
    }
}

impl<C: RicSamples> CoverageEvaluator<C> {
    /// Builds an evaluator; the buffer layout mirrors
    /// [`CoverageState::new`] but is paid once, not per evaluation.
    pub fn new(collection: C) -> Self {
        let mut union_offsets = Vec::with_capacity(collection.len() + 1);
        union_offsets.push(0usize);
        for si in 0..collection.len() {
            union_offsets.push(union_offsets[si] + limbs_for_width(collection.sample_width(si)));
        }
        let total_limbs = *union_offsets.last().unwrap_or(&0);
        let len = collection.len();
        CoverageEvaluator {
            collection,
            union_offsets,
            union_words: vec![0u64; total_limbs],
            counts: vec![0; len],
            epochs: vec![0; len],
            epoch: 0,
            touched: Vec::new(),
            fused: FusedState::Unbuilt,
        }
    }

    /// The collection being evaluated.
    pub fn collection(&self) -> &C {
        &self.collection
    }

    /// Number of samples influenced by `seeds` — identical to
    /// [`RicSamples::influenced_count`], at lazy-reset cost.
    pub fn influenced_count(&mut self, seeds: &[NodeId]) -> usize {
        // A fresh epoch invalidates all per-sample state at once; on the
        // (rare) wrap we pay one full reset to keep stamps unambiguous.
        if self.epoch == u32::MAX {
            self.epochs.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
        for &v in seeds {
            for r in self.collection.touched_by(v) {
                let si = r.sample as usize;
                let lo = self.union_offsets[si];
                let hi = self.union_offsets[si + 1];
                let union = &mut self.union_words[lo..hi];
                if self.epochs[si] != self.epoch {
                    self.epochs[si] = self.epoch;
                    self.touched.push(r.sample);
                    union.fill(0);
                }
                let cover = self.collection.cover_words(si, r.pos as usize);
                self.counts[si] = kernels::or_assign_count(union, cover);
            }
        }
        let mut influenced = 0usize;
        for &si in &self.touched {
            let si = si as usize;
            if self.counts[si] >= self.collection.sample_threshold(si) {
                influenced += 1;
            }
        }
        influenced
    }

    /// `ĉ_R(seeds)` — identical to [`RicSamples::estimate`].
    pub fn estimate(&mut self, seeds: &[NodeId]) -> f64 {
        if self.collection.is_empty() {
            return 0.0;
        }
        let influenced = self.influenced_count(seeds);
        self.collection.total_benefit() * influenced as f64 / self.collection.len() as f64
    }

    /// [`influenced_count`](Self::influenced_count) for many seed sets at
    /// once: `result[i]` is the influenced count of `sets[i]`.
    ///
    /// Evaluating sets one at a time chases the inverted index into the
    /// cover arena in *seed* order — for arenas larger than cache, every
    /// entry is a dependent random DRAM load and latency dominates. This
    /// method instead makes one pass over the index for a block of sets,
    /// binning the packed `(set, sample, pos)` tuples by *sample-range
    /// tile* (a few hundred cache-resident bin cursors), and then drains
    /// one tile at a time: within a tile the cover rows, union buffers,
    /// and stamps all fit in L2, so the per-entry cost is a handful of
    /// cache hits instead of a DRAM round-trip.
    ///
    /// The arithmetic is untouched — per `(set, sample)` pair the cover
    /// rows are OR-ed into that sample's union buffer and the popcount
    /// compared against the threshold — so counts are exactly what the
    /// scalar method returns for each set (`docs/KERNELS.md` has the
    /// equivalence argument and the measurement).
    ///
    /// When every sample fits one cover limb (community width ≤ 64, true
    /// for any size-capped instance), the first call builds a node-major
    /// *fused* index with the cover words inlined next to the sample ids;
    /// evaluation then streams `(sample, cover)` pairs sequentially with
    /// no arena access at all. Wider samples fall back to the tiled
    /// gather/drain path above. Both produce identical counts.
    pub fn influenced_counts<S: AsRef<[NodeId]>>(&mut self, sets: &[S]) -> Vec<usize> {
        if matches!(self.fused, FusedState::Unbuilt) {
            self.fused = match FusedIndex::build(&self.collection) {
                Some(f) => FusedState::Ready(f),
                None => FusedState::Unsupported,
            };
        }
        if let FusedState::Ready(fused) = &mut self.fused {
            return fused_influenced_counts(fused, sets);
        }
        // 512 sets a block bounds the tuple scratch while amortising the
        // per-block stamp resets over many sets.
        self.influenced_counts_blocked(sets, 512)
    }

    fn influenced_counts_blocked<S: AsRef<[NodeId]>>(
        &mut self,
        sets: &[S],
        block_sets: usize,
    ) -> Vec<usize> {
        // Tuple layout: | set-in-block : 10 | sample-in-tile : 13 | pos : 32 |.
        const POS_BITS: u32 = 32;
        const TILE_BITS: u32 = 13;
        let block_sets = block_sets.clamp(1, 1024);
        let s_len = self.collection.len();
        let mut results = vec![0usize; sets.len()];
        if s_len == 0 || sets.is_empty() {
            return results;
        }
        // Tile width: a power of two giving ~512 tiles, capped so the
        // in-tile sample id fits its bit field.
        let tile_shift = s_len
            .div_ceil(512)
            .next_power_of_two()
            .trailing_zeros()
            .min(TILE_BITS);
        let tile_mask = (1usize << tile_shift) - 1;
        let tiles = s_len.div_ceil(1 << tile_shift);
        let mut bins: Vec<Vec<u64>> = vec![Vec::new(); tiles];
        // `started[si]`/`done[si]` stamp which set of the current block
        // last reset / already influenced sample `si`; refilled per block.
        let mut started = vec![u32::MAX; s_len];
        let mut done = vec![u32::MAX; s_len];
        let CoverageEvaluator {
            collection,
            union_offsets,
            union_words,
            ..
        } = self;
        for (chunk, block) in sets.chunks(block_sets).enumerate() {
            let base = chunk * block_sets;
            for bin in &mut bins {
                bin.clear();
            }
            started.fill(u32::MAX);
            done.fill(u32::MAX);
            // Gather: one sequential walk of the touched index slices,
            // appending each entry to its tile's bin. Sets are visited in
            // order, so each bin stays sorted by set id.
            for (b, set) in block.iter().enumerate() {
                let tag = (b as u64) << (POS_BITS + TILE_BITS);
                for &v in set.as_ref() {
                    for r in collection.touched_by(v) {
                        let si = r.sample as usize;
                        let local = ((si & tile_mask) as u64) << POS_BITS;
                        bins[si >> tile_shift].push(tag | local | u64::from(r.pos));
                    }
                }
            }
            // Drain tile by tile; everything a tuple touches is hot.
            for (tile, bin) in bins.iter().enumerate() {
                let tile_base = tile << tile_shift;
                for &tuple in bin {
                    let b = (tuple >> (POS_BITS + TILE_BITS)) as u32;
                    let si = tile_base + ((tuple >> POS_BITS) as usize & tile_mask);
                    if done[si] == b {
                        continue;
                    }
                    let union = &mut union_words[union_offsets[si]..union_offsets[si + 1]];
                    if started[si] != b {
                        started[si] = b;
                        union.fill(0);
                    }
                    let pos = (tuple & u64::from(u32::MAX)) as usize;
                    let count = kernels::or_assign_count(union, collection.cover_words(si, pos));
                    if count >= collection.sample_threshold(si) {
                        done[si] = b;
                        results[base + b as usize] += 1;
                    }
                }
            }
        }
        results
    }
}

/// The single-limb batch kernel: one streaming pass over each seed's
/// fused `(sample, cover)` entries per set. A sample's union accumulates
/// in its [`Slot`]; the influenced counter bumps exactly once per
/// `(set, sample)` pair, on the entry whose OR first lifts the popcount
/// across the threshold — the union only ever grows, so the final
/// verdict matches the scalar evaluation of the full set. (A threshold
/// of zero counts on the first touch, like the scalar walk.)
fn fused_influenced_counts<S: AsRef<[NodeId]>>(fused: &mut FusedIndex, sets: &[S]) -> Vec<usize> {
    debug_assert!(sets.len() < u32::MAX as usize);
    let mut results = vec![0usize; sets.len()];
    for slot in &mut fused.slots {
        slot.started = u32::MAX;
        slot.union = 0;
    }
    for (b, set) in sets.iter().enumerate() {
        let b = b as u32;
        let mut influenced = 0usize;
        for &v in set.as_ref() {
            let lo = fused.offsets[v.index()];
            let hi = fused.offsets[v.index() + 1];
            for (&si, &cover) in fused.samples[lo..hi].iter().zip(&fused.covers[lo..hi]) {
                let slot = &mut fused.slots[si as usize];
                let fresh = slot.started != b;
                let prev = if fresh { 0 } else { slot.union };
                slot.started = b;
                let union = prev | cover;
                slot.union = union;
                let threshold = slot.threshold;
                influenced += usize::from(
                    union.count_ones() >= threshold && (fresh || prev.count_ones() < threshold),
                );
            }
        }
        results[b as usize] = influenced;
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoverSet, RicSample, RicStore};
    use imc_community::CommunityId;

    fn build_collection() -> RicCollection {
        let mut col = RicCollection::new(6, 2, 4.0);
        // Sample 0: community 0, h = 2, members {a, b} (width 2).
        // node 1 covers a, node 2 covers b, node 3 covers both.
        let mk = |bits: &[usize]| {
            let mut c = CoverSet::new(2);
            for &b in bits {
                c.set(b);
            }
            c
        };
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 2,
            community_size: 2,
            nodes: vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            covers: vec![mk(&[0]), mk(&[1]), mk(&[0, 1])],
        });
        // Sample 1: community 1, h = 1; node 2 covers member 0.
        col.push(RicSample {
            community: CommunityId::new(1),
            threshold: 1,
            community_size: 2,
            nodes: vec![NodeId::new(2)],
            covers: vec![mk(&[0])],
        });
        col
    }

    #[test]
    fn marginals_match_brute_force() {
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        for v in [1u32, 2, 3, 4] {
            let v = NodeId::new(v);
            let brute = col.influenced_count(&[v]);
            assert_eq!(st.marginal_influenced(v), brute, "node {v}");
        }
        st.add_seed(NodeId::new(1));
        // After seeding 1 (covers a in sample 0): adding 2 completes
        // sample 0 AND influences sample 1 → gain 2.
        assert_eq!(st.marginal_influenced(NodeId::new(2)), 2);
        assert_eq!(st.marginal_influenced(NodeId::new(3)), 1);
    }

    #[test]
    fn potential_bounds_gain_and_shrinks_monotonically() {
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        let candidates: Vec<NodeId> = (0..6).map(NodeId::new).collect();
        let mut prev: Vec<usize> = candidates
            .iter()
            .map(|&v| {
                let (gain, potential) = st.marginal_influenced_with_potential(v);
                assert_eq!(gain, st.marginal_influenced(v));
                // With no seeds, potential == appearance count.
                assert_eq!(potential, RicSamples::appearance_count(&col, v));
                assert!(gain <= potential);
                potential
            })
            .collect();
        for seed in [2u32, 1, 3] {
            st.add_seed(NodeId::new(seed));
            for (i, &v) in candidates.iter().enumerate() {
                let (gain, potential) = st.marginal_influenced_with_potential(v);
                assert_eq!(gain, st.marginal_influenced(v));
                assert!(gain <= potential);
                assert!(potential <= prev[i], "potential grew for {v}");
                prev[i] = potential;
            }
        }
    }

    #[test]
    fn state_estimate_matches_collection_estimate() {
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        st.add_seed(NodeId::new(2));
        st.add_seed(NodeId::new(1));
        let seeds = [NodeId::new(2), NodeId::new(1)];
        assert_eq!(st.estimate(), col.estimate(&seeds));
        assert!((st.nu_estimate() - col.nu_estimate(&seeds)).abs() < 1e-12);
        assert_eq!(st.influenced_count(), 2);
        assert_eq!(st.covered_counts(), &[2, 1]);
    }

    #[test]
    fn fraction_marginals_are_consistent() {
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        let g3 = st.marginal_fraction(NodeId::new(3));
        // Node 3 covers both members of sample 0: fraction gain = 1.0.
        assert!((g3 - 1.0).abs() < 1e-12);
        let g1 = st.marginal_fraction(NodeId::new(1));
        assert!((g1 - 0.5).abs() < 1e-12);
        st.add_seed(NodeId::new(1));
        // Remaining gain for 3 is only the missing half of sample 0.
        assert!((st.marginal_fraction(NodeId::new(3)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fraction_sum_never_exceeds_sample_count() {
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        for v in [1u32, 2, 3] {
            st.add_seed(NodeId::new(v));
        }
        assert!(st.nu_estimate() <= col.total_benefit() + 1e-12);
        assert_eq!(st.influenced_count(), 2);
    }

    #[test]
    fn duplicate_seed_is_idempotent_for_objective() {
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        st.add_seed(NodeId::new(3));
        let before = st.estimate();
        st.add_seed(NodeId::new(3));
        assert_eq!(st.estimate(), before);
    }

    #[test]
    fn submodularity_of_fraction_gain() {
        // marginal_fraction must be non-increasing as seeds are added
        // (Lemma 3's submodularity), for every candidate.
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        let candidates: Vec<NodeId> = (0..6).map(NodeId::new).collect();
        let before: Vec<f64> = candidates
            .iter()
            .map(|&v| st.marginal_fraction(v))
            .collect();
        st.add_seed(NodeId::new(2));
        for (i, &v) in candidates.iter().enumerate() {
            assert!(
                st.marginal_fraction(v) <= before[i] + 1e-12,
                "gain increased for {v}"
            );
        }
    }

    #[test]
    fn fraction_fold_chains_bitwise_across_partitions() {
        // Splitting the sample list into contiguous partitions and
        // chaining `marginal_fraction_from` in partition order must
        // reproduce the whole-collection fold bit for bit — the cluster
        // coordinator's ν carry-chain depends on this.
        let col = build_collection();
        let full = CoverageState::new(&col);
        // Partition 0 = sample 0, partition 1 = sample 1.
        let mut lo = RicCollection::new(6, 2, 4.0);
        let mut hi = RicCollection::new(6, 2, 4.0);
        for (si, s) in col.samples().iter().enumerate() {
            if si == 0 {
                lo.push(s.clone());
            } else {
                hi.push(s.clone());
            }
        }
        let st_lo = CoverageState::new(&lo);
        let st_hi = CoverageState::new(&hi);
        for v in (0..6).map(NodeId::new) {
            let chained = st_hi.marginal_fraction_from(v, st_lo.marginal_fraction_from(v, 0.0));
            assert_eq!(chained.to_bits(), full.marginal_fraction(v).to_bits());
        }
    }

    #[test]
    fn evaluator_matches_one_shot_state_across_seed_sets() {
        let col = build_collection();
        let store = RicStore::from_collection(&col).unwrap();
        let mut eval = CoverageEvaluator::new(&store);
        let sets: Vec<Vec<NodeId>> = vec![
            vec![],
            vec![NodeId::new(1)],
            vec![NodeId::new(2), NodeId::new(3)],
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            vec![NodeId::new(5)],
            vec![NodeId::new(3), NodeId::new(3)],
        ];
        for seeds in &sets {
            assert_eq!(eval.influenced_count(seeds), store.influenced_count(seeds));
            assert_eq!(eval.estimate(seeds), store.estimate(seeds));
        }
        // Reuse across epochs must not leak state between evaluations.
        for _ in 0..3 {
            for seeds in sets.iter().rev() {
                assert_eq!(eval.influenced_count(seeds), store.influenced_count(seeds));
            }
        }
    }

    #[test]
    fn shard_evaluators_match_scalar_methods() {
        let col = build_collection();
        let mut st = CoverageState::new(&col);
        st.add_seed(NodeId::new(1));
        let nodes: Vec<u32> = (0..6).collect();
        let mut c_out = Vec::new();
        st.eval_c_shard(&nodes, &mut c_out);
        let mut nu_out = Vec::new();
        st.eval_nu_shard(&nodes, &mut nu_out);
        for (i, &v) in nodes.iter().enumerate() {
            let v = NodeId::new(v);
            assert_eq!(c_out[i], st.marginal_influenced_with_potential(v));
            assert_eq!(nu_out[i].to_bits(), st.marginal_fraction(v).to_bits());
        }
    }

    #[test]
    fn store_backend_tracks_identical_state() {
        let col = build_collection();
        let store = RicStore::from_collection(&col).unwrap();
        let mut st_col = CoverageState::new(&col);
        let mut st_store = CoverageState::new(&store);
        for v in (0..6).map(NodeId::new) {
            assert_eq!(
                st_col.marginal_influenced(v),
                st_store.marginal_influenced(v)
            );
            assert_eq!(st_col.marginal_fraction(v), st_store.marginal_fraction(v));
        }
        for v in [2u32, 1, 3] {
            st_col.add_seed(NodeId::new(v));
            st_store.add_seed(NodeId::new(v));
            assert_eq!(st_col.estimate(), st_store.estimate());
            assert_eq!(st_col.nu_estimate(), st_store.nu_estimate());
            assert_eq!(st_col.covered_counts(), st_store.covered_counts());
        }
    }

    #[test]
    fn batched_counts_match_scalar_across_block_boundaries() {
        let col = build_collection();
        let store = RicStore::from_collection(&col).unwrap();
        let mut eval = CoverageEvaluator::new(&store);
        // Every subset of {1..4} plus duplicates and an empty set; block
        // sizes below the set count force the chunked path to stitch
        // results from several arena sweeps.
        let sets: Vec<Vec<NodeId>> = vec![
            vec![],
            vec![NodeId::new(1)],
            vec![NodeId::new(2)],
            vec![NodeId::new(3)],
            vec![NodeId::new(4)],
            vec![NodeId::new(1), NodeId::new(2)],
            vec![NodeId::new(1), NodeId::new(3)],
            vec![NodeId::new(2), NodeId::new(3)],
            vec![NodeId::new(1), NodeId::new(1)],
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
        ];
        let scalar: Vec<usize> = sets.iter().map(|s| eval.influenced_count(s)).collect();
        for block in [1usize, 2, 3, 7, 512] {
            let batched = eval.influenced_counts_blocked(&sets, block);
            assert_eq!(batched, scalar, "block size {block}");
        }
        // The public entry point takes the fused single-limb path here
        // (widths ≤ 64) and must agree with both.
        assert_eq!(eval.influenced_counts(&sets), scalar);
        assert!(matches!(eval.fused, FusedState::Ready(_)));
        // The brute-force trait method agrees too.
        for (set, &count) in sets.iter().zip(&scalar) {
            assert_eq!(RicSamples::influenced_count(&col, set), count);
        }
    }

    #[test]
    fn batched_counts_fall_back_for_multi_limb_samples() {
        // Width 70 needs two cover limbs, so the fused index refuses and
        // the public API must route through the tiled path.
        let mut col = RicCollection::new(4, 1, 2.0);
        let wide = |bits: &[usize]| {
            let mut c = CoverSet::new(70);
            for &b in bits {
                c.set(b);
            }
            c
        };
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 2,
            community_size: 70,
            nodes: vec![NodeId::new(0), NodeId::new(2)],
            covers: vec![wide(&[0, 69]), wide(&[69])],
        });
        col.push(RicSample {
            community: CommunityId::new(0),
            threshold: 1,
            community_size: 70,
            nodes: vec![NodeId::new(2)],
            covers: vec![wide(&[65])],
        });
        let store = RicStore::from_collection(&col).unwrap();
        let mut eval = CoverageEvaluator::new(&store);
        let sets: Vec<Vec<NodeId>> = vec![
            vec![NodeId::new(0)],
            vec![NodeId::new(2)],
            vec![NodeId::new(0), NodeId::new(2)],
            vec![NodeId::new(1)],
        ];
        let scalar: Vec<usize> = sets.iter().map(|s| eval.influenced_count(s)).collect();
        assert_eq!(eval.influenced_counts(&sets), scalar);
        assert!(matches!(eval.fused, FusedState::Unsupported));
        assert_eq!(scalar, vec![1, 1, 2, 0]);
    }
}
