//! # Influence Maximization at Community level (IMC)
//!
//! Implementation of *"Influence Maximization at Community Level: A New
//! Challenge with Non-submodularity"* (Nguyen, Zhou, Thai — ICDCS 2019).
//!
//! Given a social graph `G = (V, E, w)` under the Independent Cascade model
//! and a set of disjoint communities, each with an activation threshold
//! `h_i` and a benefit `b_i`, IMC asks for `k` seed nodes maximizing the
//! expected benefit `c(S)` of *influenced* communities — communities where
//! at least `h_i` members get activated. `c(·)` is neither submodular nor
//! supermodular, which breaks the classic greedy machinery of influence
//! maximization.
//!
//! The pipeline mirrors the paper:
//!
//! 1. **RIC sampling** ([`RicSampler`], Alg. 1) — benefit-weighted reverse
//!    samples rooted at communities, giving the unbiased estimator
//!    `ĉ_R(S)` (Lemma 1) materialized by the arena-backed [`RicStore`]
//!    (or the legacy owning [`RicCollection`]; both implement
//!    [`RicSamples`], so everything downstream is backend-generic).
//! 2. **MAXR solvers** ([`maxr`]) — [`maxr::ubg`] (sandwich with the
//!    submodular upper bound `ν_R`), [`maxr::maf`] (most-appearance-first),
//!    [`maxr::bt`] (bounded thresholds, with the `BT^(d)` recursion) and
//!    [`maxr::mb`] (MAF ∨ BT, tight to the inapproximability bound).
//! 3. **IMCAF** ([`imcaf`], Alg. 5) — a stop-and-stare outer loop with the
//!    sample bound `Ψ` (eq. 22) and the Dagum [`estimate`] procedure
//!    (Alg. 6), turning any `α`-approximate MAXR solver into an
//!    `α(1 − ε)`-approximation for IMC with probability `1 − δ`
//!    (Theorem 7).
//! 4. **Baselines** ([`baselines`]) — HBC, the knapsack heuristic KS,
//!    classic IM, plus degree/PageRank heuristics.
//!
//! ```
//! use imc_core::{imcaf, ImcInstance, ImcafConfig, MaxrAlgorithm};
//! use imc_community::{BenefitPolicy, CommunitySet, ThresholdPolicy};
//! use imc_graph::{generators::planted_partition, WeightModel};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(1);
//! let pp = planted_partition(100, 5, 0.3, 0.02, &mut rng);
//! let graph = pp.graph.reweighted(WeightModel::WeightedCascade);
//! let communities = CommunitySet::builder(&graph)
//!     .explicit(pp.blocks)
//!     .split_larger_than(8)
//!     .threshold(ThresholdPolicy::Constant(2))
//!     .benefit(BenefitPolicy::Population)
//!     .build()?;
//! let instance = ImcInstance::new(graph, communities)?;
//! let result = imcaf(&instance, MaxrAlgorithm::Ubg, &ImcafConfig::paper_defaults(5), 42)?;
//! assert_eq!(result.seeds.len(), 5);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the zero-copy snapshot view needs one
// audited `#[allow(unsafe_code)]` cast module (`snapshot::cast`) to reborrow
// aligned bytes as typed columns; everything else stays unsafe-free.
#![deny(unsafe_code)]
#![deny(missing_docs)]

mod bitset;
mod collection;
mod error;
mod generator;
mod imcaf;
mod objective;
mod problem;
mod sample;
mod samples;
mod store;

pub mod kernels;

pub mod baselines;
pub mod bounds;
pub mod diagnostics;
pub mod estimate;
pub mod maxr;
pub mod obs;
pub mod snapshot;

pub use bitset::CoverSet;
pub use collection::{
    partition_shard_range, sampling_shard_plan, CollectionStats, RicCollection, SampleRef,
    DEFAULT_SAMPLING_SHARDS,
};
pub use error::ImcError;
pub use generator::{LiveEdgeModel, RicSampler, SampleBuf};
pub use imcaf::{imcaf, imcaf_with_trace, ImcafConfig, ImcafResult, RoundRecord, StopReason};
#[allow(deprecated)]
pub use maxr::MaxrSolution;
pub use maxr::{
    BtSolver, GainSource, GreedyRun, GreedySolver, LocalSource, MafSolver, MaxrAlgorithm,
    MaxrSolver, MbSolver, SolveReport, SolveRequest, SolveStrategy, SolverExtras, UbgSolver,
};
pub use objective::{CoverageEvaluator, CoverageState};
pub use problem::ImcInstance;
pub use sample::RicSample;
pub use samples::RicSamples;
pub use store::{RicSampleView, RicStore, RicStoreError};

/// Convenience result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, ImcError>;
