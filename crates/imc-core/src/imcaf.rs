//! The IMC Algorithmic Framework — Algorithm 5.
//!
//! IMCAF wraps any `α`-approximate MAXR solver in a stop-and-stare loop:
//!
//! 1. compute the worst-case sample bound `Ψ` (eq. 22) and the check-point
//!    threshold `Λ`;
//! 2. generate `Λ` RIC samples, solve MAXR, and — once the candidate
//!    influences at least `Λ` samples — grade it with the Dagum
//!    [`estimate_c`](crate::estimate::estimate_c) procedure;
//! 3. accept when the collection estimate `ĉ_R(S)` is within `(1 + ε₁)` of
//!    the independent estimate `c*`, otherwise double the collection, up to
//!    `Ψ`.
//!
//! Theorem 7: the returned set is `α(1 − ε)`-approximate with probability
//! at least `1 − δ`.
//!
//! Normalization note: the paper sometimes writes `r` where the
//! general-benefit quantity is `b` (its experiments use `b_i = |C_i|`, its
//! formulas unit benefits). We implement the general version: the stop
//! condition `(|R|/b)·ĉ_R(S) ≥ Λ` is exactly "at least `Λ` influenced
//! samples", and `Estimate` returns `b·Λ′/T`; with `b_i = 1` both reduce to
//! the paper's text verbatim.

use crate::bounds::{lambda, psi, BoundParams};
use crate::estimate::estimate_c;
use crate::{ImcError, ImcInstance, MaxrAlgorithm, Result, RicStore, SolveRequest, SolveStrategy};
use imc_graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the IMCAF framework.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImcafConfig {
    /// Seed budget `k`.
    pub k: usize,
    /// Accuracy target `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Failure probability `δ ∈ (0, 1)`.
    pub delta: f64,
    /// Hard cap on `|R|` (memory guard; `Ψ` can be astronomically large
    /// for small `α`). The theoretical guarantee holds only when the run
    /// ends by convergence or by reaching `Ψ` itself.
    pub max_samples: usize,
    /// Engine strategy the inner MAXR solves run with. Seeds are identical
    /// for every strategy; only wall-clock and evaluation counts change.
    pub strategy: SolveStrategy,
}

impl ImcafConfig {
    /// The paper's experimental setting: `ε = δ = 0.2`.
    pub fn paper_defaults(k: usize) -> Self {
        ImcafConfig {
            k,
            epsilon: 0.2,
            delta: 0.2,
            max_samples: 1 << 20,
            strategy: SolveStrategy::Lazy,
        }
    }
}

/// Why IMCAF stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The stop-stage statistical check accepted the candidate.
    Converged,
    /// The collection reached the theoretical bound `Ψ` (guarantee holds).
    SampleBoundReached,
    /// The configured `max_samples` cap was hit before `Ψ` (best-effort
    /// result; guarantee not certified).
    CapReached,
}

impl StopReason {
    /// Stable label value used by the `imc_imcaf_runs_total{stop_reason}`
    /// metric and the `imcaf_done` trace event.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::SampleBoundReached => "sample_bound",
            StopReason::CapReached => "cap",
        }
    }
}

/// Output of [`imcaf`].
#[derive(Debug, Clone, PartialEq)]
pub struct ImcafResult {
    /// The chosen seed set (exactly `k` nodes).
    pub seeds: Vec<NodeId>,
    /// Final collection estimate `ĉ_R(seeds)`.
    pub estimate: f64,
    /// The independent Dagum estimate `c*` from the last accepted check
    /// (`None` when the run ended without one).
    pub independent_estimate: Option<f64>,
    /// RIC samples in the final collection.
    pub samples_used: usize,
    /// Stop-stage iterations executed.
    pub rounds: usize,
    /// Why the loop ended.
    pub stop_reason: StopReason,
}

/// One stop-stage iteration's bookkeeping, recorded by
/// [`imcaf_with_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// `|R|` when the solver ran.
    pub samples: usize,
    /// Samples influenced by the candidate.
    pub influenced: usize,
    /// `ĉ_R` of the candidate.
    pub estimate: f64,
    /// Whether the Λ check-point fired (an Estimate call was made).
    pub checked: bool,
    /// The independent estimate `c*`, when an Estimate call succeeded.
    pub independent_estimate: Option<f64>,
}

/// Runs IMCAF (Alg. 5) with the given MAXR solver.
///
/// The sample collection grows inside an arena-backed
/// [`RicStore`](crate::RicStore) across doubling rounds; results are
/// deterministic for a fixed `(instance, algorithm, config, seed)`.
///
/// ```
/// use imc_community::CommunitySet;
/// use imc_core::{imcaf, ImcInstance, ImcafConfig, MaxrAlgorithm};
/// use imc_graph::{GraphBuilder, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 1.0)?;
/// b.add_edge(0, 2, 1.0)?;
/// let graph = b.build()?;
/// let communities = CommunitySet::from_parts(
///     3,
///     vec![(vec![NodeId::new(1), NodeId::new(2)], 2, 5.0)],
/// )?;
/// let instance = ImcInstance::new(graph, communities)?;
/// let result = imcaf(&instance, MaxrAlgorithm::Ubg, &ImcafConfig::paper_defaults(1), 7)?;
/// // Node 0 reaches both members with certainty: c({0}) = b = 5, and the
/// // independent Dagum estimate certifies it within (1 − ε).
/// assert_eq!(result.seeds, vec![NodeId::new(0)]);
/// assert!(result.estimate >= 4.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`ImcError::InvalidParameter`] for `ε, δ ∉ (0, 1)`.
/// * [`ImcError::InvalidBudget`] for an invalid `k`.
/// * [`ImcError::ThresholdTooLarge`] when the solver's threshold bound is
///   violated (BT/MB).
pub fn imcaf(
    instance: &ImcInstance,
    algorithm: MaxrAlgorithm,
    config: &ImcafConfig,
    seed: u64,
) -> Result<ImcafResult> {
    imcaf_inner(instance, algorithm, config, seed, &mut |_| {})
}

/// Like [`imcaf`] but also collects the per-round [`RoundRecord`]s — used
/// by the sample-size ablation and by tests asserting the doubling
/// schedule. The same per-round data always flows to the observability
/// layer (`imcaf_round` trace events, `imc_imcaf_*` metrics) regardless of
/// which entry point is used; this variant merely materializes it.
///
/// # Errors
///
/// Same conditions as [`imcaf`].
pub fn imcaf_with_trace(
    instance: &ImcInstance,
    algorithm: MaxrAlgorithm,
    config: &ImcafConfig,
    seed: u64,
) -> Result<(ImcafResult, Vec<RoundRecord>)> {
    let mut trace: Vec<RoundRecord> = Vec::new();
    let result = imcaf_inner(instance, algorithm, config, seed, &mut |record| {
        trace.push(record.clone())
    })?;
    Ok((result, trace))
}

/// Emits the per-round structured trace event and round metrics shared by
/// every IMCAF entry point. `check_lambda` / `psi_capped` are the run's
/// Λ and (capped) Ψ bounds, stamped into every round so a trace replay of
/// Alg. 5's convergence needs no cross-referencing with the one-off
/// `imcaf_bounds` event.
fn observe_round(record: &RoundRecord, check_lambda: f64, psi_capped: usize) {
    crate::obs::imcaf_rounds_total().inc();
    if imc_obs::trace::enabled() {
        let mut event = imc_obs::trace::TraceEvent::new("imcaf_round")
            .field("round", record.round)
            .field("samples", record.samples)
            .field("influenced", record.influenced)
            .field("estimate", record.estimate)
            .field("checked", record.checked)
            .field("lambda", check_lambda)
            .field("lambda_met", record.influenced as f64 >= check_lambda)
            .field("psi_capped", psi_capped)
            .field("psi_exhausted", record.samples >= psi_capped);
        if let Some(c_star) = record.independent_estimate {
            event = event.field("independent_estimate", c_star);
        }
        imc_obs::trace::emit(event);
    }
}

/// Emits the end-of-run metrics and `imcaf_done` trace event.
fn observe_done(result: &ImcafResult) {
    crate::obs::record_imcaf_run(result.stop_reason.as_str());
    if imc_obs::trace::enabled() {
        imc_obs::trace::emit(
            imc_obs::trace::TraceEvent::new("imcaf_done")
                .field("stop_reason", result.stop_reason.as_str())
                .field("rounds", result.rounds)
                .field("samples_used", result.samples_used)
                .field("estimate", result.estimate),
        );
    }
}

fn imcaf_inner(
    instance: &ImcInstance,
    algorithm: MaxrAlgorithm,
    config: &ImcafConfig,
    seed: u64,
    observe: &mut dyn FnMut(&RoundRecord),
) -> Result<ImcafResult> {
    if !(config.epsilon > 0.0 && config.epsilon < 1.0) {
        return Err(ImcError::InvalidParameter { name: "epsilon" });
    }
    if !(config.delta > 0.0 && config.delta < 1.0) {
        return Err(ImcError::InvalidParameter { name: "delta" });
    }
    instance.validate_budget(config.k)?;

    let k = config.k;
    let alpha =
        algorithm.approximation_ratio(instance.community_count(), instance.max_threshold(), k);

    // Ψ splits (paper §VI.A): ε₁ = ε₂ = ε/2, δ₁ = δ₂ = δ/2.
    let params = BoundParams {
        total_benefit: instance.total_benefit(),
        min_benefit: instance.min_benefit(),
        max_threshold: instance.max_threshold(),
        node_count: instance.node_count(),
        k,
    };
    let e2 = config.epsilon / 2.0;
    let d2 = config.delta / 2.0;
    let psi_bound = psi(&params, e2, e2, d2, d2, alpha);
    let psi_capped = psi_bound.min(config.max_samples as f64).max(1.0) as usize;

    // Stop-stage splits (paper §VI.A): ε₁ = ε₂ = ε₃ = ε/4.
    let es = config.epsilon / 4.0;
    let check_lambda = lambda(es, es, es, config.delta);

    if imc_obs::trace::enabled() {
        imc_obs::trace::emit(
            imc_obs::trace::TraceEvent::new("imcaf_bounds")
                .field("algo", algorithm.name())
                .field("k", k)
                .field("alpha", alpha)
                .field("psi", psi_bound)
                .field("psi_capped", psi_capped)
                .field("lambda", check_lambda),
        );
    }

    let sampler = instance.sampler();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut collection = RicStore::for_sampler(&sampler);
    let initial = (check_lambda.ceil() as usize).min(psi_capped).max(1);
    collection.extend_with(&sampler, initial, &mut rng);

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let req = SolveRequest::new(k)
            .with_seed(seed ^ rounds as u64)
            .with_strategy(config.strategy);
        let solution = algorithm.solve(instance, &collection, &req)?;
        let mut record = RoundRecord {
            round: rounds,
            samples: collection.len(),
            influenced: solution.influenced_samples,
            estimate: solution.estimate,
            checked: false,
            independent_estimate: None,
        };

        // Stop condition (line 8): at least Λ influenced samples.
        if solution.influenced_samples as f64 >= check_lambda {
            record.checked = true;
            // δ for each Estimate call: δ / (3·log₂(Ψ/Λ)) (line 9).
            let log_rounds = (psi_capped as f64 / check_lambda).log2().max(1.0);
            let delta_est = (config.delta / (3.0 * log_rounds)).clamp(1e-9, 0.999);
            let t_max = (collection.len() as f64 * (1.0 + es) / (1.0 - es)).ceil() as u64;
            if let Some(out) = estimate_c(&sampler, &solution.seeds, es, delta_est, t_max, &mut rng)
            {
                record.independent_estimate = Some(out.estimate);
                if solution.estimate <= (1.0 + es) * out.estimate {
                    observe_round(&record, check_lambda, psi_capped);
                    observe(&record);
                    let result = ImcafResult {
                        seeds: solution.seeds,
                        estimate: solution.estimate,
                        independent_estimate: Some(out.estimate),
                        samples_used: collection.len(),
                        rounds,
                        stop_reason: StopReason::Converged,
                    };
                    observe_done(&result);
                    return Ok(result);
                }
            }
        }
        observe_round(&record, check_lambda, psi_capped);
        observe(&record);

        if collection.len() >= psi_capped {
            let reason = if (psi_capped as f64) < psi_bound {
                StopReason::CapReached
            } else {
                StopReason::SampleBoundReached
            };
            let result = ImcafResult {
                seeds: solution.seeds,
                estimate: solution.estimate,
                independent_estimate: None,
                samples_used: collection.len(),
                rounds,
                stop_reason: reason,
            };
            observe_done(&result);
            return Ok(result);
        }

        // Double the collection (line 11), capped at Ψ.
        let grow = collection.len().min(psi_capped - collection.len()).max(1);
        collection.extend_with(&sampler, grow, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imc_community::{BenefitPolicy, CommunitySet, ThresholdPolicy};
    use imc_graph::generators::planted_partition;
    use imc_graph::{GraphBuilder, WeightModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_instance() -> ImcInstance {
        let mut rng = StdRng::seed_from_u64(4);
        let pp = planted_partition(60, 4, 0.4, 0.02, &mut rng);
        let graph = pp.graph.reweighted(WeightModel::WeightedCascade);
        let cs = CommunitySet::builder(&graph)
            .explicit(pp.blocks)
            .split_larger_than(8)
            .threshold(ThresholdPolicy::Constant(2))
            .benefit(BenefitPolicy::Population)
            .build()
            .unwrap();
        ImcInstance::new(graph, cs).unwrap()
    }

    #[test]
    fn returns_k_distinct_seeds() {
        let inst = small_instance();
        let cfg = ImcafConfig {
            max_samples: 20_000,
            ..ImcafConfig::paper_defaults(4)
        };
        let res = imcaf(&inst, MaxrAlgorithm::Ubg, &cfg, 1).unwrap();
        assert_eq!(res.seeds.len(), 4);
        let uniq: std::collections::HashSet<_> = res.seeds.iter().collect();
        assert_eq!(uniq.len(), 4);
        assert!(res.samples_used > 0);
        assert!(res.rounds >= 1);
    }

    #[test]
    fn all_algorithms_run_on_bounded_instance() {
        let inst = small_instance();
        let cfg = ImcafConfig {
            max_samples: 5_000,
            ..ImcafConfig::paper_defaults(4)
        };
        for algo in [
            MaxrAlgorithm::Greedy,
            MaxrAlgorithm::Ubg,
            MaxrAlgorithm::Maf,
            MaxrAlgorithm::Bt,
            MaxrAlgorithm::Mb,
        ] {
            let res = imcaf(&inst, algo, &cfg, 2).unwrap();
            assert_eq!(res.seeds.len(), 4, "{algo:?}");
            assert!(res.estimate >= 0.0);
        }
    }

    #[test]
    fn estimate_close_to_monte_carlo_ground_truth() {
        let inst = small_instance();
        let cfg = ImcafConfig {
            max_samples: 40_000,
            ..ImcafConfig::paper_defaults(4)
        };
        let res = imcaf(&inst, MaxrAlgorithm::Ubg, &cfg, 7).unwrap();
        let mc = imc_diffusion::benefit::monte_carlo_benefit(
            inst.graph(),
            inst.communities(),
            &imc_diffusion::IndependentCascade,
            &res.seeds,
            20_000,
            99,
        );
        // ĉ_R and the forward MC must agree within the ε = 0.2 regime.
        let rel = (res.estimate - mc).abs() / mc.max(1e-9);
        assert!(rel < 0.3, "ĉ_R={} mc={mc} rel={rel}", res.estimate);
    }

    #[test]
    fn bt_on_unbounded_thresholds_errors() {
        let mut b = GraphBuilder::new(8);
        b.add_edge(0, 1, 0.5).unwrap();
        let graph = b.build().unwrap();
        let cs = CommunitySet::from_parts(
            8,
            vec![((1..6).map(imc_graph::NodeId::new).collect(), 4, 5.0)],
        )
        .unwrap();
        let inst = ImcInstance::new(graph, cs).unwrap();
        let cfg = ImcafConfig::paper_defaults(2);
        assert!(matches!(
            imcaf(&inst, MaxrAlgorithm::Bt, &cfg, 0),
            Err(ImcError::ThresholdTooLarge { .. })
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let inst = small_instance();
        let mut cfg = ImcafConfig::paper_defaults(2);
        cfg.epsilon = 0.0;
        assert!(imcaf(&inst, MaxrAlgorithm::Maf, &cfg, 0).is_err());
        let mut cfg = ImcafConfig::paper_defaults(2);
        cfg.delta = 1.0;
        assert!(imcaf(&inst, MaxrAlgorithm::Maf, &cfg, 0).is_err());
        let cfg = ImcafConfig::paper_defaults(0);
        assert!(imcaf(&inst, MaxrAlgorithm::Maf, &cfg, 0).is_err());
    }

    #[test]
    fn tiny_cap_reports_cap_reached() {
        let inst = small_instance();
        let cfg = ImcafConfig {
            max_samples: 8,
            ..ImcafConfig::paper_defaults(2)
        };
        let res = imcaf(&inst, MaxrAlgorithm::Maf, &cfg, 3).unwrap();
        assert!(res.samples_used <= 8);
        // With 8 samples the Λ check can never pass (Λ ≈ 194 for ε=0.2).
        assert_eq!(res.stop_reason, StopReason::CapReached);
    }

    #[test]
    fn deterministic_under_seed() {
        let inst = small_instance();
        let cfg = ImcafConfig {
            max_samples: 4_000,
            ..ImcafConfig::paper_defaults(3)
        };
        let a = imcaf(&inst, MaxrAlgorithm::Ubg, &cfg, 5).unwrap();
        let b = imcaf(&inst, MaxrAlgorithm::Ubg, &cfg, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trace_records_doubling_schedule() {
        let inst = small_instance();
        let cfg = ImcafConfig {
            max_samples: 8_000,
            ..ImcafConfig::paper_defaults(3)
        };
        let (result, trace) = super::imcaf_with_trace(&inst, MaxrAlgorithm::Maf, &cfg, 9).unwrap();
        assert_eq!(trace.len(), result.rounds);
        // Sample counts are non-decreasing and (until the cap) doubling.
        for w in trace.windows(2) {
            assert!(w[1].samples >= w[0].samples);
            assert!(w[1].samples <= w[0].samples * 2);
        }
        assert_eq!(trace.last().unwrap().round, result.rounds);
        // Final trace entry matches the result.
        assert_eq!(trace.last().unwrap().samples, result.samples_used);
    }
}
